//! Length-prefixed binary wire format for [`Message`].
//!
//! Frame layout (all integers big-endian):
//!
//! ```text
//! +---------+---------+--------+-------------------+
//! | u32 len | u8 ver  | u8 kind| payload (len-2 B) |
//! +---------+---------+--------+-------------------+
//! ```
//!
//! `len` counts everything after the length field. Decoding is strict:
//! unknown versions or kinds, truncated payloads and trailing garbage
//! inside a frame are typed errors, never panics — malformed input from the
//! network must not take the server down.

use crate::ids::PeerId;
use crate::path::PeerPath;
use crate::protocol::{Message, WireNeighbor};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use nearpeer_topology::RouterId;
use std::fmt;

/// Protocol version emitted by this implementation.
pub const WIRE_VERSION: u8 = 1;

/// Upper bound on a frame's `len` field — a peer path cannot plausibly
/// exceed this, so anything larger is treated as an attack or corruption.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// Not enough bytes for a complete frame (wait for more input).
    Incomplete,
    /// The length field exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge(u32),
    /// Unsupported protocol version.
    UnknownVersion(u8),
    /// Unsupported message kind.
    UnknownKind(u8),
    /// The payload was malformed (wrong length, invalid path, bad UTF-8).
    BadPayload(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Incomplete => write!(f, "incomplete frame"),
            CodecError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
            CodecError::UnknownVersion(v) => write!(f, "unknown wire version {v}"),
            CodecError::UnknownKind(k) => write!(f, "unknown message kind {k}"),
            CodecError::BadPayload(msg) => write!(f, "bad payload: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Encodes a message as one frame appended to `dst`.
pub fn encode(msg: &Message, dst: &mut BytesMut) {
    let mut payload = BytesMut::new();
    match msg {
        Message::ProbePing { nonce } => payload.put_u64(*nonce),
        Message::ProbePong { nonce } => payload.put_u64(*nonce),
        Message::JoinRequest { peer, path } => {
            payload.put_u64(peer.0);
            put_path(&mut payload, path);
        }
        Message::JoinReply {
            peer,
            neighbors,
            delegate,
        } => {
            payload.put_u64(peer.0);
            payload.put_u16(neighbors.len() as u16);
            for n in neighbors {
                payload.put_u64(n.peer.0);
                payload.put_u32(n.dtree);
            }
            match delegate {
                Some(d) => {
                    payload.put_u8(1);
                    payload.put_u64(d.0);
                }
                None => payload.put_u8(0),
            }
        }
        Message::JoinError { peer, reason } => {
            payload.put_u64(peer.0);
            let bytes = reason.as_bytes();
            payload.put_u16(bytes.len().min(u16::MAX as usize) as u16);
            payload.put_slice(&bytes[..bytes.len().min(u16::MAX as usize)]);
        }
        Message::Leave { peer } => payload.put_u64(peer.0),
        Message::HandoverRequest { peer, path } => {
            payload.put_u64(peer.0);
            put_path(&mut payload, path);
        }
        Message::Heartbeat { peer } => payload.put_u64(peer.0),
        Message::QueryRequest {
            nonce,
            path,
            k,
            exclude,
        } => {
            payload.put_u64(*nonce);
            put_path(&mut payload, path);
            payload.put_u16(*k);
            match exclude {
                Some(p) => {
                    payload.put_u8(1);
                    payload.put_u64(p.0);
                }
                None => payload.put_u8(0),
            }
        }
        Message::QueryReply { nonce, neighbors } => {
            payload.put_u64(*nonce);
            put_neighbors(&mut payload, neighbors);
        }
        Message::FillRequest {
            nonce,
            router,
            limit,
        } => {
            payload.put_u64(*nonce);
            payload.put_u32(router.0);
            payload.put_u16(*limit);
        }
        Message::FillReply { nonce, items } => {
            payload.put_u64(*nonce);
            put_neighbors(&mut payload, items);
        }
        Message::Shutdown { nonce } => payload.put_u64(*nonce),
        Message::Subscribe {
            nonce,
            peer,
            k,
            min_interval_ms,
        } => {
            payload.put_u64(*nonce);
            payload.put_u64(peer.0);
            payload.put_u16(*k);
            payload.put_u32(*min_interval_ms);
        }
        Message::Unsubscribe { nonce, peer } => {
            payload.put_u64(*nonce);
            payload.put_u64(peer.0);
        }
        Message::DeltaPush {
            peer,
            epoch,
            class,
            added,
            removed,
        } => {
            payload.put_u64(peer.0);
            payload.put_u64(*epoch);
            payload.put_u8(*class);
            put_neighbors(&mut payload, added);
            payload.put_u16(removed.len() as u16);
            for p in removed {
                payload.put_u64(p.0);
            }
        }
        Message::SubAck {
            nonce,
            peer,
            neighbors,
        } => {
            payload.put_u64(*nonce);
            payload.put_u64(peer.0);
            put_neighbors(&mut payload, neighbors);
        }
        Message::StatsRequest { nonce } => payload.put_u64(*nonce),
        Message::StatsReply { nonce, text } => {
            payload.put_u64(*nonce);
            // u32 length: a full registry exposition can exceed the u16
            // range long before it nears MAX_FRAME_LEN.
            let bytes = text.as_bytes();
            let max = (MAX_FRAME_LEN as usize).saturating_sub(2 + 8 + 4);
            payload.put_u32(bytes.len().min(max) as u32);
            payload.put_slice(&bytes[..bytes.len().min(max)]);
        }
    }
    let len = payload.len() as u32 + 2;
    assert!(
        len <= MAX_FRAME_LEN,
        "encoded frame of {len} bytes exceeds MAX_FRAME_LEN"
    );
    dst.put_u32(len);
    dst.put_u8(WIRE_VERSION);
    dst.put_u8(msg.kind());
    dst.extend_from_slice(&payload);
}

/// Encodes to a fresh buffer (convenience).
pub fn encode_to_bytes(msg: &Message) -> Bytes {
    let mut buf = BytesMut::new();
    encode(msg, &mut buf);
    buf.freeze()
}

fn put_path(dst: &mut BytesMut, path: &PeerPath) {
    dst.put_u16(path.routers().len() as u16);
    for r in path.routers() {
        dst.put_u32(r.0);
    }
}

fn put_neighbors(dst: &mut BytesMut, neighbors: &[WireNeighbor]) {
    dst.put_u16(neighbors.len() as u16);
    for n in neighbors {
        dst.put_u64(n.peer.0);
        dst.put_u32(n.dtree);
    }
}

/// Attempts to decode one frame from the front of `src`.
///
/// On success the frame's bytes are consumed; on [`CodecError::Incomplete`]
/// nothing is consumed (feed more bytes and retry); on any other error the
/// offending frame *is* consumed so the stream can resynchronise — except
/// [`CodecError::FrameTooLarge`], which is raised before a single payload
/// byte is buffered or allocated and consumes nothing: a length prefix past
/// the limit means the stream cannot be trusted to resync, so the caller
/// must drop the connection.
pub fn decode(src: &mut BytesMut) -> Result<Message, CodecError> {
    if src.len() < 4 {
        return Err(CodecError::Incomplete);
    }
    let len = u32::from_be_bytes([src[0], src[1], src[2], src[3]]);
    // Hostile/corrupt length prefix: reject before buffering or allocating
    // anything for the claimed payload.
    if len > MAX_FRAME_LEN {
        return Err(CodecError::FrameTooLarge(len));
    }
    if src.len() < 4 + len as usize {
        return Err(CodecError::Incomplete);
    }
    if len < 2 {
        src.advance(4 + len as usize);
        return Err(CodecError::BadPayload("frame shorter than header".into()));
    }
    src.advance(4);
    let mut frame = src.split_to(len as usize);
    let version = frame.get_u8();
    let kind = frame.get_u8();
    if version != WIRE_VERSION {
        return Err(CodecError::UnknownVersion(version));
    }
    let msg = decode_payload(kind, &mut frame)?;
    if !frame.is_empty() {
        return Err(CodecError::BadPayload(format!(
            "{} trailing bytes in frame",
            frame.len()
        )));
    }
    Ok(msg)
}

fn need(frame: &BytesMut, n: usize, what: &str) -> Result<(), CodecError> {
    if frame.len() < n {
        Err(CodecError::BadPayload(format!("truncated {what}")))
    } else {
        Ok(())
    }
}

fn get_path(frame: &mut BytesMut) -> Result<PeerPath, CodecError> {
    need(frame, 2, "path length")?;
    let n = frame.get_u16() as usize;
    need(frame, n * 4, "path routers")?;
    let routers: Vec<RouterId> = (0..n).map(|_| RouterId(frame.get_u32())).collect();
    PeerPath::new(routers).map_err(|e| CodecError::BadPayload(e.to_string()))
}

fn get_neighbors(frame: &mut BytesMut) -> Result<Vec<WireNeighbor>, CodecError> {
    need(frame, 2, "neighbor count")?;
    let n = frame.get_u16() as usize;
    need(frame, n * 12, "neighbors")?;
    Ok((0..n)
        .map(|_| WireNeighbor {
            peer: PeerId(frame.get_u64()),
            dtree: frame.get_u32(),
        })
        .collect())
}

fn decode_payload(kind: u8, frame: &mut BytesMut) -> Result<Message, CodecError> {
    match kind {
        1 | 2 => {
            need(frame, 8, "nonce")?;
            let nonce = frame.get_u64();
            Ok(if kind == 1 {
                Message::ProbePing { nonce }
            } else {
                Message::ProbePong { nonce }
            })
        }
        3 | 7 => {
            need(frame, 8, "peer id")?;
            let peer = PeerId(frame.get_u64());
            let path = get_path(frame)?;
            Ok(if kind == 3 {
                Message::JoinRequest { peer, path }
            } else {
                Message::HandoverRequest { peer, path }
            })
        }
        4 => {
            need(frame, 8 + 2, "join reply header")?;
            let peer = PeerId(frame.get_u64());
            let n = frame.get_u16() as usize;
            need(frame, n * 12 + 1, "neighbors")?;
            let neighbors = (0..n)
                .map(|_| WireNeighbor {
                    peer: PeerId(frame.get_u64()),
                    dtree: frame.get_u32(),
                })
                .collect();
            let delegate = match frame.get_u8() {
                0 => None,
                1 => {
                    need(frame, 8, "delegate")?;
                    Some(PeerId(frame.get_u64()))
                }
                other => return Err(CodecError::BadPayload(format!("bad delegate flag {other}"))),
            };
            Ok(Message::JoinReply {
                peer,
                neighbors,
                delegate,
            })
        }
        5 => {
            need(frame, 8 + 2, "join error header")?;
            let peer = PeerId(frame.get_u64());
            let n = frame.get_u16() as usize;
            need(frame, n, "reason")?;
            let reason = String::from_utf8(frame.split_to(n).to_vec())
                .map_err(|e| CodecError::BadPayload(e.to_string()))?;
            Ok(Message::JoinError { peer, reason })
        }
        6 => {
            need(frame, 8, "peer id")?;
            Ok(Message::Leave {
                peer: PeerId(frame.get_u64()),
            })
        }
        8 => {
            need(frame, 8, "peer id")?;
            Ok(Message::Heartbeat {
                peer: PeerId(frame.get_u64()),
            })
        }
        9 => {
            need(frame, 8, "nonce")?;
            let nonce = frame.get_u64();
            let path = get_path(frame)?;
            need(frame, 2 + 1, "query tail")?;
            let k = frame.get_u16();
            let exclude = match frame.get_u8() {
                0 => None,
                1 => {
                    need(frame, 8, "exclude")?;
                    Some(PeerId(frame.get_u64()))
                }
                other => return Err(CodecError::BadPayload(format!("bad exclude flag {other}"))),
            };
            Ok(Message::QueryRequest {
                nonce,
                path,
                k,
                exclude,
            })
        }
        10 | 12 => {
            need(frame, 8, "nonce")?;
            let nonce = frame.get_u64();
            let items = get_neighbors(frame)?;
            Ok(if kind == 10 {
                Message::QueryReply {
                    nonce,
                    neighbors: items,
                }
            } else {
                Message::FillReply { nonce, items }
            })
        }
        11 => {
            need(frame, 8 + 4 + 2, "fill request")?;
            Ok(Message::FillRequest {
                nonce: frame.get_u64(),
                router: RouterId(frame.get_u32()),
                limit: frame.get_u16(),
            })
        }
        13 => {
            need(frame, 8, "nonce")?;
            Ok(Message::Shutdown {
                nonce: frame.get_u64(),
            })
        }
        14 => {
            need(frame, 8 + 8 + 2 + 4, "subscribe")?;
            Ok(Message::Subscribe {
                nonce: frame.get_u64(),
                peer: PeerId(frame.get_u64()),
                k: frame.get_u16(),
                min_interval_ms: frame.get_u32(),
            })
        }
        15 => {
            need(frame, 8 + 8, "unsubscribe")?;
            Ok(Message::Unsubscribe {
                nonce: frame.get_u64(),
                peer: PeerId(frame.get_u64()),
            })
        }
        16 => {
            need(frame, 8 + 8 + 1, "delta push header")?;
            let peer = PeerId(frame.get_u64());
            let epoch = frame.get_u64();
            let class = frame.get_u8();
            let added = get_neighbors(frame)?;
            need(frame, 2, "removed count")?;
            let n = frame.get_u16() as usize;
            need(frame, n * 8, "removed peers")?;
            let removed = (0..n).map(|_| PeerId(frame.get_u64())).collect();
            Ok(Message::DeltaPush {
                peer,
                epoch,
                class,
                added,
                removed,
            })
        }
        17 => {
            need(frame, 8 + 8, "sub ack header")?;
            let nonce = frame.get_u64();
            let peer = PeerId(frame.get_u64());
            let neighbors = get_neighbors(frame)?;
            Ok(Message::SubAck {
                nonce,
                peer,
                neighbors,
            })
        }
        18 => {
            need(frame, 8, "nonce")?;
            Ok(Message::StatsRequest {
                nonce: frame.get_u64(),
            })
        }
        19 => {
            need(frame, 8 + 4, "stats reply header")?;
            let nonce = frame.get_u64();
            let n = frame.get_u32() as usize;
            need(frame, n, "stats text")?;
            let text = String::from_utf8(frame.split_to(n).to_vec())
                .map_err(|e| CodecError::BadPayload(e.to_string()))?;
            Ok(Message::StatsReply { nonce, text })
        }
        other => Err(CodecError::UnknownKind(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_path() -> PeerPath {
        PeerPath::new(vec![RouterId(9), RouterId(4), RouterId(0)]).unwrap()
    }

    fn all_messages() -> Vec<Message> {
        vec![
            Message::ProbePing { nonce: 0xDEAD_BEEF },
            Message::ProbePong { nonce: 42 },
            Message::JoinRequest {
                peer: PeerId(7),
                path: sample_path(),
            },
            Message::JoinReply {
                peer: PeerId(7),
                neighbors: vec![
                    WireNeighbor {
                        peer: PeerId(1),
                        dtree: 2,
                    },
                    WireNeighbor {
                        peer: PeerId(2),
                        dtree: 5,
                    },
                ],
                delegate: Some(PeerId(1)),
            },
            Message::JoinReply {
                peer: PeerId(8),
                neighbors: vec![],
                delegate: None,
            },
            Message::JoinError {
                peer: PeerId(9),
                reason: "unknown landmark".into(),
            },
            Message::Leave { peer: PeerId(3) },
            Message::HandoverRequest {
                peer: PeerId(4),
                path: sample_path(),
            },
            Message::Heartbeat { peer: PeerId(5) },
            Message::QueryRequest {
                nonce: 11,
                path: sample_path(),
                k: 5,
                exclude: Some(PeerId(7)),
            },
            Message::QueryRequest {
                nonce: 12,
                path: sample_path(),
                k: 1,
                exclude: None,
            },
            Message::QueryReply {
                nonce: 11,
                neighbors: vec![
                    WireNeighbor {
                        peer: PeerId(3),
                        dtree: 1,
                    },
                    WireNeighbor {
                        peer: PeerId(4),
                        dtree: 9,
                    },
                ],
            },
            Message::QueryReply {
                nonce: 12,
                neighbors: vec![],
            },
            Message::FillRequest {
                nonce: 13,
                router: RouterId(4),
                limit: 16,
            },
            Message::FillReply {
                nonce: 13,
                items: vec![WireNeighbor {
                    peer: PeerId(6),
                    dtree: 0,
                }],
            },
            Message::Shutdown { nonce: 14 },
            Message::Subscribe {
                nonce: 15,
                peer: PeerId(7),
                k: 8,
                min_interval_ms: 250,
            },
            Message::Unsubscribe {
                nonce: 16,
                peer: PeerId(7),
            },
            Message::DeltaPush {
                peer: PeerId(7),
                epoch: 3,
                class: 2,
                added: vec![WireNeighbor {
                    peer: PeerId(9),
                    dtree: 4,
                }],
                removed: vec![PeerId(1), PeerId(2)],
            },
            Message::DeltaPush {
                peer: PeerId(8),
                epoch: 0,
                class: 0,
                added: vec![],
                removed: vec![],
            },
            Message::SubAck {
                nonce: 15,
                peer: PeerId(7),
                neighbors: vec![WireNeighbor {
                    peer: PeerId(9),
                    dtree: 4,
                }],
            },
            Message::StatsRequest { nonce: 17 },
            Message::StatsReply {
                nonce: 17,
                text: "dir_queries_total 12\ndir_query_latency_us_count 12\n".into(),
            },
            Message::StatsReply {
                nonce: 18,
                text: String::new(),
            },
        ]
    }

    #[test]
    fn round_trip_every_kind() {
        for msg in all_messages() {
            let mut buf = BytesMut::new();
            encode(&msg, &mut buf);
            let decoded = decode(&mut buf).unwrap();
            assert_eq!(decoded, msg);
            assert!(buf.is_empty(), "frame fully consumed");
        }
    }

    #[test]
    fn streaming_multiple_frames() {
        let msgs = all_messages();
        let mut buf = BytesMut::new();
        for m in &msgs {
            encode(m, &mut buf);
        }
        for want in &msgs {
            let got = decode(&mut buf).unwrap();
            assert_eq!(&got, want);
        }
        assert!(matches!(decode(&mut buf), Err(CodecError::Incomplete)));
    }

    #[test]
    fn incomplete_frames_wait_for_more() {
        let mut full = BytesMut::new();
        encode(&Message::Leave { peer: PeerId(1) }, &mut full);
        for cut in 0..full.len() {
            let mut partial = BytesMut::from(&full[..cut]);
            assert!(
                matches!(decode(&mut partial), Err(CodecError::Incomplete)),
                "cut at {cut} must be incomplete"
            );
            assert_eq!(partial.len(), cut, "nothing consumed on Incomplete");
        }
    }

    #[test]
    fn rejects_unknown_version_and_kind() {
        let mut buf = BytesMut::new();
        buf.put_u32(2);
        buf.put_u8(99); // version
        buf.put_u8(1); // kind
        assert!(matches!(
            decode(&mut buf),
            Err(CodecError::UnknownVersion(99))
        ));

        let mut buf = BytesMut::new();
        buf.put_u32(2);
        buf.put_u8(WIRE_VERSION);
        buf.put_u8(200); // kind
        assert!(matches!(
            decode(&mut buf),
            Err(CodecError::UnknownKind(200))
        ));
    }

    #[test]
    fn rejects_oversized_frames() {
        let mut buf = BytesMut::new();
        buf.put_u32(MAX_FRAME_LEN + 1);
        buf.put_slice(&[0u8; 16]);
        assert!(matches!(
            decode(&mut buf),
            Err(CodecError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn rejects_max_u32_prefix_before_any_buffering() {
        // A hostile length prefix claiming 4 GiB, with nothing behind it:
        // must be rejected immediately (not reported Incomplete, which
        // would make the server buffer towards 4 GiB), allocation-free.
        let mut buf = BytesMut::new();
        buf.put_u32(u32::MAX);
        assert!(matches!(
            decode(&mut buf),
            Err(CodecError::FrameTooLarge(u32::MAX))
        ));
        // Nothing consumed: the connection is poisoned, the caller drops it.
        assert_eq!(buf.len(), 4);
    }

    #[test]
    fn truncated_after_short_prefix_is_incomplete_not_panic() {
        // len=1 (< header size) with the payload byte not yet arrived:
        // previously this advanced past the end of the buffer and panicked.
        let mut buf = BytesMut::new();
        buf.put_u32(1);
        assert!(
            matches!(decode(&mut buf), Err(CodecError::Incomplete)),
            "truncated after prefix must be Incomplete"
        );
        assert_eq!(buf.len(), 4, "nothing consumed while incomplete");
        // len=0 needs no further bytes — the empty frame is complete,
        // consumed, and rejected.
        let mut buf = BytesMut::new();
        buf.put_u32(0);
        assert!(matches!(decode(&mut buf), Err(CodecError::BadPayload(_))));
        assert!(buf.is_empty(), "undersized frame consumed for resync");
        // Once the (undersized) frame has fully arrived it is consumed and
        // rejected so the stream can resynchronise.
        let mut buf = BytesMut::new();
        buf.put_u32(1);
        buf.put_u8(WIRE_VERSION);
        encode(&Message::Leave { peer: PeerId(5) }, &mut buf);
        assert!(matches!(decode(&mut buf), Err(CodecError::BadPayload(_))));
        assert_eq!(
            decode(&mut buf).unwrap(),
            Message::Leave { peer: PeerId(5) }
        );
    }

    #[test]
    fn rejects_truncated_payload_inside_frame() {
        // A JoinRequest frame claiming a longer path than present.
        let mut buf = BytesMut::new();
        let mut payload = BytesMut::new();
        payload.put_u64(1); // peer
        payload.put_u16(5); // 5 routers claimed...
        payload.put_u32(1); // ...but only one present
        buf.put_u32(payload.len() as u32 + 2);
        buf.put_u8(WIRE_VERSION);
        buf.put_u8(3);
        buf.extend_from_slice(&payload);
        assert!(matches!(decode(&mut buf), Err(CodecError::BadPayload(_))));
    }

    #[test]
    fn rejects_trailing_garbage_in_frame() {
        let mut buf = BytesMut::new();
        let mut payload = BytesMut::new();
        payload.put_u64(1);
        payload.put_u64(0xFFFF); // extra bytes after a valid Leave payload
        buf.put_u32(payload.len() as u32 + 2);
        buf.put_u8(WIRE_VERSION);
        buf.put_u8(6);
        buf.extend_from_slice(&payload);
        assert!(matches!(decode(&mut buf), Err(CodecError::BadPayload(_))));
    }

    #[test]
    fn rejects_looping_path_on_decode() {
        let mut buf = BytesMut::new();
        let mut payload = BytesMut::new();
        payload.put_u64(1);
        payload.put_u16(2);
        payload.put_u32(7);
        payload.put_u32(7); // repeated router = loop
        buf.put_u32(payload.len() as u32 + 2);
        buf.put_u8(WIRE_VERSION);
        buf.put_u8(3);
        buf.extend_from_slice(&payload);
        assert!(matches!(decode(&mut buf), Err(CodecError::BadPayload(_))));
    }

    #[test]
    fn resynchronises_after_bad_frame() {
        let mut buf = BytesMut::new();
        // Bad frame (unknown kind), then a good one.
        buf.put_u32(2);
        buf.put_u8(WIRE_VERSION);
        buf.put_u8(250);
        encode(&Message::Leave { peer: PeerId(5) }, &mut buf);
        assert!(matches!(
            decode(&mut buf),
            Err(CodecError::UnknownKind(250))
        ));
        assert_eq!(
            decode(&mut buf).unwrap(),
            Message::Leave { peer: PeerId(5) }
        );
    }
}
