//! The management server — round 2 of the paper's protocol.

use crate::error::CoreError;
use crate::ids::{LandmarkId, PeerId};
use crate::path::PeerPath;
use crate::path_tree::PathTree;
use crate::router_index::{Neighbor, RouterIndex};
use crate::superpeer::{SuperPeerConfig, SuperPeerDirectory};
use nearpeer_routing::RouteOracle;
use nearpeer_topology::{RouterId, Topology};
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Server tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Neighbors returned to a newcomer (the paper's "short list").
    pub neighbor_count: usize,
    /// When the path-tree search finds fewer than `neighbor_count` peers,
    /// fill the list with cross-landmark candidates ranked by the bridge
    /// estimate `depth(p) + hops(L_p, L_q) + depth(q)` (DESIGN.md §5).
    pub cross_landmark_fallback: bool,
    /// Enables super-peer promotion (W2).
    pub super_peers: Option<SuperPeerConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            neighbor_count: 5,
            cross_landmark_fallback: true,
            super_peers: None,
        }
    }
}

/// What a newcomer receives back from its join request.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinOutcome {
    /// The landmark the peer registered under.
    pub landmark: LandmarkId,
    /// The closest peers the server inferred, nearest first.
    pub neighbors: Vec<Neighbor>,
    /// A super-peer in the newcomer's region that could have answered the
    /// query instead of the server (W2), if one exists.
    pub delegate: Option<PeerId>,
}

/// Per-landmark slice of a [`ServerReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LandmarkReport {
    /// The landmark id.
    pub landmark: LandmarkId,
    /// Its router.
    pub router: RouterId,
    /// Peers registered under it.
    pub peers: usize,
    /// Routers in its path tree.
    pub tree_routers: usize,
    /// Route-inconsistency count (holes / instability).
    pub route_inconsistencies: usize,
}

/// Operator-facing snapshot of a [`ManagementServer`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServerReport {
    /// Registered peers.
    pub peers: usize,
    /// Distinct routers referenced by stored paths.
    pub indexed_routers: usize,
    /// Current heartbeat epoch.
    pub epoch: u64,
    /// Super-peers currently elected.
    pub super_peers: usize,
    /// Aggregate counters.
    pub stats: ServerStats,
    /// One entry per landmark.
    pub per_landmark: Vec<LandmarkReport>,
}

impl std::fmt::Display for ServerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} peers over {} routers (epoch {}, {} super-peers)",
            self.peers, self.indexed_routers, self.epoch, self.super_peers
        )?;
        writeln!(
            f,
            "joins {} / queries {} / leaves {} / handovers {} / x-lmk fills {}",
            self.stats.joins,
            self.stats.queries,
            self.stats.leaves,
            self.stats.handovers,
            self.stats.cross_landmark_fills
        )?;
        for lm in &self.per_landmark {
            writeln!(
                f,
                "  {} at {}: {} peers, {} tree routers, {} inconsistencies",
                lm.landmark, lm.router, lm.peers, lm.tree_routers, lm.route_inconsistencies
            )?;
        }
        Ok(())
    }
}

/// Aggregate server-side counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Successful registrations.
    pub joins: u64,
    /// Closest-peer queries answered (including those inside joins).
    pub queries: u64,
    /// Neighbors served through the cross-landmark fallback.
    pub cross_landmark_fills: u64,
    /// Departures processed.
    pub leaves: u64,
    /// Mobility handovers processed.
    pub handovers: u64,
}

/// The management server of §2: knows every peer's path to its landmark and
/// answers "who is closest to this newcomer" from the [`RouterIndex`].
///
/// The server never sees the topology at runtime — it only consumes router
/// paths, exactly like the deployed system would. (The [`Self::bootstrap`]
/// constructor uses the topology once, standing in for the real system's
/// landmark-to-landmark traceroutes at startup.)
pub struct ManagementServer {
    config: ServerConfig,
    landmark_routers: Vec<RouterId>,
    landmark_by_router: HashMap<RouterId, LandmarkId>,
    /// Hop distance between landmark routers (bootstrap measurements).
    landmark_dist: Vec<Vec<u32>>,
    index: RouterIndex,
    trees: Vec<PathTree>,
    peer_landmark: HashMap<PeerId, LandmarkId>,
    super_peers: Option<SuperPeerDirectory>,
    stats: ServerStats,
    /// Soft-state lease bookkeeping for faulty-peer expiry (W3): the epoch
    /// at which each peer last checked in. Epochs are application-driven
    /// ticks (e.g. heartbeat rounds), not wall clock — the server stays
    /// deterministic.
    last_seen: HashMap<PeerId, u64>,
    epoch: u64,
}

impl ManagementServer {
    /// Creates a server from landmark routers and their pairwise hop
    /// distances (row-major square matrix; `u32::MAX` = unknown).
    pub fn new(
        landmark_routers: Vec<RouterId>,
        landmark_dist: Vec<Vec<u32>>,
        config: ServerConfig,
    ) -> Self {
        debug_assert_eq!(landmark_dist.len(), landmark_routers.len());
        let landmark_by_router = landmark_routers
            .iter()
            .enumerate()
            .map(|(i, &r)| (r, LandmarkId(i as u32)))
            .collect();
        let trees = landmark_routers.iter().map(|&r| PathTree::new(r)).collect();
        Self {
            super_peers: config.super_peers.map(SuperPeerDirectory::new),
            config,
            landmark_by_router,
            landmark_dist,
            index: RouterIndex::new(),
            trees,
            peer_landmark: HashMap::new(),
            stats: ServerStats::default(),
            landmark_routers,
            last_seen: HashMap::new(),
            epoch: 0,
        }
    }

    /// Convenience constructor measuring landmark-to-landmark hop distances
    /// over the topology (the real system would traceroute between
    /// landmarks once at startup).
    pub fn bootstrap(
        topo: &Topology,
        landmark_routers: Vec<RouterId>,
        config: ServerConfig,
    ) -> Self {
        let oracle = RouteOracle::new(topo);
        let n = landmark_routers.len();
        let mut dist = vec![vec![u32::MAX; n]; n];
        for (i, &a) in landmark_routers.iter().enumerate() {
            dist[i][i] = 0;
            for (j, &b) in landmark_routers.iter().enumerate().skip(i + 1) {
                if let Some(h) = oracle.hops(a, b) {
                    dist[i][j] = h;
                    dist[j][i] = h;
                }
            }
        }
        Self::new(landmark_routers, dist, config)
    }

    /// The landmark routers, indexed by [`LandmarkId`].
    pub fn landmarks(&self) -> &[RouterId] {
        &self.landmark_routers
    }

    /// The active configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Registered peer count.
    pub fn peer_count(&self) -> usize {
        self.index.len()
    }

    /// The landmark a peer registered under.
    pub fn landmark_of(&self, peer: PeerId) -> Option<LandmarkId> {
        self.peer_landmark.get(&peer).copied()
    }

    /// The stored path of a peer.
    pub fn path_of(&self, peer: PeerId) -> Option<&PeerPath> {
        self.index.path_of(peer)
    }

    /// The landmark tree (analytics view).
    pub fn tree(&self, landmark: LandmarkId) -> Option<&PathTree> {
        self.trees.get(landmark.index())
    }

    /// The super-peer directory, when enabled.
    pub fn super_peer_directory(&self) -> Option<&SuperPeerDirectory> {
        self.super_peers.as_ref()
    }

    /// Direct access to the underlying index (read-only).
    pub fn index(&self) -> &RouterIndex {
        &self.index
    }

    fn landmark_for_path(&self, path: &PeerPath) -> Result<LandmarkId, CoreError> {
        self.landmark_by_router
            .get(&path.landmark_router())
            .copied()
            .ok_or_else(|| {
                CoreError::UnknownLandmark(format!(
                    "path terminates at {} which is no landmark",
                    path.landmark_router()
                ))
            })
    }

    /// Round 2, newcomer insertion: stores the peer's path (`O(d·log n)`)
    /// and answers its closest peers.
    pub fn register(&mut self, peer: PeerId, path: PeerPath) -> Result<JoinOutcome, CoreError> {
        let landmark = self.landmark_for_path(&path)?;
        self.index.insert(peer, path.clone())?;
        self.trees[landmark.index()].insert(peer, &path);
        self.peer_landmark.insert(peer, landmark);
        let delegate = if let Some(dir) = self.super_peers.as_mut() {
            let delegate = dir.super_peer_for(&path);
            dir.on_register(peer, &path);
            delegate
        } else {
            None
        };
        self.stats.joins += 1;
        self.last_seen.insert(peer, self.epoch);
        let neighbors = self.closest_to_path(&path, self.config.neighbor_count, Some(peer));
        Ok(JoinOutcome {
            landmark,
            neighbors,
            delegate,
        })
    }

    /// Removes a departed (or failed) peer — churn, W3.
    pub fn deregister(&mut self, peer: PeerId) -> Result<(), CoreError> {
        if self.index.remove(peer).is_none() {
            return Err(CoreError::UnknownPeer(peer));
        }
        if let Some(landmark) = self.peer_landmark.remove(&peer) {
            self.trees[landmark.index()].remove(peer);
        }
        if let Some(dir) = self.super_peers.as_mut() {
            dir.on_deregister(peer);
        }
        self.last_seen.remove(&peer);
        self.stats.leaves += 1;
        Ok(())
    }

    /// Records a heartbeat from a live peer (faulty-peer management, W3).
    pub fn heartbeat(&mut self, peer: PeerId) -> Result<(), CoreError> {
        if !self.index.contains(peer) {
            return Err(CoreError::UnknownPeer(peer));
        }
        self.last_seen.insert(peer, self.epoch);
        Ok(())
    }

    /// Advances the server's heartbeat epoch and returns it. Applications
    /// call this once per heartbeat round.
    pub fn advance_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// The current heartbeat epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Expires every peer not seen for more than `max_age` epochs,
    /// returning the expired ids — this is how silently failed peers leave
    /// the index (the staleness W3 measures without it).
    pub fn expire_stale(&mut self, max_age: u64) -> Vec<PeerId> {
        let cutoff = self.epoch.saturating_sub(max_age);
        let stale: Vec<PeerId> = self
            .last_seen
            .iter()
            .filter(|&(_, &seen)| seen < cutoff)
            .map(|(&p, _)| p)
            .collect();
        for &peer in &stale {
            // deregister also removes last_seen; counted as a leave.
            let _ = self.deregister(peer);
        }
        stale
    }

    /// Mobility handover (W3): the peer re-traceroutes from its new
    /// attachment and atomically replaces its record, receiving a fresh
    /// neighbor list.
    pub fn handover(&mut self, peer: PeerId, new_path: PeerPath) -> Result<JoinOutcome, CoreError> {
        if !self.index.contains(peer) {
            return Err(CoreError::UnknownPeer(peer));
        }
        self.deregister(peer)?;
        // deregister/register both count; fix up the stats to count one
        // handover instead of a leave+join.
        self.stats.leaves -= 1;
        let outcome = self.register(peer, new_path)?;
        self.stats.joins -= 1;
        self.stats.handovers += 1;
        Ok(outcome)
    }

    /// The closest registered peers to an arbitrary query path (`O(1)` in
    /// the population, per §2).
    pub fn closest_to_path(
        &mut self,
        path: &PeerPath,
        k: usize,
        exclude: Option<PeerId>,
    ) -> Vec<Neighbor> {
        self.stats.queries += 1;
        let excl: HashSet<PeerId> = exclude.into_iter().collect();
        let mut result = self.index.query_nearest(path, k, &excl);
        if result.len() < k && self.config.cross_landmark_fallback {
            let missing = k - result.len();
            let have: HashSet<PeerId> = result.iter().map(|n| n.peer).collect();
            let fill = self.cross_landmark_candidates(path, missing, &excl, &have);
            self.stats.cross_landmark_fills += fill.len() as u64;
            result.extend(fill);
        }
        result
    }

    /// Neighbors of an already-registered peer (fresh query).
    pub fn neighbors_of(&mut self, peer: PeerId, k: usize) -> Result<Vec<Neighbor>, CoreError> {
        let path = self
            .index
            .path_of(peer)
            .cloned()
            .ok_or(CoreError::UnknownPeer(peer))?;
        Ok(self.closest_to_path(&path, k, Some(peer)))
    }

    /// Builds an operator-facing snapshot of the server's state.
    pub fn report(&self) -> ServerReport {
        let per_landmark = self
            .trees
            .iter()
            .enumerate()
            .map(|(i, tree)| LandmarkReport {
                landmark: LandmarkId(i as u32),
                router: tree.root(),
                peers: tree.n_peers(),
                tree_routers: tree.n_nodes(),
                route_inconsistencies: tree.inconsistencies(),
            })
            .collect();
        ServerReport {
            peers: self.index.len(),
            indexed_routers: self.index.n_routers(),
            epoch: self.epoch,
            super_peers: self
                .super_peers
                .as_ref()
                .map(|d| d.n_super_peers())
                .unwrap_or(0),
            stats: self.stats,
            per_landmark,
        }
    }

    /// Cross-landmark fill: rank foreign peers by
    /// `depth(query) + hops(L_query, L_other) + depth(peer)` using the
    /// per-landmark ordered lists at the landmark routers.
    fn cross_landmark_candidates(
        &self,
        path: &PeerPath,
        k: usize,
        exclude: &HashSet<PeerId>,
        already: &HashSet<PeerId>,
    ) -> Vec<Neighbor> {
        let Ok(own) = self.landmark_for_path(path) else {
            return Vec::new();
        };
        let query_depth = path.depth();
        // K-way merge over the other landmarks' peer lists (each ordered by
        // depth below its landmark router).
        let mut heap: BinaryHeap<std::cmp::Reverse<(u32, PeerId, usize)>> = BinaryHeap::new();
        let mut iters: Vec<Box<dyn Iterator<Item = (PeerId, u32)> + '_>> = Vec::new();
        for (li, &lrouter) in self.landmark_routers.iter().enumerate() {
            if LandmarkId(li as u32) == own {
                continue;
            }
            let bridge = self.landmark_dist[own.index()][li];
            if bridge == u32::MAX {
                continue;
            }
            let mut iter = self.index.peers_through(lrouter);
            if let Some((peer, depth)) = iter.next() {
                let idx = iters.len();
                heap.push(std::cmp::Reverse((query_depth + bridge + depth, peer, idx)));
                iters.push(Box::new(iter));
            }
        }
        let mut out = Vec::with_capacity(k);
        let mut emitted: HashSet<PeerId> = HashSet::new();
        while let Some(std::cmp::Reverse((est, peer, idx))) = heap.pop() {
            if let Some((next_peer, depth)) = iters[idx].next() {
                // All entries of one iterator share the same bridge+query
                // part; recover it from the popped estimate.
                let base = est - self.index.path_of(peer).map_or(0, |p| p.depth());
                heap.push(std::cmp::Reverse((base + depth, next_peer, idx)));
            }
            if exclude.contains(&peer) || already.contains(&peer) || !emitted.insert(peer) {
                continue;
            }
            out.push(Neighbor { peer, dtree: est });
            if out.len() == k {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nearpeer_topology::presets::figure1;

    fn path(ids: &[u32]) -> PeerPath {
        PeerPath::new(ids.iter().map(|&i| RouterId(i)).collect()).unwrap()
    }

    /// Two landmarks (routers 0 and 100), 5 hops apart.
    fn two_landmark_server(config: ServerConfig) -> ManagementServer {
        ManagementServer::new(
            vec![RouterId(0), RouterId(100)],
            vec![vec![0, 5], vec![5, 0]],
            config,
        )
    }

    #[test]
    fn register_returns_nearest_neighbors() {
        let mut srv = two_landmark_server(ServerConfig::default());
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        srv.register(PeerId(2), path(&[5, 2, 1, 0])).unwrap();
        srv.register(PeerId(3), path(&[6, 3, 1, 0])).unwrap();
        let out = srv.register(PeerId(4), path(&[7, 2, 1, 0])).unwrap();
        assert_eq!(out.landmark, LandmarkId(0));
        let peers: Vec<PeerId> = out.neighbors.iter().map(|n| n.peer).collect();
        // 1 and 2 meet the newcomer at router 2 (dtree 2), 3 at router 1
        // (dtree 4). The newcomer itself is excluded.
        assert_eq!(peers, vec![PeerId(1), PeerId(2), PeerId(3)]);
        assert_eq!(out.neighbors[0].dtree, 2);
        assert_eq!(out.neighbors[2].dtree, 4);
        assert_eq!(srv.peer_count(), 4);
    }

    #[test]
    fn unknown_landmark_rejected() {
        let mut srv = two_landmark_server(ServerConfig::default());
        let err = srv.register(PeerId(1), path(&[4, 2, 99])).unwrap_err();
        assert!(matches!(err, CoreError::UnknownLandmark(_)));
        assert_eq!(srv.peer_count(), 0);
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut srv = two_landmark_server(ServerConfig::default());
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        let err = srv.register(PeerId(1), path(&[5, 2, 1, 0])).unwrap_err();
        assert!(matches!(err, CoreError::DuplicatePeer(_)));
    }

    #[test]
    fn deregister_and_unknown() {
        let mut srv = two_landmark_server(ServerConfig::default());
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        srv.deregister(PeerId(1)).unwrap();
        assert_eq!(srv.peer_count(), 0);
        assert!(matches!(
            srv.deregister(PeerId(1)),
            Err(CoreError::UnknownPeer(_))
        ));
        assert_eq!(srv.landmark_of(PeerId(1)), None);
        assert_eq!(srv.tree(LandmarkId(0)).unwrap().n_peers(), 0);
    }

    #[test]
    fn handover_moves_the_peer() {
        let mut srv = two_landmark_server(ServerConfig::default());
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        srv.register(PeerId(2), path(&[110, 105, 100])).unwrap();
        // Peer 1 moves to the other landmark's side.
        let out = srv.handover(PeerId(1), path(&[111, 105, 100])).unwrap();
        assert_eq!(out.landmark, LandmarkId(1));
        assert_eq!(srv.landmark_of(PeerId(1)), Some(LandmarkId(1)));
        assert_eq!(out.neighbors[0].peer, PeerId(2));
        let stats = srv.stats();
        assert_eq!(stats.handovers, 1);
        assert_eq!(stats.joins, 2);
        assert_eq!(stats.leaves, 0);
        assert!(matches!(
            srv.handover(PeerId(9), path(&[4, 2, 1, 0])),
            Err(CoreError::UnknownPeer(_))
        ));
    }

    #[test]
    fn cross_landmark_fallback_fills() {
        let mut srv = two_landmark_server(ServerConfig {
            neighbor_count: 3,
            ..ServerConfig::default()
        });
        // One local peer, two foreign peers at different depths.
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        srv.register(PeerId(2), path(&[110, 105, 100])).unwrap(); // depth 2
        srv.register(PeerId(3), path(&[120, 121, 105, 100]))
            .unwrap(); // depth 3
        let fills_before = srv.stats().cross_landmark_fills;
        let out = srv.register(PeerId(4), path(&[5, 2, 1, 0])).unwrap();
        let peers: Vec<PeerId> = out.neighbors.iter().map(|n| n.peer).collect();
        assert_eq!(peers[0], PeerId(1), "local peer first");
        // Foreign fills ranked by depth: query depth 3 + bridge 5 + depth.
        assert_eq!(peers[1], PeerId(2));
        assert_eq!(peers[2], PeerId(3));
        assert_eq!(out.neighbors[1].dtree, 3 + 5 + 2);
        assert_eq!(out.neighbors[2].dtree, 3 + 5 + 3);
        assert_eq!(srv.stats().cross_landmark_fills - fills_before, 2);
    }

    #[test]
    fn fallback_disabled_returns_short_list() {
        let mut srv = two_landmark_server(ServerConfig {
            neighbor_count: 3,
            cross_landmark_fallback: false,
            ..ServerConfig::default()
        });
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        srv.register(PeerId(2), path(&[110, 105, 100])).unwrap();
        let out = srv.register(PeerId(3), path(&[5, 2, 1, 0])).unwrap();
        assert_eq!(out.neighbors.len(), 1);
        assert_eq!(srv.stats().cross_landmark_fills, 0);
    }

    #[test]
    fn super_peer_delegation_reported() {
        let cfg = ServerConfig {
            neighbor_count: 2,
            super_peers: Some(SuperPeerConfig {
                region_depth: 2,
                promote_threshold: 2,
            }),
            ..ServerConfig::default()
        };
        let mut srv = two_landmark_server(cfg);
        assert!(srv
            .register(PeerId(1), path(&[4, 2, 1, 0]))
            .unwrap()
            .delegate
            .is_none());
        assert!(
            srv.register(PeerId(2), path(&[5, 2, 1, 0]))
                .unwrap()
                .delegate
                .is_none(),
            "promotion happens after the second join"
        );
        // Third join in the same region can delegate to the elected peer 1.
        let out = srv.register(PeerId(3), path(&[6, 2, 1, 0])).unwrap();
        assert_eq!(out.delegate, Some(PeerId(1)));
        let dir = srv.super_peer_directory().unwrap();
        assert_eq!(dir.n_super_peers(), 1);
    }

    #[test]
    fn bootstrap_measures_landmark_distances() {
        let fig = figure1();
        let ra = fig.core[0];
        let rb = fig.core[1];
        let srv = ManagementServer::bootstrap(
            &fig.topology,
            vec![fig.landmark, ra, rb],
            ServerConfig::default(),
        );
        // lmk-ra adjacent, lmk-rb two hops.
        assert_eq!(srv.landmark_dist[0][1], 1);
        assert_eq!(srv.landmark_dist[0][2], 2);
        assert_eq!(srv.landmark_dist[1][2], 1);
        assert_eq!(srv.landmark_dist[2][0], 2);
    }

    #[test]
    fn heartbeat_and_expiry() {
        let mut srv = two_landmark_server(ServerConfig::default());
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        srv.register(PeerId(2), path(&[5, 2, 1, 0])).unwrap();
        assert!(matches!(
            srv.heartbeat(PeerId(9)),
            Err(CoreError::UnknownPeer(_))
        ));
        // Peer 1 keeps heartbeating; peer 2 fails silently.
        for _ in 0..5 {
            srv.advance_epoch();
            srv.heartbeat(PeerId(1)).unwrap();
        }
        assert_eq!(srv.epoch(), 5);
        let expired = srv.expire_stale(3);
        assert_eq!(expired, vec![PeerId(2)]);
        assert_eq!(srv.peer_count(), 1);
        assert!(srv.path_of(PeerId(2)).is_none());
        // Nothing further to expire.
        assert!(srv.expire_stale(3).is_empty());
        // Expired peers disappear from answers.
        let neigh = srv.neighbors_of(PeerId(1), 5).unwrap();
        assert!(neigh.is_empty());
    }

    #[test]
    fn expiry_respects_grace_window() {
        let mut srv = two_landmark_server(ServerConfig::default());
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        srv.advance_epoch();
        srv.advance_epoch();
        // Age 2 with max_age 2: still inside the lease.
        assert!(srv.expire_stale(2).is_empty());
        srv.advance_epoch();
        assert_eq!(srv.expire_stale(2), vec![PeerId(1)]);
    }

    #[test]
    fn neighbors_of_registered_peer() {
        let mut srv = two_landmark_server(ServerConfig::default());
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        srv.register(PeerId(2), path(&[5, 2, 1, 0])).unwrap();
        let n = srv.neighbors_of(PeerId(1), 3).unwrap();
        assert_eq!(n.len(), 1);
        assert_eq!(n[0].peer, PeerId(2));
        assert!(matches!(
            srv.neighbors_of(PeerId(9), 3),
            Err(CoreError::UnknownPeer(_))
        ));
    }
}
