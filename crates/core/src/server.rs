//! The management server — round 2 of the paper's protocol.
//!
//! Since the directory refactor the server is a thin **facade** over
//! per-landmark [`DirectoryShard`]s (see [`crate::directory`]): writes are
//! routed to the shard owning the peer's landmark, reads take `&self` and
//! merge per-shard answers, and only genuinely cross-landmark state —
//! bridge distances, super-peer regions, aggregate counters — lives here.

use crate::directory::persist::journal::{JournalOp, JournalReader};
use crate::directory::persist::{self, wire, PersistError, RecoveryReport};
use crate::directory::query::{self, MergedPeersThrough};
use crate::directory::{AdaptiveLeaseConfig, DirectoryShard, ShardAbsorb};
use crate::error::CoreError;
use crate::ids::{LandmarkId, PeerId};
use crate::path::PeerPath;
use crate::path_tree::PathTree;
use crate::router_index::Neighbor;
use crate::subscription::{
    DeltaClass, NeighborDelta, Subscription, SubscriptionHost, SubscriptionRegistry,
    SubscriptionStats,
};
use crate::superpeer::{SuperPeerConfig, SuperPeerDirectory};
use crate::telemetry::{Counter, Histogram, SlowQueryRecord, TelemetryRegistry};
use nearpeer_routing::RouteOracle;
use nearpeer_topology::{RouterId, Topology};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Server tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Neighbors returned to a newcomer (the paper's "short list").
    pub neighbor_count: usize,
    /// When the path-tree search finds fewer than `neighbor_count` peers,
    /// fill the list with cross-landmark candidates ranked by the bridge
    /// estimate `depth(p) + hops(L_p, L_q) + depth(q)` (DESIGN.md §5).
    pub cross_landmark_fallback: bool,
    /// Enables super-peer promotion (W2).
    pub super_peers: Option<SuperPeerConfig>,
    /// Enables adaptive lease lengths: each shard tracks an EWMA of every
    /// peer's session length and sizes its lease accordingly at renewal
    /// time, capped to the configured band (see [`AdaptiveLeaseConfig`]).
    /// `None` = one uniform lease length (the `max_age` passed to
    /// [`ManagementServer::expire_stale`]).
    pub adaptive_leases: Option<AdaptiveLeaseConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            neighbor_count: 5,
            cross_landmark_fallback: true,
            super_peers: None,
            adaptive_leases: None,
        }
    }
}

impl ServerConfig {
    /// Rejects configurations that cannot work at runtime with a typed
    /// [`CoreError::InvalidConfig`], instead of letting them surface later
    /// as silent misbehavior (a zero neighbor count answers every query
    /// with nothing; an adaptive band with `min_age > max_age` or
    /// `min_age == 0` would expire live, cooperating peers between
    /// renewals).
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.neighbor_count == 0 {
            return Err(CoreError::InvalidConfig(
                "neighbor_count must be at least 1".into(),
            ));
        }
        if let Some(a) = self.adaptive_leases {
            if a.min_age == 0 {
                return Err(CoreError::InvalidConfig(
                    "adaptive_leases.min_age must be at least 1 (a zero floor expires \
                     live peers between renewals)"
                        .into(),
                ));
            }
            if a.min_age > a.max_age {
                return Err(CoreError::InvalidConfig(format!(
                    "adaptive_leases.min_age ({}) exceeds max_age ({})",
                    a.min_age, a.max_age
                )));
            }
        }
        Ok(())
    }
}

/// What a newcomer receives back from its join request.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinOutcome {
    /// The landmark the peer registered under.
    pub landmark: LandmarkId,
    /// The closest peers the server inferred, nearest first.
    pub neighbors: Vec<Neighbor>,
    /// A super-peer in the newcomer's region that could have answered the
    /// query instead of the server (W2), if one exists.
    pub delegate: Option<PeerId>,
}

/// Per-landmark slice of a [`ServerReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LandmarkReport {
    /// The landmark id.
    pub landmark: LandmarkId,
    /// Its router.
    pub router: RouterId,
    /// Peers registered under it.
    pub peers: usize,
    /// Routers in its path tree.
    pub tree_routers: usize,
    /// Route-inconsistency count (holes / instability).
    pub route_inconsistencies: usize,
}

/// Operator-facing snapshot of a [`ManagementServer`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServerReport {
    /// Registered peers.
    pub peers: usize,
    /// Distinct routers referenced by stored paths.
    pub indexed_routers: usize,
    /// Current heartbeat epoch.
    pub epoch: u64,
    /// Super-peers currently elected.
    pub super_peers: usize,
    /// Aggregate counters.
    pub stats: ServerStats,
    /// One entry per landmark.
    pub per_landmark: Vec<LandmarkReport>,
}

impl std::fmt::Display for ServerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} peers over {} routers (epoch {}, {} super-peers)",
            self.peers, self.indexed_routers, self.epoch, self.super_peers
        )?;
        writeln!(
            f,
            "joins {} / queries {} / leaves {} / handovers {} / x-lmk fills {}",
            self.stats.joins,
            self.stats.queries,
            self.stats.leaves,
            self.stats.handovers,
            self.stats.cross_landmark_fills
        )?;
        for lm in &self.per_landmark {
            writeln!(
                f,
                "  {} at {}: {} peers, {} tree routers, {} inconsistencies",
                lm.landmark, lm.router, lm.peers, lm.tree_routers, lm.route_inconsistencies
            )?;
        }
        Ok(())
    }
}

/// Aggregate server-side counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Successful registrations.
    pub joins: u64,
    /// Closest-peer queries answered (including those inside joins).
    pub queries: u64,
    /// Neighbors served through the cross-landmark fallback.
    pub cross_landmark_fills: u64,
    /// Departures processed.
    pub leaves: u64,
    /// Mobility handovers processed.
    pub handovers: u64,
}

/// What happened to each item of a churn-absorbing batch
/// ([`ManagementServer::register_batch_renewing`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChurnBatchOutcome {
    /// Fresh peers registered (lease opened at the current epoch).
    pub joined: usize,
    /// Already-registered peers whose lease was renewed instead.
    pub renewed: usize,
    /// Items dropped: unknown landmark, or a peer re-appearing under a
    /// *different* landmark than its registration (that move is a
    /// [`ManagementServer::handover`], not a renewal).
    pub rejected: usize,
}

/// Read-path counters, interior-mutable so pure queries stay `&self` (and
/// can be issued from many threads at once). Held as shared telemetry
/// handles so a bound [`TelemetryRegistry`] scrapes the same atomics.
#[derive(Debug, Default)]
struct QueryCounters {
    queries: Arc<Counter>,
    cross_landmark_fills: Arc<Counter>,
    latency_us: Arc<Histogram>,
}

/// The management server of §2: knows every peer's path to its landmark and
/// answers "who is closest to this newcomer" — now as a facade over one
/// [`DirectoryShard`] per landmark.
///
/// The server never sees the topology at runtime — it only consumes router
/// paths, exactly like the deployed system would. (The [`Self::bootstrap`]
/// constructor uses the topology once, standing in for the real system's
/// landmark-to-landmark traceroutes at startup.)
///
/// Concurrency contract: every read (`neighbors_of`, `closest_to_path`,
/// `report`, the [`Self::index`] view) takes `&self`, so a populated server
/// can be queried from any number of threads. Writes take `&mut self` and
/// route to the owning shard; [`Self::shards_mut`] additionally exposes the
/// shards themselves so disjoint shards can be *built* in parallel.
pub struct ManagementServer {
    config: ServerConfig,
    landmark_routers: Vec<RouterId>,
    landmark_by_router: HashMap<RouterId, LandmarkId>,
    /// Hop distance between landmark routers (bootstrap measurements).
    landmark_dist: Vec<Vec<u32>>,
    shards: Vec<DirectoryShard>,
    /// Facade-level peer→shard map: one hash probe per lookup instead of
    /// one per shard. The facade's own write methods keep it coherent;
    /// [`Self::shards_mut`] marks it dirty and the next lookup rebuilds it
    /// from the shards (interior-mutable so lookups stay `&self`).
    peer_shard: RwLock<HashMap<PeerId, u32>>,
    peer_shard_dirty: AtomicBool,
    super_peers: Option<SuperPeerDirectory>,
    counters: QueryCounters,
    handovers: u64,
    epoch: u64,
    /// Standing "watch my k nearest" subscriptions, fed incrementally by
    /// every churn entry point (see [`crate::subscription`]). Runtime-only
    /// state, like super-peers: not persisted, empty after recovery.
    subs: SubscriptionRegistry,
    /// Millisecond clock for subscription rate limiting and delta-latency
    /// accounting; the embedding application advances it
    /// ([`Self::set_sub_clock_ms`]) so the server itself stays
    /// deterministic.
    sub_clock_ms: u64,
    /// Bound registry ([`Self::bind_telemetry`]): gates query-latency
    /// timing and receives slow-query traces. `None` (the default) keeps
    /// the read path free of clock calls.
    telemetry: Option<Arc<TelemetryRegistry>>,
}

impl std::fmt::Debug for ManagementServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ManagementServer")
            .field("landmarks", &self.landmark_routers.len())
            .field("peers", &self.peer_count())
            .field("epoch", &self.epoch)
            .finish_non_exhaustive()
    }
}

impl ManagementServer {
    /// Creates a server from landmark routers and their pairwise hop
    /// distances (row-major square matrix; `u32::MAX` = unknown).
    pub fn new(
        landmark_routers: Vec<RouterId>,
        landmark_dist: Vec<Vec<u32>>,
        config: ServerConfig,
    ) -> Self {
        debug_assert_eq!(landmark_dist.len(), landmark_routers.len());
        let landmark_by_router = landmark_routers
            .iter()
            .enumerate()
            .map(|(i, &r)| (r, LandmarkId(i as u32)))
            .collect();
        let shards = landmark_routers
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                DirectoryShard::with_adaptive(LandmarkId(i as u32), r, config.adaptive_leases)
            })
            .collect();
        Self {
            super_peers: config.super_peers.map(SuperPeerDirectory::new),
            config,
            landmark_by_router,
            landmark_dist,
            shards,
            peer_shard: RwLock::new(HashMap::new()),
            peer_shard_dirty: AtomicBool::new(false),
            counters: QueryCounters::default(),
            handovers: 0,
            landmark_routers,
            epoch: 0,
            subs: SubscriptionRegistry::new(),
            sub_clock_ms: 0,
            telemetry: None,
        }
    }

    /// Convenience constructor measuring landmark-to-landmark hop distances
    /// over the topology (the real system would traceroute between
    /// landmarks once at startup).
    pub fn bootstrap(
        topo: &Topology,
        landmark_routers: Vec<RouterId>,
        config: ServerConfig,
    ) -> Self {
        // All measured destinations are landmarks, so precompute their
        // trees into the oracle's arena (parallel on multi-core hosts).
        let oracle = RouteOracle::with_destinations(topo, &landmark_routers);
        Self::bootstrap_with_oracle(&oracle, landmark_routers, config)
    }

    /// Like [`ManagementServer::bootstrap`], but measures the landmark
    /// distances through a caller-owned oracle — so a swarm builder that
    /// already precomputed the landmark trees into its oracle's arena does
    /// not pay for a second set of identical BFS runs.
    pub fn bootstrap_with_oracle(
        oracle: &RouteOracle<'_>,
        landmark_routers: Vec<RouterId>,
        config: ServerConfig,
    ) -> Self {
        let n = landmark_routers.len();
        let mut dist = vec![vec![u32::MAX; n]; n];
        for (i, &a) in landmark_routers.iter().enumerate() {
            dist[i][i] = 0;
            for (j, &b) in landmark_routers.iter().enumerate().skip(i + 1) {
                if let Some(h) = oracle.hops(a, b) {
                    dist[i][j] = h;
                    dist[j][i] = h;
                }
            }
        }
        Self::new(landmark_routers, dist, config)
    }

    /// The landmark routers, indexed by [`LandmarkId`].
    pub fn landmarks(&self) -> &[RouterId] {
        &self.landmark_routers
    }

    /// The pairwise landmark hop-distance matrix (row-major, indexed by
    /// [`LandmarkId`]; `u32::MAX` = unknown). This is the bridge matrix
    /// cross-landmark fills rank with — and the raw material the
    /// federation derives its cross-region bridges from.
    pub fn landmark_distances(&self) -> &[Vec<u32>] {
        &self.landmark_dist
    }

    /// The landmark whose router is `router`, if any.
    pub fn landmark_at_router(&self, router: RouterId) -> Option<LandmarkId> {
        self.landmark_by_router.get(&router).copied()
    }

    /// The active configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Counters. Join/leave counts are derived from the shards' lifetime
    /// insert/remove counters (a handover re-inserts, which is compensated
    /// here); query counts come from the atomic read-path counters.
    pub fn stats(&self) -> ServerStats {
        let inserts: u64 = self.shards.iter().map(|s| s.inserts()).sum();
        let removals: u64 = self.shards.iter().map(|s| s.removals()).sum();
        // Saturating: shard counters and the handover count are read
        // non-atomically, so a snapshot racing a handover could otherwise
        // see the re-insert pair half-applied and underflow.
        ServerStats {
            joins: inserts.saturating_sub(self.handovers),
            queries: self.counters.queries.get(),
            cross_landmark_fills: self.counters.cross_landmark_fills.get(),
            leaves: removals.saturating_sub(self.handovers),
            handovers: self.handovers,
        }
    }

    /// Binds a telemetry registry: the directory's query counters, query
    /// latency histogram, and subscription counters become scrapeable
    /// (`dir_*` / `sub_*` names), query timing starts honoring the
    /// registry's timing gate, and threshold-crossing queries land in its
    /// slow-query log.
    pub fn bind_telemetry(&mut self, reg: Arc<TelemetryRegistry>) {
        reg.adopt_counter("dir_queries_total", "", self.counters.queries.clone());
        reg.adopt_counter(
            "dir_cross_landmark_fills_total",
            "",
            self.counters.cross_landmark_fills.clone(),
        );
        reg.adopt_histogram("dir_query_latency_us", "", self.counters.latency_us.clone());
        self.subs.bind_telemetry(&reg);
        self.telemetry = Some(reg);
    }

    /// Registered peer count (all shards).
    pub fn peer_count(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// The per-landmark shards (read-only).
    pub fn shards(&self) -> &[DirectoryShard] {
        &self.shards
    }

    /// Mutable access to the per-landmark shards, for **shard-parallel
    /// construction**: distinct shards share nothing, so disjoint `&mut`
    /// slices of this can be handed to scoped threads, each inserting its
    /// own landmark's batch (see `nearpeer-bench`'s swarm builder).
    ///
    /// The facade's own write methods keep cross-shard invariants (a peer
    /// id registered in at most one shard); callers of this API take over
    /// that responsibility for the peers they insert. Join/leave stats stay
    /// correct automatically (they are derived from shard counters), and
    /// the facade's peer→shard map is marked stale here and rebuilt from
    /// the shards on the next lookup.
    pub fn shards_mut(&mut self) -> &mut [DirectoryShard] {
        *self.peer_shard_dirty.get_mut() = true;
        &mut self.shards
    }

    /// The landmark a peer registered under.
    pub fn landmark_of(&self, peer: PeerId) -> Option<LandmarkId> {
        self.shard_idx_of(peer).map(|i| LandmarkId(i as u32))
    }

    /// The stored path of a peer.
    pub fn path_of(&self, peer: PeerId) -> Option<&PeerPath> {
        self.shards.iter().find_map(|s| s.path_of(peer))
    }

    /// The landmark tree (analytics view).
    pub fn tree(&self, landmark: LandmarkId) -> Option<&PathTree> {
        self.shards.get(landmark.index()).map(|s| s.tree())
    }

    /// The super-peer directory, when enabled.
    pub fn super_peer_directory(&self) -> Option<&SuperPeerDirectory> {
        self.super_peers.as_ref()
    }

    /// Read-only merged view over all shards, kept source-compatible with
    /// the pre-shard API that exposed the single global `RouterIndex`.
    pub fn index(&self) -> DirectoryView<'_> {
        DirectoryView { server: self }
    }

    /// One hash probe per lookup against the facade-level peer→shard map.
    /// (Historically this probed every shard — O(#shards) — because a
    /// facade map would desynchronise under [`Self::shards_mut`] parallel
    /// construction; the map now survives that by going stale there and
    /// lazily rebuilding from the shards, which stay the ground truth.)
    fn shard_idx_of(&self, peer: PeerId) -> Option<usize> {
        if self.peer_shard_dirty.load(Ordering::Acquire) {
            let mut map = self.peer_shard.write().expect("peer map poisoned");
            // Double-checked: another reader may have rebuilt while this
            // one waited on the write lock.
            if self.peer_shard_dirty.load(Ordering::Acquire) {
                map.clear();
                for (i, shard) in self.shards.iter().enumerate() {
                    for p in shard.peers() {
                        map.insert(p, i as u32);
                    }
                }
                self.peer_shard_dirty.store(false, Ordering::Release);
            }
            return map.get(&peer).map(|&i| i as usize);
        }
        self.peer_shard
            .read()
            .expect("peer map poisoned")
            .get(&peer)
            .map(|&i| i as usize)
    }

    /// Records `peer`'s shard in the facade map (write paths only).
    fn map_insert(&mut self, peer: PeerId, shard: usize) {
        self.peer_shard
            .get_mut()
            .expect("peer map poisoned")
            .insert(peer, shard as u32);
    }

    /// Drops `peer` from the facade map (write paths only).
    fn map_remove(&mut self, peer: PeerId) {
        self.peer_shard
            .get_mut()
            .expect("peer map poisoned")
            .remove(&peer);
    }

    fn landmark_for_path(&self, path: &PeerPath) -> Result<LandmarkId, CoreError> {
        self.landmark_by_router
            .get(&path.landmark_router())
            .copied()
            .ok_or_else(|| {
                CoreError::UnknownLandmark(format!(
                    "path terminates at {} which is no landmark",
                    path.landmark_router()
                ))
            })
    }

    /// Round 2, newcomer insertion: stores the peer's path (`O(d·log n)`)
    /// in its landmark's shard and answers its closest peers.
    pub fn register(&mut self, peer: PeerId, path: PeerPath) -> Result<JoinOutcome, CoreError> {
        let outcome = self.register_with(peer, path)?;
        self.notify_subs(DeltaClass::Join, &[peer], &[]);
        Ok(outcome)
    }

    /// [`Self::register`] without the subscription hook — [`Self::handover`]
    /// reuses the insertion but fires a single `Handover`-class event for
    /// the whole move instead of a spurious join.
    fn register_with(&mut self, peer: PeerId, path: PeerPath) -> Result<JoinOutcome, CoreError> {
        let landmark = self.landmark_for_path(&path)?;
        if self.shard_idx_of(peer).is_some() {
            // The owning shard would only catch a duplicate under the *same*
            // landmark; the facade guards the cross-shard invariant.
            return Err(CoreError::DuplicatePeer(peer));
        }
        let epoch = self.epoch;
        self.shards[landmark.index()].insert(peer, path, epoch)?;
        self.map_insert(peer, landmark.index());
        let path = self.shards[landmark.index()]
            .path_of(peer)
            .expect("just inserted");
        let delegate = match self.super_peers.as_mut() {
            Some(dir) => {
                let delegate = dir.super_peer_for(path);
                dir.on_register(peer, path);
                delegate
            }
            None => None,
        };
        let neighbors = self.closest_to_path(path, self.config.neighbor_count, Some(peer));
        Ok(JoinOutcome {
            landmark,
            neighbors,
            delegate,
        })
    }

    /// Batched joins: validates and inserts the whole batch first (grouped
    /// by landmark, amortising each shard's tree descent), then computes
    /// every accepted newcomer's answer. Returns one result per input, in
    /// input order.
    ///
    /// Batch semantics differ from a sequential register loop in one
    /// documented way: answers reflect the **complete** batch, so a
    /// newcomer's neighbor list may include peers that arrived later in the
    /// same batch (a strictly better answer), and its delegate is the
    /// super-peer elected after the whole batch (never the newcomer
    /// itself). Rejected items (unknown landmark, duplicate id — including
    /// duplicates within the batch, first occurrence wins) leave no trace.
    pub fn register_batch(
        &mut self,
        batch: Vec<(PeerId, PeerPath)>,
    ) -> Vec<Result<JoinOutcome, CoreError>> {
        let epoch = self.epoch;
        let mut results: Vec<Option<Result<JoinOutcome, CoreError>>> =
            (0..batch.len()).map(|_| None).collect();
        let mut per_shard: Vec<Vec<(PeerId, PeerPath)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        let mut accepted: Vec<(usize, PeerId, LandmarkId)> = Vec::with_capacity(batch.len());
        let mut in_batch: HashSet<PeerId> = HashSet::with_capacity(batch.len());
        for (i, (peer, path)) in batch.into_iter().enumerate() {
            match self.landmark_for_path(&path) {
                Err(e) => results[i] = Some(Err(e)),
                Ok(landmark) => {
                    if self.shard_idx_of(peer).is_some() || !in_batch.insert(peer) {
                        results[i] = Some(Err(CoreError::DuplicatePeer(peer)));
                    } else {
                        per_shard[landmark.index()].push((peer, path));
                        accepted.push((i, peer, landmark));
                    }
                }
            }
        }
        for (shard, items) in self.shards.iter_mut().zip(per_shard) {
            if !items.is_empty() {
                shard.insert_batch(items, epoch);
            }
        }
        for &(_, peer, landmark) in &accepted {
            self.map_insert(peer, landmark.index());
        }
        if let Some(dir) = self.super_peers.as_mut() {
            let shards = &self.shards;
            dir.on_register_batch(accepted.iter().map(|&(_, peer, landmark)| {
                let path = shards[landmark.index()]
                    .path_of(peer)
                    .expect("accepted items were inserted");
                (peer, path)
            }));
        }
        for &(i, peer, landmark) in &accepted {
            let path = self.shards[landmark.index()]
                .path_of(peer)
                .expect("accepted items were inserted");
            let delegate = self
                .super_peers
                .as_ref()
                .and_then(|dir| dir.super_peer_for(path))
                .filter(|&d| d != peer);
            let neighbors = self.closest_to_path(path, self.config.neighbor_count, Some(peer));
            results[i] = Some(Ok(JoinOutcome {
                landmark,
                neighbors,
                delegate,
            }));
        }
        let joined: Vec<PeerId> = accepted.iter().map(|&(_, peer, _)| peer).collect();
        self.notify_subs(DeltaClass::Join, &joined, &[]);
        results
            .into_iter()
            .map(|r| r.expect("every slot decided"))
            .collect()
    }

    /// Removes a departed (or failed) peer — churn, W3.
    pub fn deregister(&mut self, peer: PeerId) -> Result<(), CoreError> {
        let Some(idx) = self.shard_idx_of(peer) else {
            return Err(CoreError::UnknownPeer(peer));
        };
        self.shards[idx].remove(peer);
        self.map_remove(peer);
        if let Some(dir) = self.super_peers.as_mut() {
            dir.on_deregister(peer);
        }
        self.notify_subs(DeltaClass::Join, &[], &[peer]);
        Ok(())
    }

    /// Removes a peer that is **handing over to another region's server**
    /// (federation mobility): directory state is torn down like a
    /// departure, but the owning shard's lease arena keeps a forwarding
    /// tombstone `(peer → to_region)` — noted in the current epoch's
    /// bucket and retired by the ordinary expiry sweeps — so
    /// federation-aware expiry reports the peer as *moved*, not silent,
    /// and stale lookups can still be redirected until the tombstone is
    /// swept. Counts as a removal in this server's shard counters (the
    /// federation's own stats track it as a handover).
    pub fn deregister_forwarding(&mut self, peer: PeerId, to_region: u32) -> Result<(), CoreError> {
        let Some(idx) = self.shard_idx_of(peer) else {
            return Err(CoreError::UnknownPeer(peer));
        };
        let epoch = self.epoch;
        self.shards[idx].remove_forwarding(peer, to_region, epoch);
        self.map_remove(peer);
        if let Some(dir) = self.super_peers.as_mut() {
            dir.on_deregister(peer);
        }
        self.notify_subs(DeltaClass::Handover, &[], &[peer]);
        Ok(())
    }

    /// The destination region recorded by `peer`'s forwarding tombstone,
    /// if any shard holds one.
    pub fn forwarded_to(&self, peer: PeerId) -> Option<u32> {
        self.shards.iter().find_map(|s| s.forwarded_to(peer))
    }

    /// Forwarding tombstones currently held across all shards (not yet
    /// swept). A federation with no in-flight handovers past their
    /// retention drains this to zero.
    pub fn tombstone_count(&self) -> usize {
        self.shards.iter().map(|s| s.tombstone_count()).sum()
    }

    /// Records a heartbeat from a live peer (faulty-peer management, W3).
    pub fn heartbeat(&mut self, peer: PeerId) -> Result<(), CoreError> {
        let Some(idx) = self.shard_idx_of(peer) else {
            return Err(CoreError::UnknownPeer(peer));
        };
        let epoch = self.epoch;
        self.shards[idx].heartbeat(peer, epoch);
        Ok(())
    }

    /// Advances the server's heartbeat epoch and returns it. Applications
    /// call this once per heartbeat round.
    pub fn advance_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// The current heartbeat epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Expires every peer not seen for more than `max_age` epochs,
    /// returning the expired ids in ascending order — this is how silently
    /// failed peers leave the directory (the staleness W3 measures without
    /// it). Expiries count as leaves.
    ///
    /// Since the lease-arena refactor this *is* the batched sweep
    /// ([`Self::expire_stale_batch`]): epoch buckets below the cutoff are
    /// retired linearly instead of scanning every lease.
    pub fn expire_stale(&mut self, max_age: u64) -> Vec<PeerId> {
        self.expire_stale_batch(max_age)
    }

    /// Batched expiry: every shard sweeps its epoch-bucketed lease arena
    /// once (cost linear in the lease activity being retired, no per-peer
    /// full-map scans), then the per-shard results merge into one
    /// ascending id list. Semantically identical to the historical
    /// `expire_stale` (with adaptive leases on, each peer expires at its
    /// own derived deadline instead, `max_age` being the default for
    /// history-less peers); expiries count as leaves.
    pub fn expire_stale_batch(&mut self, max_age: u64) -> Vec<PeerId> {
        self.expire_stale_full(max_age).expired
    }

    /// [`Self::expire_stale_batch`] with the federation-aware split: the
    /// same sweep also retires forwarding tombstones whose retention
    /// (`max_age`) lapsed and reports them separately — those peers
    /// *moved* to another region's server, they did not fail.
    pub fn expire_stale_full(&mut self, max_age: u64) -> crate::directory::ShardSweep {
        let now = self.epoch;
        let mut out = crate::directory::ShardSweep::default();
        let map = self.peer_shard.get_mut().expect("peer map poisoned");
        for shard in &mut self.shards {
            let sweep = shard.expire_epoch(now, max_age);
            for &peer in &sweep.expired {
                map.remove(&peer);
            }
            for &(peer, _) in &sweep.moved {
                map.remove(&peer);
            }
            out.expired.extend(sweep.expired);
            out.moved.extend(sweep.moved);
        }
        out.expired.sort_unstable();
        out.moved.sort_unstable();
        if let Some(dir) = self.super_peers.as_mut() {
            for &peer in &out.expired {
                dir.on_deregister(peer);
            }
        }
        if !self.subs.is_empty() && (!out.expired.is_empty() || !out.moved.is_empty()) {
            let mut gone = out.expired.clone();
            gone.extend(out.moved.iter().map(|&(peer, _)| peer));
            self.notify_subs(DeltaClass::Expiry, &[], &gone);
        }
        out
    }

    /// One heartbeat round, batched: renews the lease of every listed
    /// peer still registered, at the current epoch. Unknown ids are
    /// ignored (one open-addressed probe per shard); returns the number
    /// renewed. The single-peer [`Self::heartbeat`] keeps its error
    /// reporting; at churn scale the directory only cares that live peers
    /// stay leased.
    pub fn renew_batch(&mut self, peers: &[PeerId]) -> usize {
        let epoch = self.epoch;
        self.shards
            .iter_mut()
            .map(|shard| shard.renew_batch(peers, epoch))
            .sum()
    }

    /// Batched departures — churn, W3. Every listed peer still registered
    /// is removed (each shard removes its own members; a miss costs one
    /// open-addressed probe per shard); unknown or duplicated ids are
    /// ignored. Returns the number of peers removed. Removals count as
    /// leaves.
    pub fn leave_batch(&mut self, peers: &[PeerId]) -> usize {
        let mut all_removed: Vec<PeerId> = Vec::new();
        let map = self.peer_shard.get_mut().expect("peer map poisoned");
        for shard in &mut self.shards {
            let removed = shard.remove_batch(peers);
            for &peer in &removed {
                map.remove(&peer);
            }
            if let Some(dir) = self.super_peers.as_mut() {
                for &peer in &removed {
                    dir.on_deregister(peer);
                }
            }
            all_removed.extend(removed);
        }
        self.notify_subs(DeltaClass::Join, &[], &all_removed);
        all_removed.len()
    }

    /// Batched churn absorption: like [`Self::register_batch`] but
    /// **write-only** (no neighbor answers — churn replay is directory
    /// maintenance, not discovery) and with lease renewal piggybacked on
    /// the join path: an item whose peer is already registered under the
    /// same landmark renews its lease at the current epoch and keeps its
    /// stored path — the rejoin-before-expiry case of a faulty peer coming
    /// back. A peer re-appearing under a *different* landmark is rejected
    /// (that is a [`Self::handover`]); so are unknown-landmark paths.
    /// Later occurrences of a peer inserted earlier in the same batch
    /// count as renewals (all leases in one batch share the current epoch,
    /// so this matches applying the items one by one).
    pub fn register_batch_renewing(&mut self, batch: Vec<(PeerId, PeerPath)>) -> ChurnBatchOutcome {
        let epoch = self.epoch;
        let mut out = ChurnBatchOutcome::default();
        let mut per_shard: Vec<Vec<(PeerId, PeerPath)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        let mut fresh: Vec<(PeerId, LandmarkId)> = Vec::new();
        let mut fresh_landmark: HashMap<PeerId, LandmarkId> = HashMap::new();
        for (peer, path) in batch {
            let Ok(landmark) = self.landmark_for_path(&path) else {
                out.rejected += 1;
                continue;
            };
            if let Some(idx) = self.shard_idx_of(peer) {
                if idx == landmark.index() {
                    self.shards[idx].heartbeat(peer, epoch);
                    out.renewed += 1;
                } else {
                    out.rejected += 1;
                }
            } else if let Some(&lm) = fresh_landmark.get(&peer) {
                // Joined earlier in this batch; same-epoch renewal is a
                // no-op on the lease, so only the disposition is counted.
                if lm == landmark {
                    out.renewed += 1;
                } else {
                    out.rejected += 1;
                }
            } else {
                fresh_landmark.insert(peer, landmark);
                per_shard[landmark.index()].push((peer, path));
                fresh.push((peer, landmark));
            }
        }
        for (shard, items) in self.shards.iter_mut().zip(per_shard) {
            if !items.is_empty() {
                let absorbed: ShardAbsorb = shard.absorb_batch(items, epoch);
                debug_assert_eq!(absorbed.renewed + absorbed.rejected, 0);
                out.joined += absorbed.joined;
            }
        }
        for &(peer, landmark) in &fresh {
            self.map_insert(peer, landmark.index());
        }
        if let Some(dir) = self.super_peers.as_mut() {
            let shards = &self.shards;
            dir.on_register_batch(fresh.iter().map(|&(peer, landmark)| {
                let path = shards[landmark.index()]
                    .path_of(peer)
                    .expect("fresh items were inserted");
                (peer, path)
            }));
        }
        let joined: Vec<PeerId> = fresh.iter().map(|&(peer, _)| peer).collect();
        self.notify_subs(DeltaClass::Join, &joined, &[]);
        out
    }

    /// Mobility handover (W3): the peer re-traceroutes from its new
    /// attachment and atomically replaces its record, receiving a fresh
    /// neighbor list. The new path is validated *before* the old record is
    /// torn down, so a handover to an unknown landmark leaves the peer
    /// registered where it was.
    pub fn handover(&mut self, peer: PeerId, new_path: PeerPath) -> Result<JoinOutcome, CoreError> {
        let Some(idx) = self.shard_idx_of(peer) else {
            return Err(CoreError::UnknownPeer(peer));
        };
        self.landmark_for_path(&new_path)?;
        // Not `deregister`: a relocation is no session end, so the
        // adaptive-lease EWMA must not absorb the dwell time.
        self.shards[idx].remove_moved(peer);
        self.map_remove(peer);
        if let Some(dir) = self.super_peers.as_mut() {
            dir.on_deregister(peer);
        }
        let outcome = self.register_with(peer, new_path)?;
        // The shard counters saw one remove + one insert; `stats()` folds
        // the pair into one handover.
        self.handovers += 1;
        // One Handover-class event for the whole move: subscriptions
        // holding the peer re-rank it at its new path, and the peer's own
        // subscription re-watches from there.
        self.notify_subs(DeltaClass::Handover, &[peer], &[peer]);
        Ok(outcome)
    }

    /// The closest registered peers to an arbitrary query path (`O(1)` in
    /// the population, per §2). Takes `&self`: per-shard answers (each the
    /// shard's `k` best) merge losslessly because every peer's index
    /// entries live in exactly one shard, and the query counters are
    /// atomic — so this can run concurrently from many threads.
    pub fn closest_to_path(
        &self,
        path: &PeerPath,
        k: usize,
        exclude: Option<PeerId>,
    ) -> Vec<Neighbor> {
        self.closest_split(path, k, exclude).0
    }

    /// [`Self::closest_to_path`] exposing the answer's structure: the full
    /// list plus the length of its exact section (the cross-landmark fill
    /// section, if any, follows it). The subscription engine needs the
    /// split to maintain answers incrementally.
    pub fn closest_split(
        &self,
        path: &PeerPath,
        k: usize,
        exclude: Option<PeerId>,
    ) -> (Vec<Neighbor>, usize) {
        self.counters.queries.inc();
        // Clock calls only when a registry is bound with timing on — the
        // untelemetered read path stays exactly as cheap as before.
        let started = self
            .telemetry
            .as_deref()
            .filter(|t| t.timing_enabled())
            .map(|_| Instant::now());
        let excl: HashSet<PeerId> = exclude.into_iter().collect();
        let mut result = self.query_nearest_merged(path, k, &excl);
        let exact_len = result.len();
        if result.len() < k && self.config.cross_landmark_fallback {
            let missing = k - result.len();
            let have: HashSet<PeerId> = result.iter().map(|n| n.peer).collect();
            let fill = self.cross_landmark_candidates(path, missing, &excl, &have);
            self.counters.cross_landmark_fills.add(fill.len() as u64);
            result.extend(fill);
        }
        if let (Some(start), Some(t)) = (started, self.telemetry.as_deref()) {
            let us = start.elapsed().as_micros() as u64;
            self.counters.latency_us.record(us);
            t.slow().offer(us, || SlowQueryRecord {
                latency_us: us,
                landmark: self
                    .landmark_by_router
                    .get(&path.landmark_router())
                    .map(|l| l.0 as u64),
                path_depth: path.depth() as usize,
                fanout: result.len() - exact_len,
                answered: result.len(),
            });
        }
        (result, exact_len)
    }

    /// Neighbors of an already-registered peer (fresh query, `&self`).
    pub fn neighbors_of(&self, peer: PeerId, k: usize) -> Result<Vec<Neighbor>, CoreError> {
        let path = self.path_of(peer).ok_or(CoreError::UnknownPeer(peer))?;
        Ok(self.closest_to_path(path, k, Some(peer)))
    }

    // ---- standing subscriptions -----------------------------------------

    /// Opens a subscription delivery-queue client (one per connection or
    /// embedding consumer); its id scopes [`Self::drain_deltas`] and
    /// [`Self::close_sub_client`].
    pub fn open_sub_client(&mut self) -> u64 {
        self.subs.open_client()
    }

    /// Closes a delivery client, cancelling its subscriptions and queued
    /// deltas.
    pub fn close_sub_client(&mut self, client: u64) {
        self.subs.close_client(client);
    }

    /// Registers (or replaces) a standing "watch my `k` nearest" query for
    /// an already-registered peer and returns the initial answer snapshot;
    /// subsequent churn pushes [`NeighborDelta`]s through the client's
    /// delivery queue instead of requiring re-polls.
    pub fn subscribe(
        &mut self,
        client: u64,
        sub: Subscription,
    ) -> Result<Vec<Neighbor>, CoreError> {
        let mut subs = std::mem::take(&mut self.subs);
        let now = self.sub_clock_ms;
        let out = subs.subscribe(&*self, client, sub, now);
        self.subs = subs;
        out
    }

    /// Cancels a peer's standing subscription. Returns whether one
    /// existed.
    pub fn unsubscribe(&mut self, peer: PeerId) -> bool {
        self.subs.unsubscribe(peer)
    }

    /// Drains up to `max` eligible pending deltas for a delivery client
    /// into `out` — handover before expiry before join, rate-limited per
    /// subscription against the subscription clock.
    pub fn drain_deltas(&mut self, client: u64, max: usize, out: &mut Vec<NeighborDelta>) {
        let now = self.sub_clock_ms;
        self.subs.drain(client, now, max, out);
    }

    /// Subscription observability counters.
    pub fn subscription_stats(&self) -> SubscriptionStats {
        self.subs.stats()
    }

    /// Advances the millisecond clock used for subscription rate limiting
    /// and delta-latency accounting (monotone; lower values are ignored).
    pub fn set_sub_clock_ms(&mut self, now_ms: u64) {
        self.sub_clock_ms = self.sub_clock_ms.max(now_ms);
    }

    /// The current subscription clock.
    pub fn sub_clock_ms(&self) -> u64 {
        self.sub_clock_ms
    }

    /// Feeds one completed churn mutation through the subscription engine.
    /// The registry is detached while it re-ranks so it can issue ordinary
    /// `&self` queries against the (already mutated) directory.
    fn notify_subs(&mut self, class: DeltaClass, added: &[PeerId], removed: &[PeerId]) {
        if self.subs.is_empty() {
            return;
        }
        let mut subs = std::mem::take(&mut self.subs);
        let (epoch, now) = (self.epoch, self.sub_clock_ms);
        subs.observe(&*self, class, epoch, now, added, removed);
        self.subs = subs;
    }

    /// Builds an operator-facing snapshot of the server's state.
    pub fn report(&self) -> ServerReport {
        let per_landmark = self
            .shards
            .iter()
            .map(|shard| {
                let tree = shard.tree();
                LandmarkReport {
                    landmark: shard.landmark(),
                    router: tree.root(),
                    peers: tree.n_peers(),
                    tree_routers: tree.n_nodes(),
                    route_inconsistencies: tree.inconsistencies(),
                }
            })
            .collect();
        ServerReport {
            peers: self.peer_count(),
            indexed_routers: self.index().n_routers(),
            epoch: self.epoch,
            super_peers: self
                .super_peers
                .as_ref()
                .map(|d| d.n_super_peers())
                .unwrap_or(0),
            stats: self.stats(),
            per_landmark,
        }
    }

    /// The `k` best peers across all shards for a query path, ascending
    /// `(dtree, peer)` — delegated to the shared plan in
    /// [`crate::directory::query`], which the actorized runtime uses too.
    fn query_nearest_merged(
        &self,
        query: &PeerPath,
        k: usize,
        exclude: &HashSet<PeerId>,
    ) -> Vec<Neighbor> {
        let shards: Vec<&DirectoryShard> = self.shards.iter().collect();
        query::query_nearest_merged(&shards, query, k, exclude)
    }

    /// All registered peers whose path traverses `router`, nearest-first —
    /// the shared lazy k-way merge over the shards' ordered lists.
    fn peers_through_merged(&self, router: RouterId) -> MergedPeersThrough<'_> {
        let shards: Vec<&DirectoryShard> = self.shards.iter().collect();
        query::peers_through_merged(&shards, router)
    }

    /// Cross-landmark fill: rank foreign peers by
    /// `depth(query) + hops(L_query, L_other) + depth(peer)` using the
    /// shared k-way fill merge.
    fn cross_landmark_candidates(
        &self,
        path: &PeerPath,
        k: usize,
        exclude: &HashSet<PeerId>,
        already: &HashSet<PeerId>,
    ) -> Vec<Neighbor> {
        let Ok(own) = self.landmark_for_path(path) else {
            return Vec::new();
        };
        let shards: Vec<&DirectoryShard> = self.shards.iter().collect();
        query::cross_landmark_candidates(
            &shards,
            &self.landmark_routers,
            &self.landmark_dist,
            own,
            path.depth(),
            k,
            exclude,
            already,
        )
    }

    // ---- durability -----------------------------------------------------

    /// Serializes the complete directory state into the versioned snapshot
    /// format (see [`crate::directory::persist`]): a `NPSN` header, the
    /// config section, aggregate counters, the landmark set and bridge
    /// matrix, one section per shard (interned paths, lease slots with
    /// generations and forwarding tombstones, epoch buckets, adaptive EWMA
    /// cells), and a trailing FNV-1a checksum over everything before it.
    ///
    /// [`ManagementServer::recover`] restores a byte-identical directory
    /// from this: same answers, same conservation counters, same future
    /// expiry behavior. Super-peer state is runtime-only and not
    /// persisted — snapshotting a server with super-peers enabled returns
    /// [`PersistError::Unsupported`].
    pub fn snapshot_bytes(&self) -> Result<Vec<u8>, CoreError> {
        if self.config.super_peers.is_some() {
            return Err(PersistError::Unsupported(
                "super-peer state is runtime-only and cannot be snapshotted".into(),
            )
            .into());
        }
        let mut out = Vec::with_capacity(4096);
        out.extend_from_slice(&persist::SNAPSHOT_MAGIC);
        wire::put_u16(&mut out, persist::SNAPSHOT_VERSION);
        wire::put_u16(&mut out, 0); // flags, reserved

        // Config section.
        wire::put_u64(&mut out, self.config.neighbor_count as u64);
        wire::put_u8(&mut out, self.config.cross_landmark_fallback as u8);
        match self.config.adaptive_leases {
            None => wire::put_u8(&mut out, 0),
            Some(a) => {
                wire::put_u8(&mut out, 1);
                wire::put_u32(&mut out, a.ewma_shift);
                wire::put_u32(&mut out, a.margin);
                wire::put_u32(&mut out, a.min_age);
                wire::put_u32(&mut out, a.max_age);
                wire::put_u32(&mut out, a.max_tracked);
            }
        }
        // Facade counters.
        wire::put_u64(&mut out, self.epoch);
        wire::put_u64(&mut out, self.handovers);
        wire::put_u64(&mut out, self.counters.queries.get());
        wire::put_u64(&mut out, self.counters.cross_landmark_fills.get());
        // Landmarks and the bridge matrix.
        wire::put_u32(&mut out, self.landmark_routers.len() as u32);
        for &r in &self.landmark_routers {
            wire::put_u32(&mut out, r.0);
        }
        for row in &self.landmark_dist {
            for &d in row {
                wire::put_u32(&mut out, d);
            }
        }
        // Per-shard sections.
        for shard in &self.shards {
            shard.persist_encode(&mut out);
        }
        let sum = persist::checksum(&out);
        wire::put_u64(&mut out, sum);
        Ok(out)
    }

    /// Rebuilds a server from a snapshot plus the journal of operations
    /// applied since it was taken, returning the server and a
    /// [`RecoveryReport`] describing what was consumed.
    ///
    /// Fail-closed contract: the snapshot checksum is verified **before**
    /// any state is parsed, so a truncated or corrupted snapshot yields a
    /// typed error and no server — never a partial directory. A journal
    /// with a torn tail (incomplete or corrupt final records, the normal
    /// outcome of a crash mid-append) replays cleanly up to the last
    /// intact record and reports the tear; a journal with a damaged header
    /// fails closed like the snapshot.
    pub fn recover(snapshot: &[u8], journal: &[u8]) -> Result<(Self, RecoveryReport), CoreError> {
        // Header and checksum first: nothing is parsed from bytes that
        // have not been proven intact.
        if snapshot.len() < 16 {
            return Err(PersistError::Truncated.into());
        }
        let magic: [u8; 4] = snapshot[..4].try_into().expect("length checked");
        if magic != persist::SNAPSHOT_MAGIC {
            return Err(PersistError::BadMagic(magic).into());
        }
        let version = u16::from_le_bytes(snapshot[4..6].try_into().expect("length checked"));
        if version != persist::SNAPSHOT_VERSION {
            return Err(PersistError::UnsupportedVersion(version).into());
        }
        let body_end = snapshot.len() - 8;
        let stored = u64::from_le_bytes(snapshot[body_end..].try_into().expect("length checked"));
        let computed = persist::checksum(&snapshot[..body_end]);
        if stored != computed {
            return Err(PersistError::ChecksumMismatch { stored, computed }.into());
        }
        let flags = u16::from_le_bytes(snapshot[6..8].try_into().expect("length checked"));
        if flags != 0 {
            return Err(
                PersistError::Unsupported(format!("unknown snapshot flags {flags:#06x}")).into(),
            );
        }
        let mut r = persist::Reader::new(&snapshot[8..body_end]);
        // Config section.
        let neighbor_count = r.u64()? as usize;
        let cross_landmark_fallback = match r.u8()? {
            0 => false,
            1 => true,
            t => return Err(PersistError::Corrupt(format!("bad cross-landmark flag {t}")).into()),
        };
        let adaptive_leases = match r.u8()? {
            0 => None,
            1 => Some(AdaptiveLeaseConfig {
                ewma_shift: r.u32()?,
                margin: r.u32()?,
                min_age: r.u32()?,
                max_age: r.u32()?,
                max_tracked: r.u32()?,
            }),
            t => return Err(PersistError::Corrupt(format!("bad adaptive flag {t}")).into()),
        };
        let config = ServerConfig {
            neighbor_count,
            cross_landmark_fallback,
            super_peers: None,
            adaptive_leases,
        };
        config.validate()?;
        // Facade counters.
        let epoch = r.u64()?;
        let handovers = r.u64()?;
        let queries = r.u64()?;
        let fills = r.u64()?;
        // Landmarks and the bridge matrix.
        let n = r.u32()? as usize;
        if n == 0 {
            return Err(CoreError::InvalidConfig(
                "snapshot holds zero landmarks (no shards)".into(),
            ));
        }
        let mut landmark_routers = Vec::with_capacity(n);
        for _ in 0..n {
            landmark_routers.push(RouterId(r.u32()?));
        }
        let mut landmark_dist = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row = Vec::with_capacity(n);
            for _ in 0..n {
                row.push(r.u32()?);
            }
            landmark_dist.push(row);
        }
        // Per-shard sections, validated against the landmark set.
        let mut shards = Vec::with_capacity(n);
        for (i, &router) in landmark_routers.iter().enumerate() {
            let shard = DirectoryShard::persist_decode(&mut r, adaptive_leases)?;
            if shard.landmark() != LandmarkId(i as u32) || shard.tree().root() != router {
                return Err(PersistError::Corrupt(format!(
                    "shard {i} does not match its landmark section"
                ))
                .into());
            }
            shards.push(shard);
        }
        if r.remaining() != 0 {
            return Err(PersistError::Corrupt(format!(
                "{} trailing bytes after the last shard section",
                r.remaining()
            ))
            .into());
        }
        let mut server = Self::new(landmark_routers, landmark_dist, config);
        server.shards = shards;
        server.epoch = epoch;
        server.handovers = handovers;
        server.counters.queries.set(queries);
        server.counters.cross_landmark_fills.set(fills);
        // The facade peer→shard map lazily rebuilds from the restored
        // shards on the first lookup.
        *server.peer_shard_dirty.get_mut() = true;
        let mut report = RecoveryReport {
            snapshot_bytes: snapshot.len(),
            ..RecoveryReport::default()
        };
        // Journal replay: every intact record re-applies through the same
        // write paths the original run used, so counters and conservation
        // invariants land exactly where they were.
        let mut reader = JournalReader::new(journal)?;
        while let Some(op) = reader.next_op() {
            server.apply_journal_op(op);
        }
        report.journal_records = reader.records_read();
        report.journal_bytes = reader.bytes_consumed();
        report.journal_torn_tail = reader.torn_tail();
        Ok((server, report))
    }

    /// Applies one journaled operation through the ordinary write paths.
    /// Outcomes are discarded: the journal records operations that already
    /// succeeded (or were already rejected) on the live server, so replay
    /// reproduces their effects, not their answers.
    pub fn apply_journal_op(&mut self, op: JournalOp) {
        match op {
            JournalOp::RegisterBatch(items) => {
                let _ = self.register_batch_renewing(items);
            }
            JournalOp::RenewBatch(peers) => {
                let _ = self.renew_batch(&peers);
            }
            JournalOp::LeaveBatch(peers) => {
                let _ = self.leave_batch(&peers);
            }
            JournalOp::Handover { peer, path } => {
                let _ = self.handover(peer, path);
            }
            JournalOp::DeregisterForwarding { peer, to_region } => {
                let _ = self.deregister_forwarding(peer, to_region);
            }
            JournalOp::Deregister(peer) => {
                let _ = self.deregister(peer);
            }
            JournalOp::AdvanceEpoch => {
                self.advance_epoch();
            }
            JournalOp::ExpireStale { max_age } => {
                let _ = self.expire_stale_full(max_age);
            }
        }
    }
}

impl SubscriptionHost for ManagementServer {
    fn path_of(&self, peer: PeerId) -> Option<PeerPath> {
        ManagementServer::path_of(self, peer).cloned()
    }

    fn landmark_at(&self, router: RouterId) -> Option<LandmarkId> {
        self.landmark_by_router.get(&router).copied()
    }

    fn bridge(&self, from: LandmarkId, to: LandmarkId) -> Option<u32> {
        let d = *self.landmark_dist.get(from.index())?.get(to.index())?;
        (d != u32::MAX).then_some(d)
    }

    fn fills_enabled(&self) -> bool {
        self.config.cross_landmark_fallback
    }

    fn query_split(&self, path: &PeerPath, k: usize, exclude: PeerId) -> (Vec<Neighbor>, usize) {
        self.closest_split(path, k, Some(exclude))
    }
}

/// Read-only merged view over a [`ManagementServer`]'s shards, with the
/// lookup surface the pre-shard global `RouterIndex` offered. Obtained from
/// [`ManagementServer::index`]; all methods take `&self`.
#[derive(Clone, Copy)]
pub struct DirectoryView<'a> {
    server: &'a ManagementServer,
}

impl<'a> DirectoryView<'a> {
    /// Number of registered peers.
    pub fn len(&self) -> usize {
        self.server.peer_count()
    }

    /// Whether no peer is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the peer is registered.
    pub fn contains(&self, peer: PeerId) -> bool {
        self.server.shard_idx_of(peer).is_some()
    }

    /// The stored path of a peer.
    pub fn path_of(&self, peer: PeerId) -> Option<&PeerPath> {
        self.server.path_of(peer)
    }

    /// Iterator over all registered peers (shard by shard).
    pub fn peers(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.server.shards.iter().flat_map(|s| s.peers())
    }

    /// Number of distinct routers referenced by stored paths.
    pub fn n_routers(&self) -> usize {
        let distinct: HashSet<RouterId> = self
            .server
            .shards
            .iter()
            .flat_map(|s| s.routers())
            .collect();
        distinct.len()
    }

    /// Peers whose path traverses `router`, nearest-first (by hops below
    /// the router). Takes `self` (the view is `Copy`) so the iterator
    /// borrows the server, not the view temporary.
    pub fn peers_through(self, router: RouterId) -> impl Iterator<Item = (PeerId, u32)> + 'a {
        self.server.peers_through_merged(router)
    }

    /// Inferred tree distance between two *registered* peers.
    pub fn dtree(&self, a: PeerId, b: PeerId) -> Option<u32> {
        let pa = self.server.path_of(a)?;
        let pb = self.server.path_of(b)?;
        pa.dtree(pb).map(|(_, d)| d)
    }

    /// The `k` registered peers with smallest `dtree` to the query path,
    /// ascending (ties by peer id). Unlike
    /// [`ManagementServer::closest_to_path`] this raw view does not count
    /// stats and never fills cross-landmark.
    pub fn query_nearest(
        &self,
        query: &PeerPath,
        k: usize,
        exclude: &HashSet<PeerId>,
    ) -> Vec<Neighbor> {
        self.server.query_nearest_merged(query, k, exclude)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nearpeer_topology::presets::figure1;

    fn path(ids: &[u32]) -> PeerPath {
        PeerPath::new(ids.iter().map(|&i| RouterId(i)).collect()).unwrap()
    }

    /// Two landmarks (routers 0 and 100), 5 hops apart.
    fn two_landmark_server(config: ServerConfig) -> ManagementServer {
        ManagementServer::new(
            vec![RouterId(0), RouterId(100)],
            vec![vec![0, 5], vec![5, 0]],
            config,
        )
    }

    #[test]
    fn register_returns_nearest_neighbors() {
        let mut srv = two_landmark_server(ServerConfig::default());
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        srv.register(PeerId(2), path(&[5, 2, 1, 0])).unwrap();
        srv.register(PeerId(3), path(&[6, 3, 1, 0])).unwrap();
        let out = srv.register(PeerId(4), path(&[7, 2, 1, 0])).unwrap();
        assert_eq!(out.landmark, LandmarkId(0));
        let peers: Vec<PeerId> = out.neighbors.iter().map(|n| n.peer).collect();
        // 1 and 2 meet the newcomer at router 2 (dtree 2), 3 at router 1
        // (dtree 4). The newcomer itself is excluded.
        assert_eq!(peers, vec![PeerId(1), PeerId(2), PeerId(3)]);
        assert_eq!(out.neighbors[0].dtree, 2);
        assert_eq!(out.neighbors[2].dtree, 4);
        assert_eq!(srv.peer_count(), 4);
    }

    #[test]
    fn unknown_landmark_rejected() {
        let mut srv = two_landmark_server(ServerConfig::default());
        let err = srv.register(PeerId(1), path(&[4, 2, 99])).unwrap_err();
        assert!(matches!(err, CoreError::UnknownLandmark(_)));
        assert_eq!(srv.peer_count(), 0);
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut srv = two_landmark_server(ServerConfig::default());
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        let err = srv.register(PeerId(1), path(&[5, 2, 1, 0])).unwrap_err();
        assert!(matches!(err, CoreError::DuplicatePeer(_)));
        // Also across shards: the same peer under the *other* landmark.
        let err = srv.register(PeerId(1), path(&[110, 105, 100])).unwrap_err();
        assert!(matches!(err, CoreError::DuplicatePeer(_)));
        assert_eq!(srv.peer_count(), 1);
    }

    #[test]
    fn deregister_and_unknown() {
        let mut srv = two_landmark_server(ServerConfig::default());
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        srv.deregister(PeerId(1)).unwrap();
        assert_eq!(srv.peer_count(), 0);
        assert!(matches!(
            srv.deregister(PeerId(1)),
            Err(CoreError::UnknownPeer(_))
        ));
        assert_eq!(srv.landmark_of(PeerId(1)), None);
        assert_eq!(srv.tree(LandmarkId(0)).unwrap().n_peers(), 0);
    }

    #[test]
    fn handover_moves_the_peer() {
        let mut srv = two_landmark_server(ServerConfig::default());
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        srv.register(PeerId(2), path(&[110, 105, 100])).unwrap();
        // Peer 1 moves to the other landmark's side.
        let out = srv.handover(PeerId(1), path(&[111, 105, 100])).unwrap();
        assert_eq!(out.landmark, LandmarkId(1));
        assert_eq!(srv.landmark_of(PeerId(1)), Some(LandmarkId(1)));
        assert_eq!(out.neighbors[0].peer, PeerId(2));
        let stats = srv.stats();
        assert_eq!(stats.handovers, 1);
        assert_eq!(stats.joins, 2);
        assert_eq!(stats.leaves, 0);
        assert!(matches!(
            srv.handover(PeerId(9), path(&[4, 2, 1, 0])),
            Err(CoreError::UnknownPeer(_))
        ));
    }

    #[test]
    fn handover_to_unknown_landmark_is_atomic() {
        let mut srv = two_landmark_server(ServerConfig::default());
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        let err = srv.handover(PeerId(1), path(&[7, 8, 99])).unwrap_err();
        assert!(matches!(err, CoreError::UnknownLandmark(_)));
        // The peer keeps its old record; nothing was torn down.
        assert_eq!(srv.landmark_of(PeerId(1)), Some(LandmarkId(0)));
        assert_eq!(srv.peer_count(), 1);
        let stats = srv.stats();
        assert_eq!((stats.joins, stats.leaves, stats.handovers), (1, 0, 0));
    }

    #[test]
    fn cross_landmark_fallback_fills() {
        let mut srv = two_landmark_server(ServerConfig {
            neighbor_count: 3,
            ..ServerConfig::default()
        });
        // One local peer, two foreign peers at different depths.
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        srv.register(PeerId(2), path(&[110, 105, 100])).unwrap(); // depth 2
        srv.register(PeerId(3), path(&[120, 121, 105, 100]))
            .unwrap(); // depth 3
        let fills_before = srv.stats().cross_landmark_fills;
        let out = srv.register(PeerId(4), path(&[5, 2, 1, 0])).unwrap();
        let peers: Vec<PeerId> = out.neighbors.iter().map(|n| n.peer).collect();
        assert_eq!(peers[0], PeerId(1), "local peer first");
        // Foreign fills ranked by depth: query depth 3 + bridge 5 + depth.
        assert_eq!(peers[1], PeerId(2));
        assert_eq!(peers[2], PeerId(3));
        assert_eq!(out.neighbors[1].dtree, 3 + 5 + 2);
        assert_eq!(out.neighbors[2].dtree, 3 + 5 + 3);
        assert_eq!(srv.stats().cross_landmark_fills - fills_before, 2);
    }

    #[test]
    fn fallback_handles_paths_traversing_foreign_landmark_routers() {
        // Landmarks 0 and 100, one hop apart. px's path *traverses* router
        // 0 (landmark A's router) mid-way while terminating at landmark B —
        // so the fill cursor over router 0 yields px at a depth smaller
        // than its full path depth. The old base recovery (est minus full
        // depth) underflowed exactly here.
        let mut srv = ManagementServer::new(
            vec![RouterId(0), RouterId(100)],
            vec![vec![0, 1], vec![1, 0]],
            ServerConfig {
                neighbor_count: 3,
                ..ServerConfig::default()
            },
        );
        srv.register(PeerId(1), path(&[60, 0, 105, 100])).unwrap(); // px
        srv.register(PeerId(2), path(&[70, 1, 0])).unwrap(); // py
                                                             // Newcomer sits on landmark B's own router (query depth 0).
        let out = srv.register(PeerId(3), path(&[100])).unwrap();
        let got: Vec<(PeerId, u32)> = out.neighbors.iter().map(|n| (n.peer, n.dtree)).collect();
        // px via the shared router 100 (dtree 0+3), then py as a bridge
        // fill: query depth 0 + bridge 1 + py's depth 2 below router 0.
        assert_eq!(got, vec![(PeerId(1), 3), (PeerId(2), 3)]);
    }

    #[test]
    fn fallback_disabled_returns_short_list() {
        let mut srv = two_landmark_server(ServerConfig {
            neighbor_count: 3,
            cross_landmark_fallback: false,
            ..ServerConfig::default()
        });
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        srv.register(PeerId(2), path(&[110, 105, 100])).unwrap();
        let out = srv.register(PeerId(3), path(&[5, 2, 1, 0])).unwrap();
        assert_eq!(out.neighbors.len(), 1);
        assert_eq!(srv.stats().cross_landmark_fills, 0);
    }

    #[test]
    fn super_peer_delegation_reported() {
        let cfg = ServerConfig {
            neighbor_count: 2,
            super_peers: Some(SuperPeerConfig {
                region_depth: 2,
                promote_threshold: 2,
            }),
            ..ServerConfig::default()
        };
        let mut srv = two_landmark_server(cfg);
        assert!(srv
            .register(PeerId(1), path(&[4, 2, 1, 0]))
            .unwrap()
            .delegate
            .is_none());
        assert!(
            srv.register(PeerId(2), path(&[5, 2, 1, 0]))
                .unwrap()
                .delegate
                .is_none(),
            "promotion happens after the second join"
        );
        // Third join in the same region can delegate to the elected peer 1.
        let out = srv.register(PeerId(3), path(&[6, 2, 1, 0])).unwrap();
        assert_eq!(out.delegate, Some(PeerId(1)));
        let dir = srv.super_peer_directory().unwrap();
        assert_eq!(dir.n_super_peers(), 1);
    }

    #[test]
    fn bootstrap_measures_landmark_distances() {
        let fig = figure1();
        let ra = fig.core[0];
        let rb = fig.core[1];
        let srv = ManagementServer::bootstrap(
            &fig.topology,
            vec![fig.landmark, ra, rb],
            ServerConfig::default(),
        );
        // lmk-ra adjacent, lmk-rb two hops.
        assert_eq!(srv.landmark_dist[0][1], 1);
        assert_eq!(srv.landmark_dist[0][2], 2);
        assert_eq!(srv.landmark_dist[1][2], 1);
        assert_eq!(srv.landmark_dist[2][0], 2);
    }

    #[test]
    fn heartbeat_and_expiry() {
        let mut srv = two_landmark_server(ServerConfig::default());
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        srv.register(PeerId(2), path(&[5, 2, 1, 0])).unwrap();
        assert!(matches!(
            srv.heartbeat(PeerId(9)),
            Err(CoreError::UnknownPeer(_))
        ));
        // Peer 1 keeps heartbeating; peer 2 fails silently.
        for _ in 0..5 {
            srv.advance_epoch();
            srv.heartbeat(PeerId(1)).unwrap();
        }
        assert_eq!(srv.epoch(), 5);
        let expired = srv.expire_stale(3);
        assert_eq!(expired, vec![PeerId(2)]);
        assert_eq!(srv.peer_count(), 1);
        assert!(srv.path_of(PeerId(2)).is_none());
        // Nothing further to expire.
        assert!(srv.expire_stale(3).is_empty());
        // Expired peers disappear from answers.
        let neigh = srv.neighbors_of(PeerId(1), 5).unwrap();
        assert!(neigh.is_empty());
    }

    #[test]
    fn expiry_respects_grace_window() {
        let mut srv = two_landmark_server(ServerConfig::default());
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        srv.advance_epoch();
        srv.advance_epoch();
        // Age 2 with max_age 2: still inside the lease.
        assert!(srv.expire_stale(2).is_empty());
        srv.advance_epoch();
        assert_eq!(srv.expire_stale(2), vec![PeerId(1)]);
    }

    #[test]
    fn deregister_forwarding_plants_and_sweeps_a_tombstone() {
        let mut srv = two_landmark_server(ServerConfig::default());
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        srv.register(PeerId(2), path(&[5, 2, 1, 0])).unwrap();
        srv.advance_epoch();
        srv.deregister_forwarding(PeerId(1), 7).unwrap();
        assert!(matches!(
            srv.deregister_forwarding(PeerId(9), 7),
            Err(CoreError::UnknownPeer(_))
        ));
        assert_eq!(srv.peer_count(), 1);
        assert_eq!(srv.forwarded_to(PeerId(1)), Some(7));
        assert_eq!(srv.tombstone_count(), 1);
        // The moved peer never shows up as silently expired.
        for _ in 0..5 {
            srv.advance_epoch();
        }
        let sweep = srv.expire_stale_full(3);
        assert_eq!(sweep.expired, vec![PeerId(2)], "peer 2 was silent");
        assert_eq!(sweep.moved, vec![(PeerId(1), 7)], "peer 1 moved");
        assert_eq!(srv.tombstone_count(), 0);
        assert_eq!(srv.forwarded_to(PeerId(1)), None);
        // The tombstone never counted as a leave; only real removals do.
        assert_eq!(srv.stats().leaves, 2);
    }

    #[test]
    fn adaptive_leases_expire_short_lived_peers_sooner() {
        let cfg = ServerConfig {
            adaptive_leases: Some(crate::directory::AdaptiveLeaseConfig {
                ewma_shift: 0,
                margin: 1,
                min_age: 1,
                max_age: 16,
                max_tracked: 1024,
            }),
            ..ServerConfig::default()
        };
        let mut srv = two_landmark_server(cfg);
        // Peer 1's first session lasts one epoch, then it leaves and
        // rejoins: its lease is now sized ~2 epochs, not the default 10.
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        srv.advance_epoch();
        srv.heartbeat(PeerId(1)).unwrap();
        srv.deregister(PeerId(1)).unwrap();
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        // A history-less peer joins at the same epoch.
        srv.register(PeerId(2), path(&[5, 2, 1, 0])).unwrap();
        for _ in 0..5 {
            srv.advance_epoch();
        }
        let expired = srv.expire_stale(10);
        assert_eq!(
            expired,
            vec![PeerId(1)],
            "the short-lived peer must not hold its lease for the full default"
        );
        assert_eq!(srv.peer_count(), 1, "the fresh peer keeps the default");
    }

    #[test]
    fn neighbors_of_registered_peer() {
        let mut srv = two_landmark_server(ServerConfig::default());
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        srv.register(PeerId(2), path(&[5, 2, 1, 0])).unwrap();
        let n = srv.neighbors_of(PeerId(1), 3).unwrap();
        assert_eq!(n.len(), 1);
        assert_eq!(n[0].peer, PeerId(2));
        assert!(matches!(
            srv.neighbors_of(PeerId(9), 3),
            Err(CoreError::UnknownPeer(_))
        ));
    }

    #[test]
    fn register_batch_matches_input_order_and_counts() {
        let mut srv = two_landmark_server(ServerConfig {
            neighbor_count: 3,
            ..ServerConfig::default()
        });
        srv.register(PeerId(7), path(&[9, 2, 1, 0])).unwrap();
        let results = srv.register_batch(vec![
            (PeerId(1), path(&[4, 2, 1, 0])),
            (PeerId(2), path(&[6, 7, 42])),      // unknown landmark
            (PeerId(7), path(&[5, 2, 1, 0])),    // duplicate of pre-registered
            (PeerId(3), path(&[110, 105, 100])), // other shard
            (PeerId(1), path(&[8, 2, 1, 0])),    // duplicate within batch
        ]);
        assert_eq!(results.len(), 5);
        let ok = results[0].as_ref().unwrap();
        assert_eq!(ok.landmark, LandmarkId(0));
        // Batch answers see the whole batch: peer 3 (other landmark) is a
        // cross-landmark fill for peer 1 even though it "arrived later".
        let peers: Vec<PeerId> = ok.neighbors.iter().map(|n| n.peer).collect();
        assert_eq!(peers, vec![PeerId(7), PeerId(3)]);
        assert!(matches!(results[1], Err(CoreError::UnknownLandmark(_))));
        assert!(matches!(results[2], Err(CoreError::DuplicatePeer(_))));
        assert_eq!(results[3].as_ref().unwrap().landmark, LandmarkId(1));
        assert!(matches!(results[4], Err(CoreError::DuplicatePeer(_))));
        assert_eq!(srv.peer_count(), 3);
        let stats = srv.stats();
        assert_eq!(stats.joins, 3);
        // One query per successful join (1 sequential + 2 batch).
        assert_eq!(stats.queries, 3);
    }

    #[test]
    fn register_batch_equals_sequential_final_state() {
        let joins: Vec<(PeerId, PeerPath)> = vec![
            (PeerId(1), path(&[4, 2, 1, 0])),
            (PeerId(2), path(&[5, 2, 1, 0])),
            (PeerId(3), path(&[110, 105, 100])),
            (PeerId(4), path(&[6, 3, 1, 0])),
        ];
        let mut seq = two_landmark_server(ServerConfig::default());
        for (p, path) in joins.clone() {
            seq.register(p, path).unwrap();
        }
        let mut bat = two_landmark_server(ServerConfig::default());
        for r in bat.register_batch(joins) {
            r.unwrap();
        }
        // Identical directory state. (Query-path counters legitimately
        // differ: batch answers are computed against the full batch, so
        // they can include cross-landmark fills a growing sequential
        // population did not need yet.)
        let (br, sr) = (bat.report(), seq.report());
        assert_eq!(br.peers, sr.peers);
        assert_eq!(br.indexed_routers, sr.indexed_routers);
        assert_eq!(br.per_landmark, sr.per_landmark);
        assert_eq!(br.stats.joins, sr.stats.joins);
        assert_eq!(br.stats.queries, sr.stats.queries);
        for p in [1u64, 2, 3, 4] {
            assert_eq!(
                bat.neighbors_of(PeerId(p), 3).unwrap(),
                seq.neighbors_of(PeerId(p), 3).unwrap()
            );
        }
    }

    #[test]
    fn shard_parallel_build_equals_sequential() {
        let joins: Vec<(PeerId, PeerPath)> = (0..40u64)
            .map(|i| {
                let lm = i % 2;
                let p = if lm == 0 {
                    path(&[1000 + i as u32, 2 + (i % 3) as u32, 1, 0])
                } else {
                    path(&[1000 + i as u32, 105 + (i % 3) as u32, 101, 100])
                };
                (PeerId(i), p)
            })
            .collect();
        let mut seq = two_landmark_server(ServerConfig::default());
        for (p, path) in joins.clone() {
            seq.register(p, path).unwrap();
        }

        let mut par = two_landmark_server(ServerConfig::default());
        let epoch = par.epoch();
        let mut groups: Vec<Vec<(PeerId, PeerPath)>> = vec![Vec::new(), Vec::new()];
        for (p, path) in joins {
            let lm = par.landmark_at_router(path.landmark_router()).unwrap();
            groups[lm.index()].push((p, path));
        }
        std::thread::scope(|scope| {
            for (shard, items) in par.shards_mut().iter_mut().zip(groups) {
                scope.spawn(move || shard.insert_batch(items, epoch));
            }
        });
        assert_eq!(par.peer_count(), seq.peer_count());
        assert_eq!(par.stats().joins, seq.stats().joins);
        for p in 0..40u64 {
            assert_eq!(
                par.neighbors_of(PeerId(p), 4).unwrap(),
                seq.neighbors_of(PeerId(p), 4).unwrap(),
                "peer {p}"
            );
        }
        assert_eq!(
            par.report().per_landmark,
            seq.report().per_landmark,
            "tree shapes must match"
        );
    }

    /// The facade peer→shard map must give the same answer as probing
    /// every shard — after `shards_mut` parallel construction (which
    /// bypasses the facade's write methods) and after every kind of churn.
    #[test]
    fn peer_shard_map_agrees_with_probe() {
        fn probe(srv: &ManagementServer, p: PeerId) -> Option<usize> {
            srv.shards().iter().position(|s| s.contains(p))
        }
        fn check(srv: &ManagementServer, universe: impl Iterator<Item = u64>) {
            for p in universe {
                let peer = PeerId(p);
                assert_eq!(
                    srv.landmark_of(peer),
                    probe(srv, peer).map(|i| LandmarkId(i as u32)),
                    "map and probe disagree on peer {p}"
                );
            }
        }

        let mut srv = two_landmark_server(ServerConfig::default());
        let epoch = srv.epoch();
        let mut groups: Vec<Vec<(PeerId, PeerPath)>> = vec![Vec::new(), Vec::new()];
        for i in 0..40u64 {
            let (lm, p) = if i % 2 == 0 {
                (0, path(&[1000 + i as u32, 2, 1, 0]))
            } else {
                (1, path(&[1000 + i as u32, 105, 101, 100]))
            };
            groups[lm].push((PeerId(i), p));
        }
        std::thread::scope(|scope| {
            for (shard, items) in srv.shards_mut().iter_mut().zip(groups) {
                scope.spawn(move || shard.insert_batch(items, epoch));
            }
        });
        // Lookups right after the parallel build see the rebuilt map.
        check(&srv, 0..50);

        // Every churn path keeps the map coherent without a rebuild.
        srv.deregister(PeerId(0)).unwrap();
        srv.handover(PeerId(1), path(&[999, 2, 1, 0])).unwrap();
        srv.deregister_forwarding(PeerId(3), 7).unwrap();
        assert_eq!(srv.leave_batch(&[PeerId(2), PeerId(4), PeerId(99)]), 2);
        srv.register(PeerId(50), path(&[998, 2, 1, 0])).unwrap();
        srv.register_batch(vec![
            (PeerId(51), path(&[997, 2, 1, 0])),
            (PeerId(52), path(&[996, 105, 100])),
            (PeerId(51), path(&[995, 2, 1, 0])), // dup in batch
        ]);
        srv.register_batch_renewing(vec![
            (PeerId(53), path(&[994, 2, 1, 0])),
            (PeerId(50), path(&[998, 2, 1, 0])), // renewal
        ]);
        for _ in 0..6 {
            srv.advance_epoch();
            srv.renew_batch(&[PeerId(5), PeerId(6)]);
        }
        srv.expire_stale(3);
        check(&srv, 0..60);
    }

    #[test]
    fn concurrent_reads_on_shared_server() {
        let mut srv = two_landmark_server(ServerConfig::default());
        for i in 0..20u64 {
            srv.register(PeerId(i), path(&[50 + i as u32, 2, 1, 0]))
                .unwrap();
        }
        let srv = &srv;
        let answers = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    scope.spawn(move || {
                        (0..20u64)
                            .map(|i| srv.neighbors_of(PeerId((i + t) % 20), 5).unwrap().len())
                            .sum::<usize>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        });
        assert!(answers.iter().all(|&a| a == answers[0]));
        // 80 concurrent queries were all counted.
        assert_eq!(srv.stats().queries, 20 + 80);
    }

    #[test]
    fn index_view_matches_server_state() {
        let mut srv = two_landmark_server(ServerConfig::default());
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        srv.register(PeerId(2), path(&[5, 2, 1, 0])).unwrap();
        srv.register(PeerId(3), path(&[110, 105, 100])).unwrap();
        let view = srv.index();
        assert_eq!(view.len(), 3);
        assert!(!view.is_empty());
        assert!(view.contains(PeerId(3)));
        assert_eq!(view.dtree(PeerId(1), PeerId(2)), Some(2));
        assert_eq!(view.dtree(PeerId(1), PeerId(3)), None);
        assert_eq!(view.path_of(PeerId(3)).unwrap().attach(), RouterId(110));
        let through2: Vec<_> = view.peers_through(RouterId(2)).collect();
        assert_eq!(through2, vec![(PeerId(1), 1), (PeerId(2), 1)]);
        let mut peers: Vec<PeerId> = view.peers().collect();
        peers.sort_unstable();
        assert_eq!(peers, vec![PeerId(1), PeerId(2), PeerId(3)]);
        // 8 routers total: {4,2,1,0} ∪ {5} ∪ {110,105,100}.
        assert_eq!(view.n_routers(), 8);
        let q = path(&[4, 2, 1, 0]);
        let res = view.query_nearest(&q, 2, &HashSet::new());
        assert_eq!(res[0].peer, PeerId(1));
        assert_eq!(res[0].dtree, 0);
    }

    #[test]
    fn paths_are_interned_per_shard() {
        let mut srv = two_landmark_server(ServerConfig::default());
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        srv.register(PeerId(2), path(&[4, 2, 1, 0])).unwrap();
        srv.register(PeerId(3), path(&[5, 2, 1, 0])).unwrap();
        let store = srv.shards()[0].path_store();
        assert_eq!(store.distinct(), 2);
        assert_eq!(store.dedup_hits(), 1);
        srv.deregister(PeerId(1)).unwrap();
        srv.deregister(PeerId(2)).unwrap();
        assert_eq!(srv.shards()[0].path_store().distinct(), 1);
    }

    #[test]
    fn config_validation_rejects_impossible_values() {
        let zero_neighbors = ServerConfig {
            neighbor_count: 0,
            ..ServerConfig::default()
        };
        assert!(matches!(
            zero_neighbors.validate(),
            Err(CoreError::InvalidConfig(_))
        ));
        let inverted_band = ServerConfig {
            adaptive_leases: Some(AdaptiveLeaseConfig {
                min_age: 10,
                max_age: 4,
                ..AdaptiveLeaseConfig::default()
            }),
            ..ServerConfig::default()
        };
        assert!(matches!(
            inverted_band.validate(),
            Err(CoreError::InvalidConfig(_))
        ));
        let zero_floor = ServerConfig {
            adaptive_leases: Some(AdaptiveLeaseConfig {
                min_age: 0,
                ..AdaptiveLeaseConfig::default()
            }),
            ..ServerConfig::default()
        };
        assert!(matches!(
            zero_floor.validate(),
            Err(CoreError::InvalidConfig(_))
        ));
        assert!(ServerConfig::default().validate().is_ok());
    }

    /// Asserts every externally observable part of the directory matches:
    /// registered set with paths, counters, epoch, tombstones, and query
    /// answers.
    fn assert_same_directory(a: &ManagementServer, b: &ManagementServer) {
        assert_eq!(a.peer_count(), b.peer_count());
        assert_eq!(a.epoch(), b.epoch());
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.tombstone_count(), b.tombstone_count());
        assert_eq!(a.landmarks(), b.landmarks());
        assert_eq!(a.landmark_distances(), b.landmark_distances());
        let mut peers: Vec<PeerId> = a.index().peers().collect();
        peers.sort_unstable();
        let mut b_peers: Vec<PeerId> = b.index().peers().collect();
        b_peers.sort_unstable();
        assert_eq!(peers, b_peers);
        for &p in &peers {
            assert_eq!(a.path_of(p), b.path_of(p));
            assert_eq!(a.landmark_of(p), b.landmark_of(p));
            assert_eq!(a.neighbors_of(p, 3).unwrap(), b.neighbors_of(p, 3).unwrap());
        }
    }

    /// A server with adaptive leases on, exercised through every write
    /// path: joins, renewals, a handover, a forwarding tombstone, leaves
    /// and expiries across several epochs.
    fn churned_adaptive_server() -> ManagementServer {
        let mut srv = two_landmark_server(ServerConfig {
            adaptive_leases: Some(AdaptiveLeaseConfig {
                min_age: 2,
                max_age: 12,
                ..AdaptiveLeaseConfig::default()
            }),
            ..ServerConfig::default()
        });
        for i in 0..40u64 {
            let p = if i % 2 == 0 {
                path(&[200 + i as u32, 2, 1, 0])
            } else {
                path(&[300 + i as u32, 105, 100])
            };
            srv.register(PeerId(i), p).unwrap();
        }
        srv.advance_epoch();
        let renew: Vec<PeerId> = (0..30).map(PeerId).collect();
        srv.renew_batch(&renew);
        srv.advance_epoch();
        srv.handover(PeerId(0), path(&[310, 105, 100])).unwrap();
        srv.deregister_forwarding(PeerId(1), 3).unwrap();
        srv.deregister(PeerId(2)).unwrap();
        srv.leave_batch(&[PeerId(3), PeerId(5)]);
        for _ in 0..4 {
            srv.advance_epoch();
        }
        srv.expire_stale(3);
        srv
    }

    #[test]
    fn snapshot_recover_roundtrip_restores_exact_directory() {
        let srv = churned_adaptive_server();
        let bytes = srv.snapshot_bytes().unwrap();
        let (restored, report) = ManagementServer::recover(&bytes, &[]).unwrap();
        assert_eq!(report.snapshot_bytes, bytes.len());
        assert_eq!(report.journal_records, 0);
        assert!(!report.journal_torn_tail);
        assert_same_directory(&srv, &restored);
        // Future behavior matches too: the same sweep on both sides
        // expires the same peers (adaptive EWMA state survived).
        let mut live = srv;
        let mut back = restored;
        for _ in 0..6 {
            live.advance_epoch();
            back.advance_epoch();
            assert_eq!(live.expire_stale(3), back.expire_stale(3));
        }
        assert_same_directory(&live, &back);
    }

    #[test]
    fn journal_replay_reaches_live_state() {
        use crate::directory::persist::journal::append_op;
        let mut live = churned_adaptive_server();
        let snapshot = live.snapshot_bytes().unwrap();
        // Keep mutating the live server, journaling every op.
        let mut journal = Vec::new();
        let ops = vec![
            JournalOp::AdvanceEpoch,
            JournalOp::RegisterBatch(vec![
                (PeerId(100), path(&[210, 2, 1, 0])),
                (PeerId(101), path(&[320, 105, 100])),
                (PeerId(4), path(&[204, 2, 1, 0])), // renewal
            ]),
            JournalOp::RenewBatch((6..20).map(PeerId).collect()),
            JournalOp::Handover {
                peer: PeerId(100),
                path: path(&[321, 105, 100]),
            },
            JournalOp::DeregisterForwarding {
                peer: PeerId(101),
                to_region: 7,
            },
            JournalOp::Deregister(PeerId(6)),
            JournalOp::AdvanceEpoch,
            JournalOp::AdvanceEpoch,
            JournalOp::LeaveBatch(vec![PeerId(7), PeerId(999)]),
            JournalOp::ExpireStale { max_age: 2 },
        ];
        for op in ops {
            append_op(&mut journal, &op);
            live.apply_journal_op(op);
        }
        let (recovered, report) = ManagementServer::recover(&snapshot, &journal).unwrap();
        assert_eq!(report.journal_records, 10);
        assert_eq!(report.journal_bytes, journal.len());
        assert!(!report.journal_torn_tail);
        assert_same_directory(&live, &recovered);
    }

    #[test]
    fn recovery_fails_closed_on_damaged_snapshot() {
        let srv = churned_adaptive_server();
        let good = srv.snapshot_bytes().unwrap();

        // Too short to even hold a header and checksum.
        assert!(matches!(
            ManagementServer::recover(&good[..10], &[]),
            Err(CoreError::Persist(PersistError::Truncated))
        ));
        // Wrong magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            ManagementServer::recover(&bad, &[]),
            Err(CoreError::Persist(PersistError::BadMagic(_)))
        ));
        // Unsupported version.
        let mut bad = good.clone();
        bad[4] = 99;
        assert!(matches!(
            ManagementServer::recover(&bad, &[]),
            Err(CoreError::Persist(PersistError::UnsupportedVersion(99)))
        ));
        // A single flipped body byte fails the checksum before parsing.
        let mut bad = good.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        assert!(matches!(
            ManagementServer::recover(&bad, &[]),
            Err(CoreError::Persist(PersistError::ChecksumMismatch { .. }))
        ));
        // Truncation anywhere also fails the checksum (the trailing eight
        // bytes are now body bytes, not the stored sum).
        let cut = good.len() - 20;
        assert!(matches!(
            ManagementServer::recover(&good[..cut], &[]),
            Err(CoreError::Persist(PersistError::ChecksumMismatch { .. }))
        ));
    }

    #[test]
    fn torn_journal_tail_replays_to_last_intact_record() {
        use crate::directory::persist::journal::append_op;
        let mut live = churned_adaptive_server();
        let snapshot = live.snapshot_bytes().unwrap();
        let mut journal = Vec::new();
        append_op(&mut journal, &JournalOp::AdvanceEpoch);
        live.apply_journal_op(JournalOp::AdvanceEpoch);
        append_op(
            &mut journal,
            &JournalOp::RegisterBatch(vec![(PeerId(500), path(&[250, 2, 1, 0]))]),
        );
        live.apply_journal_op(JournalOp::RegisterBatch(vec![(
            PeerId(500),
            path(&[250, 2, 1, 0]),
        )]));
        let intact = journal.len();
        // A record the crash cut in half: replay must stop cleanly before
        // it, reporting the tear.
        append_op(
            &mut journal,
            &JournalOp::RegisterBatch(vec![(PeerId(501), path(&[251, 2, 1, 0]))]),
        );
        journal.truncate(intact + 7);
        let (recovered, report) = ManagementServer::recover(&snapshot, &journal).unwrap();
        assert_eq!(report.journal_records, 2);
        assert_eq!(report.journal_bytes, intact);
        assert!(report.journal_torn_tail);
        assert!(!recovered.index().contains(PeerId(501)));
        assert_same_directory(&live, &recovered);
    }

    #[test]
    fn super_peer_servers_refuse_to_snapshot() {
        let srv = two_landmark_server(ServerConfig {
            super_peers: Some(crate::superpeer::SuperPeerConfig::default()),
            ..ServerConfig::default()
        });
        assert!(matches!(
            srv.snapshot_bytes(),
            Err(CoreError::Persist(PersistError::Unsupported(_)))
        ));
    }
}
