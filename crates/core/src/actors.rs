//! Protocol endpoints for `nearpeer-sim` — the end-to-end join in simulated
//! time (experiments C3 and A2).
//!
//! The actors speak [`Message`] over the simulator's link model. State the
//! experiment wants back out (join time, received neighbor list) is shared
//! through `Rc<RefCell<..>>` handles, keeping the `Actor` trait free of
//! downcasting machinery (the simulator is single-threaded by design).

use crate::ids::PeerId;
use crate::path::PeerPath;
use crate::protocol::{Message, WireNeighbor};
use crate::server::ManagementServer;
use nearpeer_sim::{Actor, Context, NodeId, SimTime, TimerId};
use std::cell::RefCell;
use std::rc::Rc;

const TIMER_PROBES_DONE: TimerId = TimerId(1);
const TIMER_TRACE_DONE: TimerId = TimerId(2);

/// The management server as a simulator actor. The wrapped
/// [`ManagementServer`] stays accessible to the experiment through the
/// shared handle.
pub struct ServerActor {
    server: Rc<RefCell<ManagementServer>>,
}

impl ServerActor {
    /// Wraps a shared management server.
    pub fn new(server: Rc<RefCell<ManagementServer>>) -> Self {
        Self { server }
    }
}

impl Actor<Message> for ServerActor {
    fn on_message(&mut self, ctx: &mut Context<'_, Message>, from: NodeId, msg: Message) {
        match msg {
            Message::JoinRequest { peer, path } => {
                let outcome = self.server.borrow_mut().register(peer, path);
                match outcome {
                    Ok(out) => ctx.send(
                        from,
                        Message::JoinReply {
                            peer,
                            neighbors: out
                                .neighbors
                                .iter()
                                .map(|n| WireNeighbor {
                                    peer: n.peer,
                                    dtree: n.dtree,
                                })
                                .collect(),
                            delegate: out.delegate,
                        },
                    ),
                    Err(e) => ctx.send(
                        from,
                        Message::JoinError {
                            peer,
                            reason: e.to_string(),
                        },
                    ),
                }
            }
            Message::HandoverRequest { peer, path } => {
                let outcome = self.server.borrow_mut().handover(peer, path);
                match outcome {
                    Ok(out) => ctx.send(
                        from,
                        Message::JoinReply {
                            peer,
                            neighbors: out
                                .neighbors
                                .iter()
                                .map(|n| WireNeighbor {
                                    peer: n.peer,
                                    dtree: n.dtree,
                                })
                                .collect(),
                            delegate: out.delegate,
                        },
                    ),
                    Err(e) => ctx.send(
                        from,
                        Message::JoinError {
                            peer,
                            reason: e.to_string(),
                        },
                    ),
                }
            }
            Message::Leave { peer } => {
                // Departure of an unknown peer is not an error worth a
                // reply; drop silently (the peer is gone anyway).
                let _ = self.server.borrow_mut().deregister(peer);
            }
            Message::Heartbeat { peer } => {
                let _ = self.server.borrow_mut().heartbeat(peer);
            }
            // A server ignores probe traffic (landmarks answer that).
            _ => {}
        }
    }
}

/// A landmark endpoint: answers RTT probes.
pub struct LandmarkActor;

impl Actor<Message> for LandmarkActor {
    fn on_message(&mut self, ctx: &mut Context<'_, Message>, from: NodeId, msg: Message) {
        if let Message::ProbePing { nonce } = msg {
            ctx.send(from, Message::ProbePong { nonce });
        }
    }
}

/// What a [`PeerActor`] learned by the end of its join, shared with the
/// experiment.
#[derive(Debug, Default, Clone)]
pub struct JoinRecord {
    /// When the JoinReply arrived (the setup delay endpoint).
    pub joined_at: Option<SimTime>,
    /// When the peer started (set at `on_start`).
    pub started_at: Option<SimTime>,
    /// The landmark index the peer picked (argmin probe RTT).
    pub chosen_landmark: Option<usize>,
    /// The neighbor list received from the server.
    pub neighbors: Vec<WireNeighbor>,
    /// A delegate super-peer, if the server appointed one.
    pub delegate: Option<PeerId>,
    /// Probe pongs received.
    pub pongs: usize,
    /// True if the server refused the join.
    pub refused: bool,
}

impl JoinRecord {
    /// Total setup delay, if the join completed.
    pub fn setup_delay_us(&self) -> Option<u64> {
        match (self.started_at, self.joined_at) {
            (Some(s), Some(j)) => Some(j.saturating_since(s)),
            _ => None,
        }
    }
}

/// A joining peer: probes all landmarks, "runs" its traceroute (a timer of
/// the probe-accounted duration), then sends the join request for the
/// closest landmark's path.
pub struct PeerActor {
    id: PeerId,
    server: NodeId,
    landmarks: Vec<NodeId>,
    /// Per landmark: the pre-computed traceroute outcome `(path, cost_us)`
    /// (from `nearpeer-probe`); `None` if that landmark is unreachable.
    traces: Vec<Option<(PeerPath, u64)>>,
    probe_timeout_us: u64,
    probe_rtts: Vec<Option<u64>>,
    probe_sent_at: Vec<SimTime>,
    record: Rc<RefCell<JoinRecord>>,
}

impl PeerActor {
    /// Creates a joining peer.
    ///
    /// `traces[i]` is the traceroute result towards `landmarks[i]`.
    pub fn new(
        id: PeerId,
        server: NodeId,
        landmarks: Vec<NodeId>,
        traces: Vec<Option<(PeerPath, u64)>>,
        probe_timeout_us: u64,
        record: Rc<RefCell<JoinRecord>>,
    ) -> Self {
        let n = landmarks.len();
        Self {
            id,
            server,
            landmarks,
            traces,
            probe_timeout_us,
            probe_rtts: vec![None; n],
            probe_sent_at: vec![SimTime::ZERO; n],
            record,
        }
    }

    fn start_trace(&mut self, ctx: &mut Context<'_, Message>) {
        // Closest landmark by measured RTT; unprobed landmarks lose.
        let chosen = self
            .probe_rtts
            .iter()
            .enumerate()
            .filter_map(|(i, rtt)| rtt.map(|r| (r, i)))
            .min()
            .map(|(_, i)| i);
        // Fall back to the first traceable landmark if every probe was lost.
        let chosen = chosen.or_else(|| self.traces.iter().position(Option::is_some));
        let Some(idx) = chosen else {
            return; // nothing reachable: the join dies here
        };
        let Some((_, trace_cost)) = self.traces[idx].as_ref() else {
            return;
        };
        self.record.borrow_mut().chosen_landmark = Some(idx);
        ctx.set_timer(*trace_cost, TIMER_TRACE_DONE);
    }
}

impl Actor<Message> for PeerActor {
    fn on_start(&mut self, ctx: &mut Context<'_, Message>) {
        self.record.borrow_mut().started_at = Some(ctx.now());
        if self.landmarks.is_empty() {
            // Degenerate config: skip probing, trace to whatever we have.
            self.start_trace(ctx);
            return;
        }
        for (i, &lm) in self.landmarks.iter().enumerate() {
            self.probe_sent_at[i] = ctx.now();
            ctx.send(lm, Message::ProbePing { nonce: i as u64 });
        }
        ctx.set_timer(self.probe_timeout_us, TIMER_PROBES_DONE);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Message>, _from: NodeId, msg: Message) {
        match msg {
            Message::ProbePong { nonce } => {
                let i = nonce as usize;
                if i < self.probe_rtts.len() && self.probe_rtts[i].is_none() {
                    self.probe_rtts[i] = Some(ctx.now().saturating_since(self.probe_sent_at[i]));
                    let mut rec = self.record.borrow_mut();
                    rec.pongs += 1;
                    let all = rec.pongs == self.landmarks.len();
                    drop(rec);
                    if all {
                        self.start_trace(ctx);
                    }
                }
            }
            Message::JoinReply {
                peer,
                neighbors,
                delegate,
            } if peer == self.id => {
                let mut rec = self.record.borrow_mut();
                rec.joined_at = Some(ctx.now());
                rec.neighbors = neighbors;
                rec.delegate = delegate;
            }
            Message::JoinError { peer, .. } if peer == self.id => {
                self.record.borrow_mut().refused = true;
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Message>, id: TimerId) {
        match id {
            TIMER_PROBES_DONE
                // Proceed with whatever pongs arrived, unless the trace
                // already started (all pongs in).
                if self.record.borrow().chosen_landmark.is_none() => {
                    self.start_trace(ctx);
                }
            TIMER_TRACE_DONE => {
                let Some(idx) = self.record.borrow().chosen_landmark else {
                    return;
                };
                if let Some((path, _)) = self.traces[idx].clone() {
                    ctx.send(
                        self.server,
                        Message::JoinRequest {
                            peer: self.id,
                            path,
                        },
                    );
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use nearpeer_sim::links::Fixed;
    use nearpeer_sim::Simulator;
    use nearpeer_topology::RouterId;

    fn path(ids: &[u32]) -> PeerPath {
        PeerPath::new(ids.iter().map(|&i| RouterId(i)).collect()).unwrap()
    }

    fn shared_server() -> Rc<RefCell<ManagementServer>> {
        Rc::new(RefCell::new(ManagementServer::new(
            vec![RouterId(0), RouterId(100)],
            vec![vec![0, 4], vec![4, 0]],
            ServerConfig::default(),
        )))
    }

    #[test]
    fn full_join_sequence() {
        let server = shared_server();
        let mut sim: Simulator<Message, Fixed> = Simulator::new(Fixed(1_000), 1);
        let srv = sim.add_actor(Box::new(ServerActor::new(server.clone())));
        let lm0 = sim.add_actor(Box::new(LandmarkActor));
        let lm1 = sim.add_actor(Box::new(LandmarkActor));

        let rec = Rc::new(RefCell::new(JoinRecord::default()));
        let peer = PeerActor::new(
            PeerId(1),
            srv,
            vec![lm0, lm1],
            vec![
                Some((path(&[9, 4, 0]), 5_000)),
                Some((path(&[9, 104, 100]), 7_000)),
            ],
            50_000,
            rec.clone(),
        );
        sim.add_actor(Box::new(peer));
        sim.run_to_completion();

        let rec = rec.borrow();
        assert!(!rec.refused);
        assert_eq!(rec.pongs, 2);
        // Both landmarks have equal RTT under Fixed links; argmin picks 0.
        assert_eq!(rec.chosen_landmark, Some(0));
        // Timeline: pings out at 0, pongs at 2ms, trace 5ms -> 7ms, join
        // request lands at 8ms, reply at 9ms.
        assert_eq!(rec.joined_at, Some(nearpeer_sim::SimTime(9_000)));
        assert_eq!(rec.setup_delay_us(), Some(9_000));
        assert!(rec.neighbors.is_empty(), "first peer has no neighbors");
        assert_eq!(server.borrow().peer_count(), 1);
    }

    #[test]
    fn second_peer_receives_the_first_as_neighbor() {
        let server = shared_server();
        let mut sim: Simulator<Message, Fixed> = Simulator::new(Fixed(500), 1);
        let srv = sim.add_actor(Box::new(ServerActor::new(server.clone())));
        let lm0 = sim.add_actor(Box::new(LandmarkActor));

        let rec1 = Rc::new(RefCell::new(JoinRecord::default()));
        sim.add_actor(Box::new(PeerActor::new(
            PeerId(1),
            srv,
            vec![lm0],
            vec![Some((path(&[9, 4, 0]), 1_000))],
            10_000,
            rec1.clone(),
        )));
        sim.run_to_completion();

        let rec2 = Rc::new(RefCell::new(JoinRecord::default()));
        sim.add_actor(Box::new(PeerActor::new(
            PeerId(2),
            srv,
            vec![lm0],
            vec![Some((path(&[8, 4, 0]), 1_000))],
            10_000,
            rec2.clone(),
        )));
        sim.run_to_completion();

        let rec2 = rec2.borrow();
        assert_eq!(rec2.neighbors.len(), 1);
        assert_eq!(rec2.neighbors[0].peer, PeerId(1));
        assert_eq!(rec2.neighbors[0].dtree, 2); // meet at router 4: 1 + 1
    }

    #[test]
    fn probe_timeout_still_joins() {
        let server = shared_server();
        // Drop everything except... use a link that always drops probe
        // traffic by killing the landmark first.
        let mut sim: Simulator<Message, Fixed> = Simulator::new(Fixed(500), 1);
        let srv = sim.add_actor(Box::new(ServerActor::new(server.clone())));
        let lm0 = sim.add_actor(Box::new(LandmarkActor));
        sim.kill_at(nearpeer_sim::SimTime::ZERO, lm0);

        let rec = Rc::new(RefCell::new(JoinRecord::default()));
        sim.add_actor(Box::new(PeerActor::new(
            PeerId(1),
            srv,
            vec![lm0],
            vec![Some((path(&[9, 4, 0]), 2_000))],
            5_000,
            rec.clone(),
        )));
        sim.run_to_completion();

        let rec = rec.borrow();
        assert_eq!(rec.pongs, 0);
        assert_eq!(rec.chosen_landmark, Some(0), "fallback landmark used");
        assert!(rec.joined_at.is_some(), "join completes after timeout");
        // Timeout 5ms + trace 2ms + request 0.5ms + reply 0.5ms = 8ms.
        assert_eq!(rec.setup_delay_us(), Some(8_000));
    }

    #[test]
    fn duplicate_join_refused_via_wire() {
        let server = shared_server();
        let mut sim: Simulator<Message, Fixed> = Simulator::new(Fixed(100), 1);
        let srv = sim.add_actor(Box::new(ServerActor::new(server.clone())));
        let lm0 = sim.add_actor(Box::new(LandmarkActor));
        for _ in 0..2 {
            let rec = Rc::new(RefCell::new(JoinRecord::default()));
            sim.add_actor(Box::new(PeerActor::new(
                PeerId(7), // same id twice
                srv,
                vec![lm0],
                vec![Some((path(&[9, 4, 0]), 1_000))],
                10_000,
                rec.clone(),
            )));
            sim.run_to_completion();
            if server.borrow().peer_count() == 1 && rec.borrow().refused {
                return; // second round: refusal observed
            }
        }
        assert_eq!(server.borrow().peer_count(), 1);
    }

    #[test]
    fn leave_message_deregisters() {
        let server = shared_server();
        let mut sim: Simulator<Message, Fixed> = Simulator::new(Fixed(100), 1);
        let srv = sim.add_actor(Box::new(ServerActor::new(server.clone())));
        server
            .borrow_mut()
            .register(PeerId(5), path(&[9, 4, 0]))
            .unwrap();
        sim.inject_at(
            nearpeer_sim::SimTime(10),
            srv,
            srv,
            Message::Leave { peer: PeerId(5) },
        );
        sim.run_to_completion();
        assert_eq!(server.borrow().peer_count(), 0);
    }
}
