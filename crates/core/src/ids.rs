//! Identifiers used across the discovery system.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a participating peer (assigned by the application).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PeerId(pub u64);

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer{}", self.0)
    }
}

/// Identifier of a landmark (dense index into the server's landmark table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LandmarkId(pub u32);

impl LandmarkId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LandmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lmk{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(PeerId(7).to_string(), "peer7");
        assert_eq!(LandmarkId(2).to_string(), "lmk2");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(PeerId(2) < PeerId(10));
        assert!(LandmarkId(0) < LandmarkId(1));
        assert_eq!(LandmarkId(3).index(), 3);
    }
}
