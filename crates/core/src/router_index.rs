//! The paper's hash-table-of-ordered-lists data structure.

use crate::error::CoreError;
use crate::ids::PeerId;
use crate::path::PeerPath;
use nearpeer_topology::RouterId;
use std::collections::{BTreeSet, BinaryHeap, HashMap, HashSet};

/// One discovered neighbor: the peer and its inferred tree distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Neighbor {
    /// The neighbor's id.
    pub peer: PeerId,
    /// The inferred hop distance `dtree` (through the deepest shared
    /// router).
    pub dtree: u32,
}

/// The entry table shared between the global [`RouterIndex`] and the
/// per-landmark shard indexes of [`crate::directory`]: router → peers
/// traversing it, ordered by hop count below the router.
pub(crate) type EntryMap = HashMap<RouterId, BTreeSet<(u32, PeerId)>>;

/// The `k` peers with smallest combined depth (`dtree`) to the query path
/// over an [`EntryMap`], ascending, ties broken by peer id. This is the
/// paper's query: one lazy cursor per query-path router, k-way merged by a
/// min-heap, touching only `O(k + path length)` entries regardless of the
/// population. Shared by [`RouterIndex::query_nearest`] and the directory
/// shards (whose per-shard answers merge back losslessly, because every
/// peer's entries live in exactly one shard).
pub(crate) fn query_nearest_entries(
    entries: &EntryMap,
    query: &PeerPath,
    k: usize,
    exclude: &HashSet<PeerId>,
) -> Vec<Neighbor> {
    if k == 0 {
        return Vec::new();
    }
    // One lazy cursor per query-path router; heap orders by combined
    // depth (query depth + candidate depth below the shared router).
    struct Cursor<'a> {
        query_depth: u32,
        iter: std::collections::btree_set::Iter<'a, (u32, PeerId)>,
    }
    // Max-heap → wrap in Reverse for a min-heap keyed by
    // (dtree, peer, router position) for total determinism.
    let mut heap: BinaryHeap<std::cmp::Reverse<(u32, PeerId, usize)>> = BinaryHeap::new();
    let mut cursors: Vec<Cursor<'_>> = Vec::new();
    for (router, query_depth) in query.with_depths() {
        if let Some(set) = entries.get(&router) {
            let mut iter = set.iter();
            if let Some(&(cand_depth, peer)) = iter.next() {
                let idx = cursors.len();
                heap.push(std::cmp::Reverse((query_depth + cand_depth, peer, idx)));
                cursors.push(Cursor { query_depth, iter });
            }
        }
    }

    let mut seen: HashSet<PeerId> = HashSet::new();
    let mut out = Vec::with_capacity(k);
    while let Some(std::cmp::Reverse((dtree, peer, idx))) = heap.pop() {
        // Advance the cursor this candidate came from.
        let cursor = &mut cursors[idx];
        if let Some(&(cand_depth, next_peer)) = cursor.iter.next() {
            heap.push(std::cmp::Reverse((
                cursor.query_depth + cand_depth,
                next_peer,
                idx,
            )));
        }
        if exclude.contains(&peer) || !seen.insert(peer) {
            continue;
        }
        out.push(Neighbor { peer, dtree });
        if out.len() == k {
            break;
        }
    }
    out
}

/// The core data structure of §2: `HashMap<RouterId, ordered set>` where
/// each router's entry keeps the peers whose stored path traverses it,
/// ordered by their hop count below the router.
///
/// * `insert` walks the peer's path (bounded by the topology diameter, not
///   `n`) performing one ordered insertion per router — the paper's
///   "`O(log n)`, inserting into an ordered list";
/// * `query_nearest` walks the *query* path router by router (each a hash
///   lookup) and k-way-merges the per-router ordered lists by combined
///   depth, yielding the `k` smallest-`dtree` peers while touching only
///   `O(k + path length)` entries — the paper's "`O(1)`, accessing a data
///   in a hash table";
/// * `remove` undoes the ordered insertions (churn, W3).
///
/// The structure is landmark-agnostic: peers routed to *different*
/// landmarks still meet in the index at any shared router, which is exactly
/// the cross-landmark fallback DESIGN.md §5 documents.
#[derive(Debug, Default, Clone)]
pub struct RouterIndex {
    entries: EntryMap,
    paths: HashMap<PeerId, PeerPath>,
}

impl RouterIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered peers.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether no peer is registered.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Whether the peer is registered.
    pub fn contains(&self, peer: PeerId) -> bool {
        self.paths.contains_key(&peer)
    }

    /// The stored path of a peer.
    pub fn path_of(&self, peer: PeerId) -> Option<&PeerPath> {
        self.paths.get(&peer)
    }

    /// Iterator over all registered peers.
    pub fn peers(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.paths.keys().copied()
    }

    /// Number of distinct routers referenced by stored paths.
    pub fn n_routers(&self) -> usize {
        self.entries.len()
    }

    /// Peers whose path traverses `router`, nearest-first (by hops below
    /// the router).
    pub fn peers_through(&self, router: RouterId) -> impl Iterator<Item = (PeerId, u32)> + '_ {
        self.entries
            .get(&router)
            .into_iter()
            .flat_map(|set| set.iter().map(|&(d, p)| (p, d)))
    }

    /// Registers a newcomer. `O(d · log n)` ordered insertions.
    pub fn insert(&mut self, peer: PeerId, path: PeerPath) -> Result<(), CoreError> {
        if self.paths.contains_key(&peer) {
            return Err(CoreError::DuplicatePeer(peer));
        }
        for (router, depth) in path.with_depths() {
            self.entries
                .entry(router)
                .or_default()
                .insert((depth, peer));
        }
        self.paths.insert(peer, path);
        Ok(())
    }

    /// Deregisters a peer, returning its stored path.
    pub fn remove(&mut self, peer: PeerId) -> Option<PeerPath> {
        let path = self.paths.remove(&peer)?;
        for (router, depth) in path.with_depths() {
            if let Some(set) = self.entries.get_mut(&router) {
                set.remove(&(depth, peer));
                if set.is_empty() {
                    self.entries.remove(&router);
                }
            }
        }
        Some(path)
    }

    /// Inferred tree distance between two *registered* peers.
    pub fn dtree(&self, a: PeerId, b: PeerId) -> Option<u32> {
        let pa = self.paths.get(&a)?;
        let pb = self.paths.get(&b)?;
        pa.dtree(pb).map(|(_, d)| d)
    }

    /// The `k` registered peers with smallest `dtree` to the query path,
    /// ascending (ties broken by peer id via the ordered sets). Peers in
    /// `exclude` (e.g. the newcomer itself) are skipped. Peers sharing no
    /// router with the query path are invisible to this search.
    pub fn query_nearest(
        &self,
        query: &PeerPath,
        k: usize,
        exclude: &HashSet<PeerId>,
    ) -> Vec<Neighbor> {
        query_nearest_entries(&self.entries, query, k, exclude)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(ids: &[u32]) -> PeerPath {
        PeerPath::new(ids.iter().map(|&i| RouterId(i)).collect()).unwrap()
    }

    fn no_exclude() -> HashSet<PeerId> {
        HashSet::new()
    }

    /// A small landmark tree (landmark router 0):
    ///
    /// ```text
    ///          0 (lmk)
    ///          |
    ///          1
    ///        /   \
    ///       2     3
    ///      / \     \
    ///     4   5     6
    /// ```
    /// Peers: A@4, B@5, C@6, D@2.
    fn populated() -> RouterIndex {
        let mut idx = RouterIndex::new();
        idx.insert(PeerId(0xA), path(&[4, 2, 1, 0])).unwrap();
        idx.insert(PeerId(0xB), path(&[5, 2, 1, 0])).unwrap();
        idx.insert(PeerId(0xC), path(&[6, 3, 1, 0])).unwrap();
        idx.insert(PeerId(0xD), path(&[2, 1, 0])).unwrap();
        idx
    }

    #[test]
    fn insert_and_lookup() {
        let idx = populated();
        assert_eq!(idx.len(), 4);
        assert!(idx.contains(PeerId(0xA)));
        assert!(!idx.contains(PeerId(0xF)));
        assert_eq!(idx.path_of(PeerId(0xC)).unwrap().attach(), RouterId(6));
        // Router 1 is on everyone's path.
        assert_eq!(idx.peers_through(RouterId(1)).count(), 4);
        // Router 3 only carries C.
        let through3: Vec<_> = idx.peers_through(RouterId(3)).collect();
        assert_eq!(through3, vec![(PeerId(0xC), 1)]);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut idx = populated();
        assert!(matches!(
            idx.insert(PeerId(0xA), path(&[9, 0])),
            Err(CoreError::DuplicatePeer(_))
        ));
    }

    #[test]
    fn dtree_between_registered() {
        let idx = populated();
        // A@4 and B@5 meet at router 2: 1 + 1.
        assert_eq!(idx.dtree(PeerId(0xA), PeerId(0xB)), Some(2));
        // A@4 and C@6 meet at router 1: 2 + 2.
        assert_eq!(idx.dtree(PeerId(0xA), PeerId(0xC)), Some(4));
        // D sits on A's path at router 2: 1 + 0.
        assert_eq!(idx.dtree(PeerId(0xA), PeerId(0xD)), Some(1));
        assert_eq!(idx.dtree(PeerId(0xA), PeerId(0xF)), None);
    }

    #[test]
    fn query_orders_by_dtree() {
        let idx = populated();
        // Newcomer at router 4's position (same as A).
        let q = path(&[4, 2, 1, 0]);
        let result = idx.query_nearest(&q, 4, &no_exclude());
        let peers: Vec<PeerId> = result.iter().map(|n| n.peer).collect();
        // A at dtree 0, D at 1, B at 2, C at 4.
        assert_eq!(
            peers,
            vec![PeerId(0xA), PeerId(0xD), PeerId(0xB), PeerId(0xC)]
        );
        let dts: Vec<u32> = result.iter().map(|n| n.dtree).collect();
        assert_eq!(dts, vec![0, 1, 2, 4]);
    }

    #[test]
    fn query_respects_k_and_exclude() {
        let idx = populated();
        let q = path(&[4, 2, 1, 0]);
        let excl: HashSet<PeerId> = [PeerId(0xA)].into_iter().collect();
        let result = idx.query_nearest(&q, 2, &excl);
        assert_eq!(result.len(), 2);
        assert_eq!(result[0].peer, PeerId(0xD));
        assert_eq!(result[1].peer, PeerId(0xB));
        assert!(idx.query_nearest(&q, 0, &no_exclude()).is_empty());
    }

    #[test]
    fn query_matches_brute_force() {
        let idx = populated();
        let q = path(&[6, 3, 1, 0]);
        let fast = idx.query_nearest(&q, 4, &no_exclude());
        // Brute force over stored paths.
        let mut brute: Vec<(u32, PeerId)> = idx
            .peers()
            .filter_map(|p| {
                idx.path_of(p)
                    .and_then(|pp| q.dtree(pp))
                    .map(|(_, d)| (d, p))
            })
            .collect();
        brute.sort();
        let brute_peers: Vec<PeerId> = brute.iter().map(|&(_, p)| p).collect();
        let fast_peers: Vec<PeerId> = fast.iter().map(|n| n.peer).collect();
        assert_eq!(fast_peers, brute_peers);
        for (n, &(d, _)) in fast.iter().zip(&brute) {
            assert_eq!(n.dtree, d);
        }
    }

    #[test]
    fn remove_cleans_entries() {
        let mut idx = populated();
        let removed = idx.remove(PeerId(0xA)).unwrap();
        assert_eq!(removed.attach(), RouterId(4));
        assert_eq!(idx.len(), 3);
        assert!(idx.peers_through(RouterId(4)).next().is_none());
        assert_eq!(idx.remove(PeerId(0xA)), None);
        // Query no longer returns A.
        let q = path(&[4, 2, 1, 0]);
        let result = idx.query_nearest(&q, 4, &no_exclude());
        assert!(result.iter().all(|n| n.peer != PeerId(0xA)));
    }

    #[test]
    fn cross_landmark_peers_meet_at_shared_routers() {
        let mut idx = RouterIndex::new();
        // Peer X routes to landmark 100, peer Y to landmark 200; both paths
        // cross router 7.
        idx.insert(PeerId(1), path(&[10, 7, 8, 100])).unwrap();
        idx.insert(PeerId(2), path(&[20, 7, 9, 200])).unwrap();
        assert_eq!(idx.dtree(PeerId(1), PeerId(2)), Some(2));
        let q = path(&[10, 7, 8, 100]);
        let res = idx.query_nearest(&q, 2, &no_exclude());
        assert_eq!(res.len(), 2);
        assert_eq!(res[1].peer, PeerId(2));
        assert_eq!(res[1].dtree, 2);
    }

    #[test]
    fn invisible_without_shared_router() {
        let mut idx = RouterIndex::new();
        idx.insert(PeerId(1), path(&[1, 2, 3])).unwrap();
        let q = path(&[4, 5, 6]);
        assert!(idx.query_nearest(&q, 5, &no_exclude()).is_empty());
    }

    #[test]
    fn empty_index_queries() {
        let idx = RouterIndex::new();
        assert!(idx.is_empty());
        assert_eq!(idx.n_routers(), 0);
        let q = path(&[1, 2]);
        assert!(idx.query_nearest(&q, 3, &no_exclude()).is_empty());
    }
}
