//! The sharded directory behind the management server.
//!
//! The paper's round-2 server is logically one big table; serving heavy
//! traffic means splitting it along the axis the data already has:
//! **the landmark**. Every stored path terminates at exactly one landmark
//! router, so peers partition cleanly into per-landmark
//! [`DirectoryShard`]s — each owning its landmark's
//! [`crate::PathTree`], its slice of the router index and its peers'
//! soft-state leases, with paths interned once in an arena-backed
//! [`PathStore`] instead of cloned into every structure and leases held
//! in a slab-backed [`LeaseArena`] (generational slots, one open-addressed
//! peer→slot table, epoch-bucketed expiry) so million-peer churn neither
//! fragments the heap nor pays a full-table scan per expiry sweep.
//!
//! The [`crate::ManagementServer`] facade keeps the original single-server
//! API on top: it routes writes to the owning shard, merges `&self` reads
//! across shards (per-shard answers recombine losslessly because every
//! peer's index entries live in exactly one shard), and keeps the only
//! genuinely cross-landmark state (bridge distances, super-peer regions,
//! aggregate counters) to itself. Batched joins
//! ([`crate::ManagementServer::register_batch`]) group newcomers by
//! landmark and amortise the tree descent; disjoint shards can be built
//! from different threads via [`crate::ManagementServer::shards_mut`].

mod adaptive;
mod lease_arena;
mod path_store;
pub mod persist;
pub mod query;
mod shard;

pub use adaptive::AdaptiveLeaseConfig;
pub use lease_arena::{ExpiredLease, LeaseArena, PeerSlot, SweepOutcome, SweepStats};
pub use path_store::{PathRef, PathStore};
pub use query::MergedPeersThrough;
pub use shard::{DirectoryShard, ShardAbsorb, ShardSweep};
