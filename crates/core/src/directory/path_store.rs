//! Arena-backed interning of peer paths.
//!
//! Before the directory refactor the same [`PeerPath`] was cloned into
//! every structure that mentioned the peer (registry, router index, query
//! answers). The store keeps exactly one copy per *distinct* path and hands
//! out copyable [`PathRef`] handles; structures store the 4-byte handle and
//! resolve it on demand. Distinct peers tracing from the same access chain
//! (mobile peers re-joining, synthetic workloads, NAT'd households) share
//! one arena slot via reference counting.

use super::persist::wire::{put_path, put_u32, put_u64, put_u8, Reader};
use super::persist::PersistError;
use crate::path::PeerPath;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// A handle into a [`PathStore`] arena. Only meaningful for the store that
/// produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathRef(u32);

impl PathRef {
    /// The raw arena slot (diagnostics only).
    pub fn slot(self) -> u32 {
        self.0
    }

    /// Rebuilds a handle from a persisted slot index. Only the snapshot
    /// decoder may mint refs: it validates every minted ref against the
    /// restored store before use.
    pub(crate) fn from_slot(slot: u32) -> PathRef {
        PathRef(slot)
    }
}

#[derive(Debug)]
enum Slot {
    Vacant,
    Occupied { path: PeerPath, refs: u32 },
}

/// An arena of interned [`PeerPath`]s with per-entry reference counts and a
/// free list, so churn (register/deregister cycles) does not grow the
/// arena without bound.
#[derive(Debug, Default)]
pub struct PathStore {
    slots: Vec<Slot>,
    /// Content hash → candidate slots (collisions resolved by comparison).
    by_hash: HashMap<u64, Vec<u32>>,
    free: Vec<u32>,
    live: usize,
    hits: u64,
}

fn content_hash(path: &PeerPath) -> u64 {
    let mut hasher = DefaultHasher::new();
    path.routers().hash(&mut hasher);
    hasher.finish()
}

impl PathStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct live paths in the arena.
    pub fn distinct(&self) -> usize {
        self.live
    }

    /// Whether the arena holds no live path.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// How many [`Self::intern`] calls were answered by an existing entry
    /// instead of a fresh allocation.
    pub fn dedup_hits(&self) -> u64 {
        self.hits
    }

    /// Pre-sizes the arena for `additional` interns beyond the current
    /// live count (batch absorption at churn scale would otherwise grow
    /// the slot vector doubling-step by doubling-step mid-batch). Free
    /// slots already on the free list count towards the headroom.
    pub fn reserve(&mut self, additional: usize) {
        let needed = additional.saturating_sub(self.free.len());
        self.slots.reserve(needed);
    }

    /// Interns a path, returning a handle. Identical paths (same router
    /// sequence) share a slot; the slot's reference count is bumped.
    pub fn intern(&mut self, path: PeerPath) -> PathRef {
        let h = content_hash(&path);
        if let Some(candidates) = self.by_hash.get(&h) {
            for &slot in candidates {
                if let Slot::Occupied {
                    path: stored,
                    refs: _,
                } = &self.slots[slot as usize]
                {
                    if stored == &path {
                        if let Slot::Occupied { refs, .. } = &mut self.slots[slot as usize] {
                            *refs += 1;
                        }
                        self.hits += 1;
                        return PathRef(slot);
                    }
                }
            }
        }
        let slot = match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize] = Slot::Occupied { path, refs: 1 };
                idx
            }
            None => {
                let idx = self.slots.len() as u32;
                self.slots.push(Slot::Occupied { path, refs: 1 });
                idx
            }
        };
        self.by_hash.entry(h).or_default().push(slot);
        self.live += 1;
        PathRef(slot)
    }

    /// Resolves a handle.
    ///
    /// # Panics
    /// On a handle whose entry was fully released (a dangling `PathRef`) —
    /// that is a directory bookkeeping bug, not a user error.
    pub fn get(&self, r: PathRef) -> &PeerPath {
        match &self.slots[r.0 as usize] {
            Slot::Occupied { path, .. } => path,
            Slot::Vacant => panic!("dangling PathRef({})", r.0),
        }
    }

    /// Drops one reference to the entry; frees the slot when the last
    /// reference goes.
    pub fn release(&mut self, r: PathRef) {
        let free_now = match &mut self.slots[r.0 as usize] {
            Slot::Occupied { refs, .. } => {
                *refs -= 1;
                *refs == 0
            }
            Slot::Vacant => panic!("releasing dangling PathRef({})", r.0),
        };
        if free_now {
            let old = std::mem::replace(&mut self.slots[r.0 as usize], Slot::Vacant);
            let Slot::Occupied { path, .. } = old else {
                unreachable!("checked occupied above");
            };
            let h = content_hash(&path);
            if let Some(candidates) = self.by_hash.get_mut(&h) {
                candidates.retain(|&s| s != r.0);
                if candidates.is_empty() {
                    self.by_hash.remove(&h);
                }
            }
            self.free.push(r.0);
            self.live -= 1;
        }
    }

    /// Whether `r` currently points at an occupied slot (snapshot decoding
    /// validates minted refs through this before any [`Self::get`]).
    pub(crate) fn is_live(&self, r: PathRef) -> bool {
        matches!(self.slots.get(r.0 as usize), Some(Slot::Occupied { .. }))
    }

    /// Sum of reference counts over occupied slots. The shard decoder
    /// cross-checks this against the number of live leases (each live
    /// lease holds exactly one reference).
    pub(crate) fn total_refs(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| match s {
                Slot::Occupied { refs, .. } => u64::from(*refs),
                Slot::Vacant => 0,
            })
            .sum()
    }

    /// Streams the arena into `out`: slots (tag + refcount + path), the
    /// free list verbatim (slot-reuse order is part of future behaviour),
    /// and the dedup-hit counter. The content-hash index is derivable and
    /// not persisted.
    pub(crate) fn persist_encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.slots.len() as u64);
        for slot in &self.slots {
            match slot {
                Slot::Vacant => put_u8(out, 0),
                Slot::Occupied { path, refs } => {
                    put_u8(out, 1);
                    put_u32(out, *refs);
                    put_path(out, path);
                }
            }
        }
        put_u64(out, self.free.len() as u64);
        for &f in &self.free {
            put_u32(out, f);
        }
        put_u64(out, self.hits);
    }

    /// Rebuilds a store written by [`Self::persist_encode`], re-deriving
    /// the hash index and live count and validating the free list (every
    /// entry in bounds and vacant, no duplicates). Fails closed.
    pub(crate) fn persist_decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let n_slots = r.len_prefix(1)?;
        let mut slots = Vec::with_capacity(n_slots);
        let mut by_hash: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut live = 0usize;
        for i in 0..n_slots {
            match r.u8()? {
                0 => slots.push(Slot::Vacant),
                1 => {
                    let refs = r.u32()?;
                    if refs == 0 {
                        return Err(PersistError::Corrupt(format!(
                            "path slot {i} occupied with zero refs"
                        )));
                    }
                    let path = r.path()?;
                    by_hash
                        .entry(content_hash(&path))
                        .or_default()
                        .push(i as u32);
                    slots.push(Slot::Occupied { path, refs });
                    live += 1;
                }
                t => {
                    return Err(PersistError::Corrupt(format!(
                        "path slot {i} has unknown tag {t}"
                    )))
                }
            }
        }
        let n_free = r.len_prefix(4)?;
        let mut free = Vec::with_capacity(n_free);
        let mut seen = vec![false; n_slots];
        for _ in 0..n_free {
            let f = r.u32()?;
            let idx = f as usize;
            if idx >= n_slots || !matches!(slots[idx], Slot::Vacant) || seen[idx] {
                return Err(PersistError::Corrupt(format!(
                    "path free-list entry {f} is out of bounds, live, or duplicated"
                )));
            }
            seen[idx] = true;
            free.push(f);
        }
        let hits = r.u64()?;
        Ok(PathStore {
            slots,
            by_hash,
            free,
            live,
            hits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nearpeer_topology::RouterId;

    fn path(ids: &[u32]) -> PeerPath {
        PeerPath::new(ids.iter().map(|&i| RouterId(i)).collect()).unwrap()
    }

    #[test]
    fn interns_and_resolves() {
        let mut store = PathStore::new();
        let a = store.intern(path(&[1, 2, 3]));
        assert_eq!(store.get(a).routers().len(), 3);
        assert_eq!(store.distinct(), 1);
        assert_eq!(store.dedup_hits(), 0);
    }

    #[test]
    fn identical_paths_share_a_slot() {
        let mut store = PathStore::new();
        let a = store.intern(path(&[1, 2, 3]));
        let b = store.intern(path(&[1, 2, 3]));
        let c = store.intern(path(&[4, 2, 3]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(store.distinct(), 2);
        assert_eq!(store.dedup_hits(), 1);
    }

    #[test]
    fn release_refcounts_and_reuses_slots() {
        let mut store = PathStore::new();
        let a = store.intern(path(&[1, 2, 3]));
        let b = store.intern(path(&[1, 2, 3]));
        store.release(a);
        // One reference remains: still resolvable.
        assert_eq!(store.get(b).attach(), RouterId(1));
        store.release(b);
        assert!(store.is_empty());
        // The freed slot is recycled for the next intern.
        let c = store.intern(path(&[9, 8]));
        assert_eq!(c.slot(), a.slot());
        assert_eq!(store.distinct(), 1);
    }

    #[test]
    #[should_panic(expected = "dangling PathRef")]
    fn dangling_ref_panics() {
        let mut store = PathStore::new();
        let a = store.intern(path(&[1, 2]));
        store.release(a);
        let _ = store.get(a);
    }

    #[test]
    fn persist_roundtrip_preserves_slots_free_order_and_hits() {
        let mut store = PathStore::new();
        let a = store.intern(path(&[1, 2, 3]));
        let _b = store.intern(path(&[1, 2, 3]));
        let c = store.intern(path(&[4, 2, 3]));
        let d = store.intern(path(&[9, 8]));
        store.release(c);
        store.release(d);

        let mut bytes = Vec::new();
        store.persist_encode(&mut bytes);
        let mut reader = super::Reader::new(&bytes);
        let mut restored = PathStore::persist_decode(&mut reader).unwrap();
        assert_eq!(reader.remaining(), 0);

        assert_eq!(restored.distinct(), store.distinct());
        assert_eq!(restored.dedup_hits(), store.dedup_hits());
        assert_eq!(restored.total_refs(), store.total_refs());
        assert_eq!(restored.get(a), store.get(a));
        assert!(restored.is_live(a));
        assert!(!restored.is_live(c));
        // Future behaviour: the next intern reuses the same freed slot the
        // live store would.
        assert_eq!(
            restored.intern(path(&[7, 6, 0])).slot(),
            store.intern(path(&[7, 6, 0])).slot()
        );
    }

    #[test]
    fn persist_decode_rejects_live_free_list_entry() {
        let mut store = PathStore::new();
        let _ = store.intern(path(&[1, 2]));
        let mut bytes = Vec::new();
        store.persist_encode(&mut bytes);
        // The free list is empty; forge one pointing at the live slot 0.
        // Layout: ... | u64 free_len | entries | u64 hits.
        let hits_at = bytes.len() - 8;
        let free_len_at = hits_at - 8;
        bytes.splice(free_len_at..hits_at, 1u64.to_le_bytes());
        bytes.splice(hits_at..hits_at, 0u32.to_le_bytes());
        let mut reader = super::Reader::new(&bytes);
        assert!(matches!(
            PathStore::persist_decode(&mut reader),
            Err(super::PersistError::Corrupt(_))
        ));
    }
}
