//! Arena-backed interning of peer paths.
//!
//! Before the directory refactor the same [`PeerPath`] was cloned into
//! every structure that mentioned the peer (registry, router index, query
//! answers). The store keeps exactly one copy per *distinct* path and hands
//! out copyable [`PathRef`] handles; structures store the 4-byte handle and
//! resolve it on demand. Distinct peers tracing from the same access chain
//! (mobile peers re-joining, synthetic workloads, NAT'd households) share
//! one arena slot via reference counting.

use crate::path::PeerPath;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// A handle into a [`PathStore`] arena. Only meaningful for the store that
/// produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathRef(u32);

impl PathRef {
    /// The raw arena slot (diagnostics only).
    pub fn slot(self) -> u32 {
        self.0
    }
}

#[derive(Debug)]
enum Slot {
    Vacant,
    Occupied { path: PeerPath, refs: u32 },
}

/// An arena of interned [`PeerPath`]s with per-entry reference counts and a
/// free list, so churn (register/deregister cycles) does not grow the
/// arena without bound.
#[derive(Debug, Default)]
pub struct PathStore {
    slots: Vec<Slot>,
    /// Content hash → candidate slots (collisions resolved by comparison).
    by_hash: HashMap<u64, Vec<u32>>,
    free: Vec<u32>,
    live: usize,
    hits: u64,
}

fn content_hash(path: &PeerPath) -> u64 {
    let mut hasher = DefaultHasher::new();
    path.routers().hash(&mut hasher);
    hasher.finish()
}

impl PathStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct live paths in the arena.
    pub fn distinct(&self) -> usize {
        self.live
    }

    /// Whether the arena holds no live path.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// How many [`Self::intern`] calls were answered by an existing entry
    /// instead of a fresh allocation.
    pub fn dedup_hits(&self) -> u64 {
        self.hits
    }

    /// Pre-sizes the arena for `additional` interns beyond the current
    /// live count (batch absorption at churn scale would otherwise grow
    /// the slot vector doubling-step by doubling-step mid-batch). Free
    /// slots already on the free list count towards the headroom.
    pub fn reserve(&mut self, additional: usize) {
        let needed = additional.saturating_sub(self.free.len());
        self.slots.reserve(needed);
    }

    /// Interns a path, returning a handle. Identical paths (same router
    /// sequence) share a slot; the slot's reference count is bumped.
    pub fn intern(&mut self, path: PeerPath) -> PathRef {
        let h = content_hash(&path);
        if let Some(candidates) = self.by_hash.get(&h) {
            for &slot in candidates {
                if let Slot::Occupied {
                    path: stored,
                    refs: _,
                } = &self.slots[slot as usize]
                {
                    if stored == &path {
                        if let Slot::Occupied { refs, .. } = &mut self.slots[slot as usize] {
                            *refs += 1;
                        }
                        self.hits += 1;
                        return PathRef(slot);
                    }
                }
            }
        }
        let slot = match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize] = Slot::Occupied { path, refs: 1 };
                idx
            }
            None => {
                let idx = self.slots.len() as u32;
                self.slots.push(Slot::Occupied { path, refs: 1 });
                idx
            }
        };
        self.by_hash.entry(h).or_default().push(slot);
        self.live += 1;
        PathRef(slot)
    }

    /// Resolves a handle.
    ///
    /// # Panics
    /// On a handle whose entry was fully released (a dangling `PathRef`) —
    /// that is a directory bookkeeping bug, not a user error.
    pub fn get(&self, r: PathRef) -> &PeerPath {
        match &self.slots[r.0 as usize] {
            Slot::Occupied { path, .. } => path,
            Slot::Vacant => panic!("dangling PathRef({})", r.0),
        }
    }

    /// Drops one reference to the entry; frees the slot when the last
    /// reference goes.
    pub fn release(&mut self, r: PathRef) {
        let free_now = match &mut self.slots[r.0 as usize] {
            Slot::Occupied { refs, .. } => {
                *refs -= 1;
                *refs == 0
            }
            Slot::Vacant => panic!("releasing dangling PathRef({})", r.0),
        };
        if free_now {
            let old = std::mem::replace(&mut self.slots[r.0 as usize], Slot::Vacant);
            let Slot::Occupied { path, .. } = old else {
                unreachable!("checked occupied above");
            };
            let h = content_hash(&path);
            if let Some(candidates) = self.by_hash.get_mut(&h) {
                candidates.retain(|&s| s != r.0);
                if candidates.is_empty() {
                    self.by_hash.remove(&h);
                }
            }
            self.free.push(r.0);
            self.live -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nearpeer_topology::RouterId;

    fn path(ids: &[u32]) -> PeerPath {
        PeerPath::new(ids.iter().map(|&i| RouterId(i)).collect()).unwrap()
    }

    #[test]
    fn interns_and_resolves() {
        let mut store = PathStore::new();
        let a = store.intern(path(&[1, 2, 3]));
        assert_eq!(store.get(a).routers().len(), 3);
        assert_eq!(store.distinct(), 1);
        assert_eq!(store.dedup_hits(), 0);
    }

    #[test]
    fn identical_paths_share_a_slot() {
        let mut store = PathStore::new();
        let a = store.intern(path(&[1, 2, 3]));
        let b = store.intern(path(&[1, 2, 3]));
        let c = store.intern(path(&[4, 2, 3]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(store.distinct(), 2);
        assert_eq!(store.dedup_hits(), 1);
    }

    #[test]
    fn release_refcounts_and_reuses_slots() {
        let mut store = PathStore::new();
        let a = store.intern(path(&[1, 2, 3]));
        let b = store.intern(path(&[1, 2, 3]));
        store.release(a);
        // One reference remains: still resolvable.
        assert_eq!(store.get(b).attach(), RouterId(1));
        store.release(b);
        assert!(store.is_empty());
        // The freed slot is recycled for the next intern.
        let c = store.intern(path(&[9, 8]));
        assert_eq!(c.slot(), a.slot());
        assert_eq!(store.distinct(), 1);
    }

    #[test]
    #[should_panic(expected = "dangling PathRef")]
    fn dangling_ref_panics() {
        let mut store = PathStore::new();
        let a = store.intern(path(&[1, 2]));
        store.release(a);
        let _ = store.get(a);
    }
}
