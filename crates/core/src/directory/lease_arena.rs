//! Slab-backed soft-state lease table for million-peer churn.
//!
//! Before this refactor each [`crate::DirectoryShard`] tracked its peers in
//! three per-peer `HashMap`s (path handle, last-seen epoch, membership).
//! At churn scale that layout loses twice: every lease costs three hashed
//! lookups and three separately-allocated table entries, and `expire_stale`
//! had to walk the *entire* last-seen map to find the handful of leases
//! that actually lapsed.
//!
//! The arena replaces all three maps with:
//!
//! * a **slab** of leases stored contiguously (`Vec`), addressed by dense
//!   slot index, with a free list so register/leave cycles reuse slots;
//! * a **generation counter** per slot — a [`PeerSlot`] handle captured
//!   before a departure can never resurrect the peer that now occupies the
//!   reused slot (the generation no longer matches);
//! * a single **open-addressed** peer-id → slot table (linear probing,
//!   backward-shift deletion, fibonacci hashing) — one flat `Vec<u32>`
//!   instead of three `HashMap`s, with keys read back through the slab so
//!   the table itself stores nothing but slot indices;
//! * **epoch buckets**: every lease open/renewal appends `(slot,
//!   generation)` to the bucket of its epoch, so an expiry sweep
//!   ([`LeaseArena::take_expired`]) pops whole buckets below the cutoff and
//!   touches only noted entries — work proportional to the lease activity
//!   being retired, never a scan of the full table.
//!
//! Two extensions ride on the same slot/bucket machinery for the
//! federation subsystem ([`crate::federation`]):
//!
//! * **forwarding tombstones** — a slot can hold a *moved* marker instead
//!   of a live lease ([`LeaseArena::insert_tombstone`]): the peer handed
//!   its registration over to another region, and the tombstone records
//!   the destination so federation-aware expiry can distinguish "peer
//!   silent" from "peer moved". Tombstones occupy table entries (so
//!   lookups find them) but never count as live leases, and the ordinary
//!   epoch-bucket sweep retires them like any lapsed lease;
//! * **per-lease TTLs** — a slot may carry its own lease length
//!   ([`LeaseArena::set_ttl`], derived by the shard's adaptive-lease EWMA),
//!   and the generalized sweep [`LeaseArena::take_due`] expires each lease
//!   at `last_seen + ttl` instead of one global cutoff. Not-yet-due leases
//!   found in a popped bucket are re-noted at `due - min_ttl`, so each
//!   lease still costs O(1) notes per open/renewal.
//!
//! The arena is generic over its payload `T` (the shard stores a
//! [`super::PathRef`]); `crates/core/tests/lease_arena_properties.rs` pins
//! it op-for-op to a naive `HashMap` reference model.

use super::persist::wire::{put_u32, put_u64, put_u8, Reader};
use super::persist::PersistError;
use crate::ids::PeerId;
use std::collections::VecDeque;

/// A generational handle to a lease slot. Only meaningful for the arena
/// that produced it; resolving a handle whose slot was freed (and possibly
/// reused) yields `None`, never another peer's lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PeerSlot {
    index: u32,
    generation: u32,
}

impl PeerSlot {
    /// The raw slab index (diagnostics only).
    pub fn index(self) -> u32 {
        self.index
    }

    /// The slot generation this handle was issued under.
    pub fn generation(self) -> u32 {
        self.generation
    }
}

/// What a slot holds: a live lease, or a forwarding tombstone left behind
/// by a cross-region handover (the `u32` is the destination region).
#[derive(Debug)]
enum Occupant<T> {
    Live(PeerId, T),
    Moved(PeerId, u32),
}

impl<T> Occupant<T> {
    fn peer(&self) -> PeerId {
        match self {
            Occupant::Live(p, _) | Occupant::Moved(p, _) => *p,
        }
    }
}

/// Sentinel TTL: "use the sweep's default lease length".
const TTL_DEFAULT: u32 = u32::MAX;

/// One slab entry. `occupant` is `None` while the slot sits on the free
/// list; the generation survives vacancy (it is bumped on removal, so
/// handles issued before the removal go stale). `opened` is the epoch the
/// current occupancy began (session-length bookkeeping for adaptive
/// leases); `ttl` is the per-lease length, [`TTL_DEFAULT`] = whatever the
/// sweep passes.
#[derive(Debug)]
struct Slot<T> {
    generation: u32,
    last_seen: u64,
    opened: u64,
    ttl: u32,
    /// The newest bucket epoch holding a note for this occupancy. A sweep
    /// examining an **older** note skips re-noting (the newer note already
    /// keeps the lease findable) — without this, renewals would leave
    /// chains of stale notes that each sweep re-examines and re-notes,
    /// breaking the linear-in-activity cost bound.
    noted: u64,
    occupant: Option<Occupant<T>>,
}

/// Cumulative sweep-cost counters, exposed so tests (and the churn soak)
/// can assert that expiry is linear in the noted lease activity rather
/// than in the table size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Bucket entries examined across all [`LeaseArena::take_expired`]
    /// calls (each entry is one noted open/renewal).
    pub entries_swept: u64,
    /// Epoch buckets retired across all sweeps.
    pub buckets_swept: u64,
}

/// One lease closed by a [`LeaseArena::take_due`] sweep, with the session
/// bookkeeping adaptive leases feed their EWMA from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpiredLease<T> {
    /// The peer whose lease lapsed.
    pub peer: PeerId,
    /// The lease payload.
    pub value: T,
    /// Epoch the lease was opened.
    pub opened: u64,
    /// Epoch of the last open/renewal.
    pub last_seen: u64,
}

/// Everything one [`LeaseArena::take_due`] sweep retired.
#[derive(Debug)]
pub struct SweepOutcome<T> {
    /// Live leases past their deadline, ascending by peer id.
    pub expired: Vec<ExpiredLease<T>>,
    /// Forwarding tombstones whose retention lapsed, ascending by peer id
    /// (`(peer, destination_region)` — the peer *moved*, it did not fail).
    pub moved: Vec<(PeerId, u32)>,
}

impl<T> Default for SweepOutcome<T> {
    fn default() -> Self {
        Self {
            expired: Vec::new(),
            moved: Vec::new(),
        }
    }
}

const EMPTY: u32 = u32::MAX;

/// The slab-backed lease table: peer membership, payload and last-seen
/// epoch in one contiguous arena, with epoch-bucketed expiry.
///
/// Epochs are expected to be non-decreasing across calls (the directory's
/// heartbeat epoch is monotonic); the arena stays correct if they are not —
/// bucket indices are clamped and staleness is always re-checked against
/// the lease's actual `last_seen` — but sweep cost guarantees assume
/// monotonic use.
#[derive(Debug)]
pub struct LeaseArena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    /// Open-addressed peer-id → slot index table (capacity a power of two;
    /// keys are read through the slab, the table stores indices only).
    table: Vec<u32>,
    /// `64 - log2(table.len())`: fibonacci-hash shift.
    shift: u32,
    /// Live leases (tombstones counted separately).
    len: usize,
    /// Forwarding tombstones currently held.
    tombstones: usize,
    /// `buckets[i]` holds `(slot, generation)` entries noted at epoch
    /// `base_epoch + i`.
    buckets: VecDeque<Vec<(u32, u32)>>,
    base_epoch: u64,
    sweep: SweepStats,
}

impl<T> Default for LeaseArena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> LeaseArena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an arena pre-sized for `capacity` leases.
    pub fn with_capacity(capacity: usize) -> Self {
        let table_cap = (capacity * 4 / 3 + 1).next_power_of_two().max(8);
        Self {
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            table: vec![EMPTY; table_cap],
            shift: 64 - table_cap.trailing_zeros(),
            len: 0,
            tombstones: 0,
            buckets: VecDeque::new(),
            base_epoch: 0,
            sweep: SweepStats::default(),
        }
    }

    /// Live leases (forwarding tombstones are not counted).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no lease is open (tombstones may still be held).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Forwarding tombstones currently held (not yet swept).
    pub fn tombstone_count(&self) -> usize {
        self.tombstones
    }

    /// Cumulative expiry-sweep cost counters.
    pub fn sweep_stats(&self) -> SweepStats {
        self.sweep
    }

    /// Slab slots allocated (live + free); diagnostics.
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }

    fn home(&self, peer: PeerId) -> usize {
        // Fibonacci hashing: multiply by 2^64/φ and keep the high bits.
        (peer.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) as usize
    }

    /// Table position holding `peer`'s slot index (live *or* tombstone),
    /// if present.
    fn probe(&self, peer: PeerId) -> Option<usize> {
        let mask = self.table.len() - 1;
        let mut i = self.home(peer);
        loop {
            let idx = self.table[i];
            if idx == EMPTY {
                return None;
            }
            if let Some(occ) = &self.slots[idx as usize].occupant {
                if occ.peer() == peer {
                    return Some(i);
                }
            }
            i = (i + 1) & mask;
        }
    }

    fn grow_table(&mut self) {
        let new_cap = self.table.len() * 2;
        let old = std::mem::replace(&mut self.table, vec![EMPTY; new_cap]);
        self.shift = 64 - new_cap.trailing_zeros();
        let mask = new_cap - 1;
        for idx in old {
            if idx == EMPTY {
                continue;
            }
            let peer = self.slots[idx as usize]
                .occupant
                .as_ref()
                .expect("table entries reference occupied slots")
                .peer();
            let mut i = self.home(peer);
            while self.table[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.table[i] = idx;
        }
    }

    fn table_insert(&mut self, peer: PeerId, slot: u32) {
        if (self.len + self.tombstones + 1) * 4 >= self.table.len() * 3 {
            self.grow_table();
        }
        let mask = self.table.len() - 1;
        let mut i = self.home(peer);
        while self.table[i] != EMPTY {
            i = (i + 1) & mask;
        }
        self.table[i] = slot;
    }

    /// Removes `peer`'s table entry by backward-shift deletion (no
    /// tombstone markers in the *table*, so probe chains never rot under
    /// churn). Must be called while the slab still holds the peer (keys
    /// are read through it).
    fn table_remove(&mut self, pos: usize) {
        let mask = self.table.len() - 1;
        let mut hole = pos;
        let mut j = pos;
        loop {
            j = (j + 1) & mask;
            let idx = self.table[j];
            if idx == EMPTY {
                break;
            }
            let peer = self.slots[idx as usize]
                .occupant
                .as_ref()
                .expect("table entries reference occupied slots")
                .peer();
            let home = self.home(peer);
            // `j`'s entry may fill the hole iff its home position does not
            // lie cyclically in (hole, j] — otherwise moving it would break
            // its own probe chain.
            let between = if hole <= j {
                hole < home && home <= j
            } else {
                home > hole || home <= j
            };
            if !between {
                self.table[hole] = idx;
                hole = j;
            }
        }
        self.table[hole] = EMPTY;
    }

    /// Appends a `(slot, generation)` note to `epoch`'s bucket. Epochs
    /// below the swept base are clamped into the oldest live bucket — the
    /// sweep re-checks actual staleness, so the clamp only affects *when*
    /// the note is examined, never the verdict.
    fn note(&mut self, slot: u32, generation: u32, epoch: u64) {
        let idx = epoch.saturating_sub(self.base_epoch) as usize;
        while self.buckets.len() <= idx {
            self.buckets.push_back(Vec::new());
        }
        self.buckets[idx].push((slot, generation));
        let clamped = self.base_epoch + idx as u64;
        let s = &mut self.slots[slot as usize];
        s.noted = s.noted.max(clamped);
    }

    /// Takes a slot off the free list (or grows the slab) and fills it.
    fn alloc_slot(&mut self, occupant: Occupant<T>, epoch: u64) -> u32 {
        match self.free.pop() {
            Some(idx) => {
                let s = &mut self.slots[idx as usize];
                s.last_seen = epoch;
                s.opened = epoch;
                s.ttl = TTL_DEFAULT;
                s.noted = 0;
                s.occupant = Some(occupant);
                idx
            }
            None => {
                let idx = self.slots.len() as u32;
                self.slots.push(Slot {
                    generation: 0,
                    last_seen: epoch,
                    opened: epoch,
                    ttl: TTL_DEFAULT,
                    noted: 0,
                    occupant: Some(occupant),
                });
                idx
            }
        }
    }

    /// Frees `pos`/`slot` after its occupant was taken: bumps the
    /// generation and recycles the slot.
    fn release_slot(&mut self, pos: usize, slot: u32) {
        self.table_remove(pos);
        let s = &mut self.slots[slot as usize];
        debug_assert!(s.occupant.is_none());
        s.generation = s.generation.wrapping_add(1);
        self.free.push(slot);
    }

    /// Opens a lease for `peer` at `epoch`. Returns the generational
    /// handle, or `None` if the peer already holds a live lease (use
    /// [`Self::renew`] for that). A forwarding tombstone left for the same
    /// peer is cleared first — the peer came back, the move record is
    /// obsolete.
    pub fn insert(&mut self, peer: PeerId, value: T, epoch: u64) -> Option<PeerSlot> {
        if let Some(pos) = self.probe(peer) {
            let idx = self.table[pos];
            match self.slots[idx as usize].occupant {
                Some(Occupant::Live(..)) => return None,
                Some(Occupant::Moved(..)) => {
                    self.slots[idx as usize].occupant = None;
                    self.release_slot(pos, idx);
                    self.tombstones -= 1;
                }
                None => unreachable!("probed slots are occupied"),
            }
        }
        let slot = self.alloc_slot(Occupant::Live(peer, value), epoch);
        self.table_insert(peer, slot);
        self.len += 1;
        let generation = self.slots[slot as usize].generation;
        self.note(slot, generation, epoch);
        Some(PeerSlot {
            index: slot,
            generation,
        })
    }

    /// Leaves a forwarding tombstone for `peer`: the peer's registration
    /// moved to region `to` at `epoch`. Returns `false` (and does nothing)
    /// if the peer still holds a live lease or an earlier tombstone —
    /// close the lease first ([`Self::remove`]). The tombstone is noted in
    /// `epoch`'s bucket and retired by the ordinary sweeps once its
    /// retention lapses.
    pub fn insert_tombstone(&mut self, peer: PeerId, to: u32, epoch: u64) -> bool {
        if self.probe(peer).is_some() {
            return false;
        }
        let slot = self.alloc_slot(Occupant::Moved(peer, to), epoch);
        self.table_insert(peer, slot);
        self.tombstones += 1;
        let generation = self.slots[slot as usize].generation;
        self.note(slot, generation, epoch);
        true
    }

    /// The destination region recorded by `peer`'s forwarding tombstone,
    /// if one is held.
    pub fn forwarded_to(&self, peer: PeerId) -> Option<u32> {
        let pos = self.probe(peer)?;
        match self.slots[self.table[pos] as usize].occupant {
            Some(Occupant::Moved(_, to)) => Some(to),
            _ => None,
        }
    }

    /// Clears `peer`'s forwarding tombstone ahead of its sweep, returning
    /// the recorded destination.
    pub fn clear_tombstone(&mut self, peer: PeerId) -> Option<u32> {
        let pos = self.probe(peer)?;
        let idx = self.table[pos];
        match self.slots[idx as usize].occupant {
            Some(Occupant::Moved(_, to)) => {
                self.slots[idx as usize].occupant = None;
                self.release_slot(pos, idx);
                self.tombstones -= 1;
                Some(to)
            }
            _ => None,
        }
    }

    /// Table position of `peer`'s **live** lease.
    fn probe_live(&self, peer: PeerId) -> Option<usize> {
        let pos = self.probe(peer)?;
        match self.slots[self.table[pos] as usize].occupant {
            Some(Occupant::Live(..)) => Some(pos),
            _ => None,
        }
    }

    /// Whether `peer` holds a live lease (tombstones don't count).
    pub fn contains(&self, peer: PeerId) -> bool {
        self.probe_live(peer).is_some()
    }

    /// The payload of `peer`'s lease.
    pub fn get(&self, peer: PeerId) -> Option<&T> {
        let pos = self.probe_live(peer)?;
        let slot = self.table[pos] as usize;
        match &self.slots[slot].occupant {
            Some(Occupant::Live(_, v)) => Some(v),
            _ => None,
        }
    }

    /// The current handle for `peer`'s lease.
    pub fn slot_of(&self, peer: PeerId) -> Option<PeerSlot> {
        let pos = self.probe_live(peer)?;
        let index = self.table[pos];
        Some(PeerSlot {
            index,
            generation: self.slots[index as usize].generation,
        })
    }

    /// Resolves a generational handle. Returns `None` once the lease it
    /// was issued for has been removed — even if the slot has since been
    /// reused by another peer (the generation check; a departed peer can
    /// never be resurrected through a stale handle).
    pub fn get_slot(&self, handle: PeerSlot) -> Option<(PeerId, &T)> {
        let slot = self.slots.get(handle.index as usize)?;
        if slot.generation != handle.generation {
            return None;
        }
        match &slot.occupant {
            Some(Occupant::Live(p, v)) => Some((*p, v)),
            _ => None,
        }
    }

    /// The epoch `peer` last opened or renewed its lease.
    pub fn last_seen(&self, peer: PeerId) -> Option<u64> {
        let pos = self.probe_live(peer)?;
        Some(self.slots[self.table[pos] as usize].last_seen)
    }

    /// The epoch `peer`'s current lease was opened (session bookkeeping).
    pub fn opened(&self, peer: PeerId) -> Option<u64> {
        let pos = self.probe_live(peer)?;
        Some(self.slots[self.table[pos] as usize].opened)
    }

    /// `peer`'s own lease length, if one was set ([`Self::set_ttl`]).
    pub fn ttl_of(&self, peer: PeerId) -> Option<u32> {
        let pos = self.probe_live(peer)?;
        let ttl = self.slots[self.table[pos] as usize].ttl;
        (ttl != TTL_DEFAULT).then_some(ttl)
    }

    /// Sets `peer`'s per-lease length (epochs of silence before
    /// [`Self::take_due`] expires it). `false` if the peer holds no live
    /// lease. Leases without a set TTL use the sweep's default.
    pub fn set_ttl(&mut self, peer: PeerId, ttl: u32) -> bool {
        let Some(pos) = self.probe_live(peer) else {
            return false;
        };
        let idx = self.table[pos] as usize;
        self.slots[idx].ttl = ttl;
        true
    }

    /// Renews `peer`'s lease at `epoch`; `false` if the peer holds none.
    /// A renewal in the epoch the lease was last seen is a no-op (no
    /// duplicate bucket note — the same-epoch guard of the expiry
    /// off-by-one family).
    pub fn renew(&mut self, peer: PeerId, epoch: u64) -> bool {
        let Some(pos) = self.probe_live(peer) else {
            return false;
        };
        let idx = self.table[pos];
        let slot = &mut self.slots[idx as usize];
        if slot.last_seen == epoch {
            return true;
        }
        slot.last_seen = epoch;
        let generation = slot.generation;
        self.note(idx, generation, epoch);
        true
    }

    /// [`Self::renew`] plus a TTL update in one probe — the adaptive-lease
    /// path ("derive the lease length at renewal time").
    pub fn renew_with_ttl(&mut self, peer: PeerId, epoch: u64, ttl: u32) -> bool {
        let Some(pos) = self.probe_live(peer) else {
            return false;
        };
        let idx = self.table[pos];
        let slot = &mut self.slots[idx as usize];
        slot.ttl = ttl;
        if slot.last_seen == epoch {
            return true;
        }
        slot.last_seen = epoch;
        let generation = slot.generation;
        self.note(idx, generation, epoch);
        true
    }

    /// Closes `peer`'s lease, returning the payload. The slot's generation
    /// is bumped, so handles issued before this call go stale.
    pub fn remove(&mut self, peer: PeerId) -> Option<T> {
        self.remove_full(peer).map(|(v, _, _)| v)
    }

    /// Like [`Self::remove`], but also reports `(opened, last_seen)` — the
    /// observed session span adaptive leases feed their EWMA from.
    pub fn remove_full(&mut self, peer: PeerId) -> Option<(T, u64, u64)> {
        let pos = self.probe_live(peer)?;
        let idx = self.table[pos] as usize;
        let slot = &mut self.slots[idx];
        let (opened, last_seen) = (slot.opened, slot.last_seen);
        let Some(Occupant::Live(_, value)) = slot.occupant.take() else {
            unreachable!("probe_live found a live occupant");
        };
        self.release_slot(pos, idx as u32);
        self.len -= 1;
        Some((value, opened, last_seen))
    }

    /// Iterator over live leases in slot order: `(peer, last_seen, &T)`.
    pub fn iter(&self) -> impl Iterator<Item = (PeerId, u64, &T)> + '_ {
        self.slots.iter().filter_map(|s| match &s.occupant {
            Some(Occupant::Live(p, v)) => Some((*p, s.last_seen, v)),
            _ => None,
        })
    }

    /// Peers whose lease was last seen strictly before `cutoff` —
    /// **read-only diagnostic**, O(slots). The expiring path is
    /// [`Self::take_expired`], which is linear in the noted activity
    /// instead.
    pub fn stale(&self, cutoff: u64) -> Vec<PeerId> {
        self.iter()
            .filter(|&(_, seen, _)| seen < cutoff)
            .map(|(p, _, _)| p)
            .collect()
    }

    /// Closes every lease last seen strictly before `cutoff` and returns
    /// them sorted by peer id — the uniform-lease sweep every
    /// non-federated, non-adaptive path uses. Equivalent to
    /// [`Self::take_due`] with every lease on the same length; forwarding
    /// tombstones older than the cutoff are retired too (silently — use
    /// `take_due` to observe them).
    pub fn take_expired(&mut self, cutoff: u64) -> Vec<(PeerId, T)> {
        // `take_due(now, default_ttl, min_ttl) = (cutoff + 1, 1, 1)` pops
        // buckets `< cutoff` and expires `last_seen + 1 < cutoff + 1`,
        // i.e. exactly `last_seen < cutoff`, re-noting survivors at
        // `last_seen` — bit-identical to the historical uniform sweep.
        self.take_due(cutoff.saturating_add(1), 1, 1)
            .expired
            .into_iter()
            .map(|e| (e.peer, e.value))
            .collect()
    }

    /// The generalized epoch-bucket sweep: closes every live lease whose
    /// own deadline lapsed (`last_seen + ttl < now`, where `ttl` is the
    /// per-lease length or `default_ttl` if none was set) and retires
    /// forwarding tombstones the same way (retention = `default_ttl`).
    ///
    /// `min_ttl` must be a lower bound on every TTL in use (callers clamp
    /// adaptive TTLs to a configured floor): buckets up to
    /// `now - min_ttl` are popped, each entry re-checked against its
    /// lease's actual deadline, and not-yet-due leases re-noted at
    /// `due - min_ttl` so they are re-examined exactly when they lapse —
    /// at most one extra note per lease per sweep generation, keeping the
    /// sweep linear in noted activity. A TTL *below* `min_ttl` is never
    /// expired early — its bucket just pops later, delaying (never
    /// corrupting) the expiry.
    pub fn take_due(&mut self, now: u64, default_ttl: u64, min_ttl: u64) -> SweepOutcome<T> {
        let min_ttl = min_ttl.max(1);
        let pop_cutoff = now.saturating_sub(min_ttl);
        let mut out = SweepOutcome::default();
        let mut renote: Vec<(u32, u32, u64)> = Vec::new();
        while self.base_epoch < pop_cutoff {
            let Some(bucket) = self.buckets.pop_front() else {
                // Nothing was ever noted this far back; skip ahead.
                self.base_epoch = pop_cutoff;
                break;
            };
            let bucket_epoch = self.base_epoch;
            self.base_epoch += 1;
            self.sweep.buckets_swept += 1;
            for (idx, generation) in bucket {
                self.sweep.entries_swept += 1;
                let slot = &mut self.slots[idx as usize];
                if slot.generation != generation || slot.occupant.is_none() {
                    continue; // freed (and possibly reused) since noted
                }
                let ttl = match slot.occupant {
                    Some(Occupant::Live(..)) if slot.ttl != TTL_DEFAULT => slot.ttl as u64,
                    // Tombstone retention matches the default lease length.
                    _ => default_ttl,
                };
                let due = slot.last_seen.saturating_add(ttl);
                if due >= now {
                    // Not yet due. If a newer note for this occupancy
                    // exists (a renewal, or an earlier sweep's re-note),
                    // it keeps the lease findable — re-noting here too
                    // would build chains of stale notes that every sweep
                    // re-examines. Only the newest note re-notes forward.
                    if slot.noted <= bucket_epoch {
                        renote.push((idx, generation, due - min_ttl));
                    }
                    continue;
                }
                let (opened, last_seen) = (slot.opened, slot.last_seen);
                match slot.occupant.take().expect("checked occupied") {
                    Occupant::Live(peer, value) => {
                        let pos = self
                            .probe_vacated(peer, idx)
                            .expect("expired lease was in the table");
                        self.release_slot(pos, idx);
                        self.len -= 1;
                        out.expired.push(ExpiredLease {
                            peer,
                            value,
                            opened,
                            last_seen,
                        });
                    }
                    Occupant::Moved(peer, to) => {
                        let pos = self
                            .probe_vacated(peer, idx)
                            .expect("swept tombstone was in the table");
                        self.release_slot(pos, idx);
                        self.tombstones -= 1;
                        out.moved.push((peer, to));
                    }
                }
            }
        }
        for (idx, generation, epoch) in renote {
            // The slot may have been freed by a *later* entry in the same
            // sweep only via remove(), which bumps the generation — note()
            // is still safe because readers re-check both.
            self.note(idx, generation, epoch);
        }
        out.expired.sort_unstable_by_key(|e| e.peer);
        out.moved.sort_unstable_by_key(|&(p, _)| p);
        out
    }

    /// Like [`Self::probe`], but for a peer whose slab occupant was just
    /// taken (the table entry still points at `slot`).
    fn probe_vacated(&self, peer: PeerId, slot: u32) -> Option<usize> {
        let mask = self.table.len() - 1;
        let mut i = self.home(peer);
        loop {
            let idx = self.table[i];
            if idx == EMPTY {
                return None;
            }
            if idx == slot {
                return Some(i);
            }
            i = (i + 1) & mask;
        }
    }

    /// Streams the arena into `out`: the slab verbatim (generations, lease
    /// clocks, per-lease TTLs, note high-water marks, occupants — payloads
    /// written by `enc_t`), the free list in reuse order, the table
    /// *capacity* (its layout is derivable), the epoch buckets verbatim
    /// (stale notes included — they are part of future sweep cost), and
    /// the sweep counters.
    pub(crate) fn persist_encode(
        &self,
        out: &mut Vec<u8>,
        mut enc_t: impl FnMut(&T, &mut Vec<u8>),
    ) {
        put_u64(out, self.slots.len() as u64);
        for s in &self.slots {
            put_u32(out, s.generation);
            put_u64(out, s.last_seen);
            put_u64(out, s.opened);
            put_u32(out, s.ttl);
            put_u64(out, s.noted);
            match &s.occupant {
                None => put_u8(out, 0),
                Some(Occupant::Live(peer, value)) => {
                    put_u8(out, 1);
                    put_u64(out, peer.0);
                    enc_t(value, out);
                }
                Some(Occupant::Moved(peer, to)) => {
                    put_u8(out, 2);
                    put_u64(out, peer.0);
                    put_u32(out, *to);
                }
            }
        }
        put_u64(out, self.free.len() as u64);
        for &f in &self.free {
            put_u32(out, f);
        }
        put_u64(out, self.table.len() as u64);
        put_u64(out, self.base_epoch);
        put_u64(out, self.buckets.len() as u64);
        for bucket in &self.buckets {
            put_u64(out, bucket.len() as u64);
            for &(slot, generation) in bucket {
                put_u32(out, slot);
                put_u32(out, generation);
            }
        }
        put_u64(out, self.sweep.entries_swept);
        put_u64(out, self.sweep.buckets_swept);
    }

    /// Rebuilds an arena written by [`Self::persist_encode`], re-deriving
    /// the probe table from the slab. Fails closed on any structural
    /// violation: duplicate occupant peers, a free list that does not
    /// cover exactly the vacant slots, a table capacity that is not a
    /// power of two or cannot hold the occupants, or bucket notes pointing
    /// outside the slab.
    pub(crate) fn persist_decode(
        r: &mut Reader<'_>,
        mut dec_t: impl FnMut(&mut Reader<'_>) -> Result<T, PersistError>,
    ) -> Result<Self, PersistError> {
        let n_slots = r.len_prefix(29)?;
        let mut slots: Vec<Slot<T>> = Vec::with_capacity(n_slots);
        let mut len = 0usize;
        let mut tombstones = 0usize;
        let mut peers_seen = std::collections::HashSet::with_capacity(n_slots);
        for i in 0..n_slots {
            let generation = r.u32()?;
            let last_seen = r.u64()?;
            let opened = r.u64()?;
            let ttl = r.u32()?;
            let noted = r.u64()?;
            let occupant = match r.u8()? {
                0 => None,
                1 => {
                    let peer = PeerId(r.u64()?);
                    if !peers_seen.insert(peer) {
                        return Err(PersistError::Corrupt(format!(
                            "lease slab holds {peer} twice"
                        )));
                    }
                    len += 1;
                    Some(Occupant::Live(peer, dec_t(r)?))
                }
                2 => {
                    let peer = PeerId(r.u64()?);
                    if !peers_seen.insert(peer) {
                        return Err(PersistError::Corrupt(format!(
                            "lease slab holds {peer} twice"
                        )));
                    }
                    tombstones += 1;
                    Some(Occupant::Moved(peer, r.u32()?))
                }
                t => {
                    return Err(PersistError::Corrupt(format!(
                        "lease slot {i} has unknown occupant tag {t}"
                    )))
                }
            };
            slots.push(Slot {
                generation,
                last_seen,
                opened,
                ttl,
                noted,
                occupant,
            });
        }
        let n_free = r.len_prefix(4)?;
        if n_free != n_slots - len - tombstones {
            return Err(PersistError::Corrupt(format!(
                "lease free list holds {n_free} entries for {} vacant slots",
                n_slots - len - tombstones
            )));
        }
        let mut free = Vec::with_capacity(n_free);
        let mut on_free = vec![false; n_slots];
        for _ in 0..n_free {
            let f = r.u32()?;
            let idx = f as usize;
            if idx >= n_slots || slots[idx].occupant.is_some() || on_free[idx] {
                return Err(PersistError::Corrupt(format!(
                    "lease free-list entry {f} is out of bounds, occupied, or duplicated"
                )));
            }
            on_free[idx] = true;
            free.push(f);
        }
        let table_cap = r.u64()? as usize;
        if !table_cap.is_power_of_two() || table_cap < 8 || len + tombstones >= table_cap {
            return Err(PersistError::Corrupt(format!(
                "lease table capacity {table_cap} cannot hold {} occupants",
                len + tombstones
            )));
        }
        let base_epoch = r.u64()?;
        let n_buckets = r.len_prefix(8)?;
        let mut buckets = VecDeque::with_capacity(n_buckets);
        for _ in 0..n_buckets {
            let n_entries = r.len_prefix(8)?;
            let mut bucket = Vec::with_capacity(n_entries);
            for _ in 0..n_entries {
                let slot = r.u32()?;
                let generation = r.u32()?;
                if slot as usize >= n_slots {
                    return Err(PersistError::Corrupt(format!(
                        "bucket note references slot {slot} beyond the slab"
                    )));
                }
                bucket.push((slot, generation));
            }
            buckets.push_back(bucket);
        }
        let sweep = SweepStats {
            entries_swept: r.u64()?,
            buckets_swept: r.u64()?,
        };
        // Re-derive the probe table: insert every occupant at its home (or
        // next free) position. Layout may differ from the pre-crash table
        // (that depended on insertion/deletion history), but every probe
        // answers identically and the growth trigger sees the same
        // occupancy/capacity ratio.
        let shift = 64 - table_cap.trailing_zeros();
        let mask = table_cap - 1;
        let mut table = vec![EMPTY; table_cap];
        for (i, s) in slots.iter().enumerate() {
            if let Some(occ) = &s.occupant {
                let mut pos = (occ.peer().0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> shift) as usize;
                while table[pos] != EMPTY {
                    pos = (pos + 1) & mask;
                }
                table[pos] = i as u32;
            }
        }
        Ok(LeaseArena {
            slots,
            free,
            table,
            shift,
            len,
            tombstones,
            buckets,
            base_epoch,
            sweep,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena() -> LeaseArena<u32> {
        LeaseArena::new()
    }

    fn persist_roundtrip(a: &LeaseArena<u32>) -> LeaseArena<u32> {
        let mut bytes = Vec::new();
        a.persist_encode(&mut bytes, |v, out| {
            super::put_u32(out, *v);
        });
        let mut reader = super::Reader::new(&bytes);
        let restored = LeaseArena::persist_decode(&mut reader, |r| r.u32()).unwrap();
        assert_eq!(reader.remaining(), 0, "decoder must consume everything");
        restored
    }

    #[test]
    fn persist_restores_leases_tombstones_buckets_and_future_sweeps() {
        let mut a = arena();
        for p in 0..200u64 {
            a.insert(PeerId(p), p as u32, p % 7).unwrap();
        }
        for p in (0..200u64).step_by(3) {
            a.renew(PeerId(p), 8);
        }
        for p in (0..200u64).step_by(5) {
            a.remove(PeerId(p));
        }
        a.set_ttl(PeerId(1), 3);
        a.remove(PeerId(13));
        a.insert_tombstone(PeerId(13), 4, 9);
        let _ = a.take_due(6, 4, 1);

        let mut b = persist_roundtrip(&a);
        assert_eq!(b.len(), a.len());
        assert_eq!(b.tombstone_count(), a.tombstone_count());
        assert_eq!(b.sweep_stats(), a.sweep_stats());
        assert_eq!(b.slot_capacity(), a.slot_capacity());
        for p in 0..200u64 {
            let peer = PeerId(p);
            assert_eq!(b.contains(peer), a.contains(peer), "contains {p}");
            assert_eq!(b.get(peer), a.get(peer), "payload {p}");
            assert_eq!(b.last_seen(peer), a.last_seen(peer), "last_seen {p}");
            assert_eq!(b.opened(peer), a.opened(peer), "opened {p}");
            assert_eq!(b.ttl_of(peer), a.ttl_of(peer), "ttl {p}");
            assert_eq!(b.slot_of(peer), a.slot_of(peer), "slot {p}");
            assert_eq!(b.forwarded_to(peer), a.forwarded_to(peer), "moved {p}");
        }
        // Future behaviour must match exactly: run identical sweeps and
        // churn on both arenas and compare every outcome.
        for now in 10..30u64 {
            let sa = a.take_due(now, 4, 1);
            let sb = b.take_due(now, 4, 1);
            assert_eq!(sb.expired, sa.expired, "sweep at {now}");
            assert_eq!(sb.moved, sa.moved, "moved at {now}");
            assert_eq!(
                b.insert(PeerId(1000 + now), now as u32, now),
                a.insert(PeerId(1000 + now), now as u32, now)
            );
        }
        assert_eq!(b.len(), a.len());
        assert_eq!(b.sweep_stats(), a.sweep_stats());
    }

    #[test]
    fn persist_decode_rejects_duplicate_peers_and_bad_table() {
        let mut a = arena();
        a.insert(PeerId(5), 50, 1).unwrap();
        let mut bytes = Vec::new();
        a.persist_encode(&mut bytes, |v, out| super::put_u32(out, *v));

        // In an empty arena the table capacity sits at a fixed offset:
        // n_slots(8) + free_len(8). Smash it to a non-power-of-two.
        let mut bad = Vec::new();
        arena().persist_encode(&mut bad, |v, out| super::put_u32(out, *v));
        bad[16..24].copy_from_slice(&7u64.to_le_bytes());
        let mut reader = super::Reader::new(&bad);
        assert!(matches!(
            LeaseArena::<u32>::persist_decode(&mut reader, |r| r.u32()),
            Err(super::PersistError::Corrupt(_))
        ));

        // Truncation anywhere fails closed with Truncated.
        let mut reader = super::Reader::new(&bytes[..bytes.len() - 3]);
        assert!(matches!(
            LeaseArena::<u32>::persist_decode(&mut reader, |r| r.u32()),
            Err(super::PersistError::Truncated)
        ));
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut a = arena();
        let h = a.insert(PeerId(7), 70, 1).unwrap();
        assert_eq!(a.len(), 1);
        assert!(a.contains(PeerId(7)));
        assert_eq!(a.get(PeerId(7)), Some(&70));
        assert_eq!(a.last_seen(PeerId(7)), Some(1));
        assert_eq!(a.opened(PeerId(7)), Some(1));
        assert_eq!(a.get_slot(h), Some((PeerId(7), &70)));
        assert_eq!(a.slot_of(PeerId(7)), Some(h));
        assert!(a.insert(PeerId(7), 71, 2).is_none(), "double insert");
        assert_eq!(a.remove(PeerId(7)), Some(70));
        assert!(a.is_empty());
        assert_eq!(a.remove(PeerId(7)), None);
        assert_eq!(a.get_slot(h), None, "handle went stale on removal");
    }

    #[test]
    fn slot_reuse_never_resurrects() {
        let mut a = arena();
        let h1 = a.insert(PeerId(1), 10, 0).unwrap();
        a.remove(PeerId(1));
        let h2 = a.insert(PeerId(2), 20, 0).unwrap();
        assert_eq!(h1.index(), h2.index(), "slot is recycled");
        assert_ne!(h1.generation(), h2.generation());
        assert_eq!(a.get_slot(h1), None, "stale handle must not see peer 2");
        assert_eq!(a.get_slot(h2), Some((PeerId(2), &20)));
    }

    #[test]
    fn renewal_moves_the_lease_between_buckets() {
        let mut a = arena();
        a.insert(PeerId(1), 1, 0).unwrap();
        a.insert(PeerId(2), 2, 0).unwrap();
        assert!(a.renew(PeerId(1), 3));
        assert!(!a.renew(PeerId(9), 3));
        let expired = a.take_expired(3);
        assert_eq!(expired, vec![(PeerId(2), 2)]);
        assert_eq!(a.last_seen(PeerId(1)), Some(3));
        // The renewed lease expires once its own epoch lapses.
        let expired = a.take_expired(4);
        assert_eq!(expired, vec![(PeerId(1), 1)]);
        assert!(a.is_empty());
    }

    #[test]
    fn same_epoch_renewal_is_a_noop() {
        let mut a = arena();
        a.insert(PeerId(1), 1, 5).unwrap();
        assert!(a.renew(PeerId(1), 5));
        assert!(a.renew(PeerId(1), 5));
        // Only the open noted an entry; sweeping past it sees exactly one.
        let expired = a.take_expired(6);
        assert_eq!(expired, vec![(PeerId(1), 1)]);
        assert_eq!(a.sweep_stats().entries_swept, 1);
    }

    #[test]
    fn cutoff_zero_expires_nothing() {
        let mut a = arena();
        a.insert(PeerId(1), 1, 0).unwrap();
        assert!(a.take_expired(0).is_empty());
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn renoted_leases_stay_findable_across_sweeps() {
        let mut a = arena();
        a.insert(PeerId(1), 1, 0).unwrap();
        a.renew(PeerId(1), 5);
        // Sweep to 3 pops the epoch-0 note; peer 1 is renewed past the
        // cutoff and must be re-noted, not forgotten.
        assert!(a.take_expired(3).is_empty());
        let expired = a.take_expired(6);
        assert_eq!(expired, vec![(PeerId(1), 1)]);
    }

    #[test]
    fn sweep_is_linear_in_noted_activity() {
        let mut a = arena();
        for p in 0..1_000u64 {
            a.insert(PeerId(p), p as u32, 0).unwrap();
        }
        // Renew one peer across many epochs; expire with a cutoff that
        // retires nobody but the sweep still only touches noted entries.
        for e in 1..=50 {
            a.renew(PeerId(0), e);
        }
        let before = a.sweep_stats();
        assert!(a.take_expired(0).is_empty());
        assert_eq!(a.sweep_stats(), before, "cutoff 0 sweeps nothing");
        let expired = a.take_expired(50);
        assert_eq!(expired.len(), 999);
        let stats = a.sweep_stats();
        // 1000 opens + 49 effective renewals (+1 re-note examined at most
        // once more) — far below len × epochs.
        assert!(
            stats.entries_swept <= 1_051,
            "sweep touched {} entries",
            stats.entries_swept
        );
    }

    #[test]
    fn stale_scan_matches_sweep() {
        let mut a = arena();
        for p in 0..20u64 {
            a.insert(PeerId(p), p as u32, p % 4).unwrap();
        }
        let mut scan = a.stale(2);
        scan.sort_unstable();
        let swept: Vec<PeerId> = a.take_expired(2).into_iter().map(|(p, _)| p).collect();
        assert_eq!(scan, swept);
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn table_survives_heavy_churn_and_growth() {
        let mut a = arena();
        // Interleave inserts and removals far past the initial capacity so
        // the table grows and backward-shift deletion runs over wrapped
        // probe chains.
        for round in 0u64..6 {
            for p in 0..500u64 {
                a.insert(PeerId(round * 10_000 + p), p as u32, round)
                    .unwrap();
            }
            for p in 0..500u64 {
                if p % 3 != 0 {
                    assert!(a.remove(PeerId(round * 10_000 + p)).is_some());
                }
            }
        }
        // Survivors: every p % 3 == 0 from every round.
        assert_eq!(a.len(), 6 * 167);
        for round in 0u64..6 {
            for p in 0..500u64 {
                let peer = PeerId(round * 10_000 + p);
                assert_eq!(a.contains(peer), p % 3 == 0, "{peer:?}");
            }
        }
    }

    #[test]
    fn colliding_keys_probe_correctly() {
        // Keys crafted to share a home bucket (same high bits after the
        // fibonacci multiply is hard to force; instead use a tiny table and
        // enough keys that chains necessarily overlap and wrap).
        let mut a: LeaseArena<u8> = LeaseArena::with_capacity(0);
        for p in 0..64u64 {
            a.insert(PeerId(p), p as u8, 0).unwrap();
        }
        for p in (0..64u64).step_by(2) {
            assert_eq!(a.remove(PeerId(p)), Some(p as u8));
        }
        for p in 0..64u64 {
            assert_eq!(a.get(PeerId(p)).copied(), (p % 2 == 1).then_some(p as u8));
        }
    }

    // --- Forwarding tombstones. ---

    #[test]
    fn tombstone_lifecycle() {
        let mut a = arena();
        a.insert(PeerId(1), 10, 0).unwrap();
        assert!(!a.insert_tombstone(PeerId(1), 2, 0), "live lease blocks");
        assert_eq!(a.remove(PeerId(1)), Some(10));
        assert!(a.insert_tombstone(PeerId(1), 2, 3));
        assert!(!a.insert_tombstone(PeerId(1), 4, 3), "one tombstone only");
        assert_eq!(a.tombstone_count(), 1);
        assert_eq!(a.len(), 0, "tombstones are not live leases");
        assert!(!a.contains(PeerId(1)));
        assert_eq!(a.get(PeerId(1)), None);
        assert!(!a.renew(PeerId(1), 4), "tombstones cannot renew");
        assert_eq!(a.forwarded_to(PeerId(1)), Some(2));
        assert_eq!(a.forwarded_to(PeerId(9)), None);
    }

    #[test]
    fn tombstone_cleared_when_peer_returns() {
        let mut a = arena();
        a.insert(PeerId(1), 10, 0).unwrap();
        a.remove(PeerId(1));
        assert!(a.insert_tombstone(PeerId(1), 3, 1));
        // The peer re-registers here: the stale move record must vanish.
        assert!(a.insert(PeerId(1), 11, 2).is_some());
        assert_eq!(a.forwarded_to(PeerId(1)), None);
        assert_eq!(a.tombstone_count(), 0);
        assert_eq!(a.get(PeerId(1)), Some(&11));
        assert_eq!(a.opened(PeerId(1)), Some(2));
    }

    #[test]
    fn sweeps_retire_tombstones_as_moved() {
        let mut a = arena();
        a.insert(PeerId(1), 10, 0).unwrap();
        a.insert(PeerId(2), 20, 0).unwrap();
        a.remove(PeerId(1));
        assert!(a.insert_tombstone(PeerId(1), 7, 0));
        // Uniform sweep with default retention 3, at epoch 5: both the
        // silent lease and the tombstone lapsed — but they come out in
        // different lists.
        let out = a.take_due(5, 3, 3);
        assert_eq!(out.moved, vec![(PeerId(1), 7)]);
        assert_eq!(out.expired.len(), 1);
        assert_eq!(out.expired[0].peer, PeerId(2));
        assert_eq!(out.expired[0].value, 20);
        assert_eq!(a.tombstone_count(), 0);
        assert!(a.is_empty());
        // take_expired retires tombstones too (silently).
        a.insert(PeerId(3), 30, 5).unwrap();
        a.remove(PeerId(3));
        a.insert_tombstone(PeerId(3), 1, 5);
        assert!(a.take_expired(9).is_empty());
        assert_eq!(a.tombstone_count(), 0);
    }

    // --- Per-lease TTLs (adaptive leases). ---

    #[test]
    fn custom_ttl_expires_earlier_than_default() {
        let mut a = arena();
        a.insert(PeerId(1), 10, 0).unwrap();
        a.insert(PeerId(2), 20, 0).unwrap();
        assert!(a.set_ttl(PeerId(1), 2), "short-lived peer gets 2 epochs");
        assert_eq!(a.ttl_of(PeerId(1)), Some(2));
        assert_eq!(a.ttl_of(PeerId(2)), None, "default lease");
        // At epoch 4 with default 8: peer 1 (due 0+2) lapsed, peer 2
        // (due 0+8) lives on.
        let out = a.take_due(4, 8, 2);
        assert_eq!(out.expired.len(), 1);
        assert_eq!(out.expired[0].peer, PeerId(1));
        assert!(a.contains(PeerId(2)));
        // Peer 2 expires once the default lapses; the renote at
        // `due - min_ttl` must keep it findable.
        let out = a.take_due(9, 8, 2);
        assert_eq!(out.expired.len(), 1);
        assert_eq!(out.expired[0].peer, PeerId(2));
        assert!(a.is_empty());
    }

    #[test]
    fn renew_with_ttl_updates_both_in_one_probe() {
        let mut a = arena();
        a.insert(PeerId(1), 10, 0).unwrap();
        assert!(a.renew_with_ttl(PeerId(1), 3, 5));
        assert_eq!(a.last_seen(PeerId(1)), Some(3));
        assert_eq!(a.ttl_of(PeerId(1)), Some(5));
        // Same-epoch renewal still refreshes the TTL without a new note.
        assert!(a.renew_with_ttl(PeerId(1), 3, 6));
        assert_eq!(a.ttl_of(PeerId(1)), Some(6));
        assert!(!a.renew_with_ttl(PeerId(9), 3, 5));
        // Due at 3 + 6 = 9.
        assert!(a.take_due(9, 20, 1).expired.is_empty());
        let out = a.take_due(10, 20, 1);
        assert_eq!(out.expired.len(), 1);
        assert_eq!(out.expired[0].last_seen, 3);
        assert_eq!(out.expired[0].opened, 0);
    }

    #[test]
    fn ttl_sweep_stays_linear() {
        let mut a = arena();
        for p in 0..1_000u64 {
            a.insert(PeerId(p), p as u32, 0).unwrap();
            if p % 2 == 0 {
                a.set_ttl(PeerId(p), 4);
            }
        }
        // Sweep epoch by epoch with default 16, floor 4: evens lapse at 4,
        // odds at 16; no sweep may rescan the whole table.
        let mut expired = 0usize;
        for now in 1..=20u64 {
            expired += a.take_due(now, 16, 4).expired.len();
        }
        assert_eq!(expired, 1_000);
        // 1000 opens + at most one renote per survivor per examination
        // generation: far below 1000 × 20.
        let stats = a.sweep_stats();
        assert!(
            stats.entries_swept <= 2_500,
            "sweep touched {} entries",
            stats.entries_swept
        );
    }
}
