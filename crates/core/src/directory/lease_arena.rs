//! Slab-backed soft-state lease table for million-peer churn.
//!
//! Before this refactor each [`crate::DirectoryShard`] tracked its peers in
//! three per-peer `HashMap`s (path handle, last-seen epoch, membership).
//! At churn scale that layout loses twice: every lease costs three hashed
//! lookups and three separately-allocated table entries, and `expire_stale`
//! had to walk the *entire* last-seen map to find the handful of leases
//! that actually lapsed.
//!
//! The arena replaces all three maps with:
//!
//! * a **slab** of leases stored contiguously (`Vec`), addressed by dense
//!   slot index, with a free list so register/leave cycles reuse slots;
//! * a **generation counter** per slot — a [`PeerSlot`] handle captured
//!   before a departure can never resurrect the peer that now occupies the
//!   reused slot (the generation no longer matches);
//! * a single **open-addressed** peer-id → slot table (linear probing,
//!   backward-shift deletion, fibonacci hashing) — one flat `Vec<u32>`
//!   instead of three `HashMap`s, with keys read back through the slab so
//!   the table itself stores nothing but slot indices;
//! * **epoch buckets**: every lease open/renewal appends `(slot,
//!   generation)` to the bucket of its epoch, so an expiry sweep
//!   ([`LeaseArena::take_expired`]) pops whole buckets below the cutoff and
//!   touches only noted entries — work proportional to the lease activity
//!   being retired, never a scan of the full table.
//!
//! The arena is generic over its payload `T` (the shard stores a
//! [`super::PathRef`]); `crates/core/tests/lease_arena_properties.rs` pins
//! it op-for-op to a naive `HashMap` reference model.

use crate::ids::PeerId;
use std::collections::VecDeque;

/// A generational handle to a lease slot. Only meaningful for the arena
/// that produced it; resolving a handle whose slot was freed (and possibly
/// reused) yields `None`, never another peer's lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PeerSlot {
    index: u32,
    generation: u32,
}

impl PeerSlot {
    /// The raw slab index (diagnostics only).
    pub fn index(self) -> u32 {
        self.index
    }

    /// The slot generation this handle was issued under.
    pub fn generation(self) -> u32 {
        self.generation
    }
}

/// One slab entry. `occupant` is `None` while the slot sits on the free
/// list; the generation survives vacancy (it is bumped on removal, so
/// handles issued before the removal go stale).
#[derive(Debug)]
struct Slot<T> {
    generation: u32,
    last_seen: u64,
    occupant: Option<(PeerId, T)>,
}

/// Cumulative sweep-cost counters, exposed so tests (and the churn soak)
/// can assert that expiry is linear in the noted lease activity rather
/// than in the table size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Bucket entries examined across all [`LeaseArena::take_expired`]
    /// calls (each entry is one noted open/renewal).
    pub entries_swept: u64,
    /// Epoch buckets retired across all sweeps.
    pub buckets_swept: u64,
}

const EMPTY: u32 = u32::MAX;

/// The slab-backed lease table: peer membership, payload and last-seen
/// epoch in one contiguous arena, with epoch-bucketed expiry.
///
/// Epochs are expected to be non-decreasing across calls (the directory's
/// heartbeat epoch is monotonic); the arena stays correct if they are not —
/// bucket indices are clamped and staleness is always re-checked against
/// the lease's actual `last_seen` — but sweep cost guarantees assume
/// monotonic use.
#[derive(Debug)]
pub struct LeaseArena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    /// Open-addressed peer-id → slot index table (capacity a power of two;
    /// keys are read through the slab, the table stores indices only).
    table: Vec<u32>,
    /// `64 - log2(table.len())`: fibonacci-hash shift.
    shift: u32,
    len: usize,
    /// `buckets[i]` holds `(slot, generation)` entries noted at epoch
    /// `base_epoch + i`.
    buckets: VecDeque<Vec<(u32, u32)>>,
    base_epoch: u64,
    sweep: SweepStats,
}

impl<T> Default for LeaseArena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> LeaseArena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an arena pre-sized for `capacity` leases.
    pub fn with_capacity(capacity: usize) -> Self {
        let table_cap = (capacity * 4 / 3 + 1).next_power_of_two().max(8);
        Self {
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            table: vec![EMPTY; table_cap],
            shift: 64 - table_cap.trailing_zeros(),
            len: 0,
            buckets: VecDeque::new(),
            base_epoch: 0,
            sweep: SweepStats::default(),
        }
    }

    /// Live leases.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no lease is open.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Cumulative expiry-sweep cost counters.
    pub fn sweep_stats(&self) -> SweepStats {
        self.sweep
    }

    /// Slab slots allocated (live + free); diagnostics.
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }

    fn home(&self, peer: PeerId) -> usize {
        // Fibonacci hashing: multiply by 2^64/φ and keep the high bits.
        (peer.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) as usize
    }

    /// Table position holding `peer`'s slot index, if present.
    fn probe(&self, peer: PeerId) -> Option<usize> {
        let mask = self.table.len() - 1;
        let mut i = self.home(peer);
        loop {
            let idx = self.table[i];
            if idx == EMPTY {
                return None;
            }
            if let Some((p, _)) = &self.slots[idx as usize].occupant {
                if *p == peer {
                    return Some(i);
                }
            }
            i = (i + 1) & mask;
        }
    }

    fn grow_table(&mut self) {
        let new_cap = self.table.len() * 2;
        let old = std::mem::replace(&mut self.table, vec![EMPTY; new_cap]);
        self.shift = 64 - new_cap.trailing_zeros();
        let mask = new_cap - 1;
        for idx in old {
            if idx == EMPTY {
                continue;
            }
            let peer = self.slots[idx as usize]
                .occupant
                .as_ref()
                .expect("table entries reference occupied slots")
                .0;
            let mut i = self.home(peer);
            while self.table[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.table[i] = idx;
        }
    }

    fn table_insert(&mut self, peer: PeerId, slot: u32) {
        if (self.len + 1) * 4 >= self.table.len() * 3 {
            self.grow_table();
        }
        let mask = self.table.len() - 1;
        let mut i = self.home(peer);
        while self.table[i] != EMPTY {
            i = (i + 1) & mask;
        }
        self.table[i] = slot;
    }

    /// Removes `peer`'s table entry by backward-shift deletion (no
    /// tombstones, so probe chains never rot under churn). Must be called
    /// while the slab still holds the peer (keys are read through it).
    fn table_remove(&mut self, pos: usize) {
        let mask = self.table.len() - 1;
        let mut hole = pos;
        let mut j = pos;
        loop {
            j = (j + 1) & mask;
            let idx = self.table[j];
            if idx == EMPTY {
                break;
            }
            let peer = self.slots[idx as usize]
                .occupant
                .as_ref()
                .expect("table entries reference occupied slots")
                .0;
            let home = self.home(peer);
            // `j`'s entry may fill the hole iff its home position does not
            // lie cyclically in (hole, j] — otherwise moving it would break
            // its own probe chain.
            let between = if hole <= j {
                hole < home && home <= j
            } else {
                home > hole || home <= j
            };
            if !between {
                self.table[hole] = idx;
                hole = j;
            }
        }
        self.table[hole] = EMPTY;
    }

    /// Appends a `(slot, generation)` note to `epoch`'s bucket. Epochs
    /// below the swept base are clamped into the oldest live bucket — the
    /// sweep re-checks actual staleness, so the clamp only affects *when*
    /// the note is examined, never the verdict.
    fn note(&mut self, slot: u32, generation: u32, epoch: u64) {
        let idx = epoch.saturating_sub(self.base_epoch) as usize;
        while self.buckets.len() <= idx {
            self.buckets.push_back(Vec::new());
        }
        self.buckets[idx].push((slot, generation));
    }

    /// Opens a lease for `peer` at `epoch`. Returns the generational
    /// handle, or `None` if the peer already holds a lease (use
    /// [`Self::renew`] for that).
    pub fn insert(&mut self, peer: PeerId, value: T, epoch: u64) -> Option<PeerSlot> {
        if self.probe(peer).is_some() {
            return None;
        }
        let slot = match self.free.pop() {
            Some(idx) => {
                let s = &mut self.slots[idx as usize];
                s.last_seen = epoch;
                s.occupant = Some((peer, value));
                idx
            }
            None => {
                let idx = self.slots.len() as u32;
                self.slots.push(Slot {
                    generation: 0,
                    last_seen: epoch,
                    occupant: Some((peer, value)),
                });
                idx
            }
        };
        self.table_insert(peer, slot);
        self.len += 1;
        let generation = self.slots[slot as usize].generation;
        self.note(slot, generation, epoch);
        Some(PeerSlot {
            index: slot,
            generation,
        })
    }

    /// Whether `peer` holds a lease.
    pub fn contains(&self, peer: PeerId) -> bool {
        self.probe(peer).is_some()
    }

    /// The payload of `peer`'s lease.
    pub fn get(&self, peer: PeerId) -> Option<&T> {
        let pos = self.probe(peer)?;
        let slot = self.table[pos] as usize;
        self.slots[slot].occupant.as_ref().map(|(_, v)| v)
    }

    /// The current handle for `peer`'s lease.
    pub fn slot_of(&self, peer: PeerId) -> Option<PeerSlot> {
        let pos = self.probe(peer)?;
        let index = self.table[pos];
        Some(PeerSlot {
            index,
            generation: self.slots[index as usize].generation,
        })
    }

    /// Resolves a generational handle. Returns `None` once the lease it
    /// was issued for has been removed — even if the slot has since been
    /// reused by another peer (the generation check; a departed peer can
    /// never be resurrected through a stale handle).
    pub fn get_slot(&self, handle: PeerSlot) -> Option<(PeerId, &T)> {
        let slot = self.slots.get(handle.index as usize)?;
        if slot.generation != handle.generation {
            return None;
        }
        slot.occupant.as_ref().map(|(p, v)| (*p, v))
    }

    /// The epoch `peer` last opened or renewed its lease.
    pub fn last_seen(&self, peer: PeerId) -> Option<u64> {
        let pos = self.probe(peer)?;
        Some(self.slots[self.table[pos] as usize].last_seen)
    }

    /// Renews `peer`'s lease at `epoch`; `false` if the peer holds none.
    /// A renewal in the epoch the lease was last seen is a no-op (no
    /// duplicate bucket note — the same-epoch guard of the expiry
    /// off-by-one family).
    pub fn renew(&mut self, peer: PeerId, epoch: u64) -> bool {
        let Some(pos) = self.probe(peer) else {
            return false;
        };
        let idx = self.table[pos];
        let slot = &mut self.slots[idx as usize];
        if slot.last_seen == epoch {
            return true;
        }
        slot.last_seen = epoch;
        let generation = slot.generation;
        self.note(idx, generation, epoch);
        true
    }

    /// Closes `peer`'s lease, returning the payload. The slot's generation
    /// is bumped, so handles issued before this call go stale.
    pub fn remove(&mut self, peer: PeerId) -> Option<T> {
        let pos = self.probe(peer)?;
        let idx = self.table[pos] as usize;
        self.table_remove(pos);
        let slot = &mut self.slots[idx];
        let (_, value) = slot.occupant.take().expect("probed slots are occupied");
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(idx as u32);
        self.len -= 1;
        Some(value)
    }

    /// Iterator over live leases in slot order: `(peer, last_seen, &T)`.
    pub fn iter(&self) -> impl Iterator<Item = (PeerId, u64, &T)> + '_ {
        self.slots
            .iter()
            .filter_map(|s| s.occupant.as_ref().map(|(p, v)| (*p, s.last_seen, v)))
    }

    /// Peers whose lease was last seen strictly before `cutoff` —
    /// **read-only diagnostic**, O(slots). The expiring path is
    /// [`Self::take_expired`], which is linear in the noted activity
    /// instead.
    pub fn stale(&self, cutoff: u64) -> Vec<PeerId> {
        self.iter()
            .filter(|&(_, seen, _)| seen < cutoff)
            .map(|(p, _, _)| p)
            .collect()
    }

    /// Closes every lease last seen strictly before `cutoff` and returns
    /// them sorted by peer id. This is the epoch-bucketed linear sweep:
    /// buckets below the cutoff are popped whole; each entry is re-checked
    /// against the lease's actual `last_seen` (renewed leases moved to a
    /// newer bucket; generation mismatches mean the slot was freed or
    /// reused). A live-but-renewed entry found in a popped bucket is
    /// re-noted under its current epoch so the lease always keeps at least
    /// one note at or above its `last_seen` bucket.
    pub fn take_expired(&mut self, cutoff: u64) -> Vec<(PeerId, T)> {
        let mut expired: Vec<(PeerId, T)> = Vec::new();
        let mut renote: Vec<(u32, u32, u64)> = Vec::new();
        while self.base_epoch < cutoff {
            let Some(bucket) = self.buckets.pop_front() else {
                // Nothing was ever noted this far back; skip ahead.
                self.base_epoch = cutoff;
                break;
            };
            self.base_epoch += 1;
            self.sweep.buckets_swept += 1;
            for (idx, generation) in bucket {
                self.sweep.entries_swept += 1;
                let slot = &mut self.slots[idx as usize];
                if slot.generation != generation || slot.occupant.is_none() {
                    continue; // freed (and possibly reused) since noted
                }
                if slot.last_seen >= cutoff {
                    // Renewed past the cutoff: keep the lease findable by
                    // future sweeps.
                    renote.push((idx, generation, slot.last_seen));
                    continue;
                }
                let (peer, value) = slot.occupant.take().expect("checked occupied");
                slot.generation = slot.generation.wrapping_add(1);
                let pos = self
                    .probe_vacated(peer, idx)
                    .expect("expired lease was in the table");
                self.table_remove(pos);
                self.free.push(idx);
                self.len -= 1;
                expired.push((peer, value));
            }
        }
        for (idx, generation, seen) in renote {
            // The slot may have been freed by a *later* entry in the same
            // sweep only via remove(), which bumps the generation — note()
            // is still safe because readers re-check both.
            self.note(idx, generation, seen);
        }
        expired.sort_unstable_by_key(|(p, _)| *p);
        expired
    }

    /// Like [`Self::probe`], but for a peer whose slab occupant was just
    /// taken (the table entry still points at `slot`).
    fn probe_vacated(&self, peer: PeerId, slot: u32) -> Option<usize> {
        let mask = self.table.len() - 1;
        let mut i = self.home(peer);
        loop {
            let idx = self.table[i];
            if idx == EMPTY {
                return None;
            }
            if idx == slot {
                return Some(i);
            }
            i = (i + 1) & mask;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena() -> LeaseArena<u32> {
        LeaseArena::new()
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut a = arena();
        let h = a.insert(PeerId(7), 70, 1).unwrap();
        assert_eq!(a.len(), 1);
        assert!(a.contains(PeerId(7)));
        assert_eq!(a.get(PeerId(7)), Some(&70));
        assert_eq!(a.last_seen(PeerId(7)), Some(1));
        assert_eq!(a.get_slot(h), Some((PeerId(7), &70)));
        assert_eq!(a.slot_of(PeerId(7)), Some(h));
        assert!(a.insert(PeerId(7), 71, 2).is_none(), "double insert");
        assert_eq!(a.remove(PeerId(7)), Some(70));
        assert!(a.is_empty());
        assert_eq!(a.remove(PeerId(7)), None);
        assert_eq!(a.get_slot(h), None, "handle went stale on removal");
    }

    #[test]
    fn slot_reuse_never_resurrects() {
        let mut a = arena();
        let h1 = a.insert(PeerId(1), 10, 0).unwrap();
        a.remove(PeerId(1));
        let h2 = a.insert(PeerId(2), 20, 0).unwrap();
        assert_eq!(h1.index(), h2.index(), "slot is recycled");
        assert_ne!(h1.generation(), h2.generation());
        assert_eq!(a.get_slot(h1), None, "stale handle must not see peer 2");
        assert_eq!(a.get_slot(h2), Some((PeerId(2), &20)));
    }

    #[test]
    fn renewal_moves_the_lease_between_buckets() {
        let mut a = arena();
        a.insert(PeerId(1), 1, 0).unwrap();
        a.insert(PeerId(2), 2, 0).unwrap();
        assert!(a.renew(PeerId(1), 3));
        assert!(!a.renew(PeerId(9), 3));
        let expired = a.take_expired(3);
        assert_eq!(expired, vec![(PeerId(2), 2)]);
        assert_eq!(a.last_seen(PeerId(1)), Some(3));
        // The renewed lease expires once its own epoch lapses.
        let expired = a.take_expired(4);
        assert_eq!(expired, vec![(PeerId(1), 1)]);
        assert!(a.is_empty());
    }

    #[test]
    fn same_epoch_renewal_is_a_noop() {
        let mut a = arena();
        a.insert(PeerId(1), 1, 5).unwrap();
        assert!(a.renew(PeerId(1), 5));
        assert!(a.renew(PeerId(1), 5));
        // Only the open noted an entry; sweeping past it sees exactly one.
        let expired = a.take_expired(6);
        assert_eq!(expired, vec![(PeerId(1), 1)]);
        assert_eq!(a.sweep_stats().entries_swept, 1);
    }

    #[test]
    fn cutoff_zero_expires_nothing() {
        let mut a = arena();
        a.insert(PeerId(1), 1, 0).unwrap();
        assert!(a.take_expired(0).is_empty());
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn renoted_leases_stay_findable_across_sweeps() {
        let mut a = arena();
        a.insert(PeerId(1), 1, 0).unwrap();
        a.renew(PeerId(1), 5);
        // Sweep to 3 pops the epoch-0 note; peer 1 is renewed past the
        // cutoff and must be re-noted, not forgotten.
        assert!(a.take_expired(3).is_empty());
        let expired = a.take_expired(6);
        assert_eq!(expired, vec![(PeerId(1), 1)]);
    }

    #[test]
    fn sweep_is_linear_in_noted_activity() {
        let mut a = arena();
        for p in 0..1_000u64 {
            a.insert(PeerId(p), p as u32, 0).unwrap();
        }
        // Renew one peer across many epochs; expire with a cutoff that
        // retires nobody but the sweep still only touches noted entries.
        for e in 1..=50 {
            a.renew(PeerId(0), e);
        }
        let before = a.sweep_stats();
        assert!(a.take_expired(0).is_empty());
        assert_eq!(a.sweep_stats(), before, "cutoff 0 sweeps nothing");
        let expired = a.take_expired(50);
        assert_eq!(expired.len(), 999);
        let stats = a.sweep_stats();
        // 1000 opens + 49 effective renewals (+1 re-note examined at most
        // once more) — far below len × epochs.
        assert!(
            stats.entries_swept <= 1_051,
            "sweep touched {} entries",
            stats.entries_swept
        );
    }

    #[test]
    fn stale_scan_matches_sweep() {
        let mut a = arena();
        for p in 0..20u64 {
            a.insert(PeerId(p), p as u32, p % 4).unwrap();
        }
        let mut scan = a.stale(2);
        scan.sort_unstable();
        let swept: Vec<PeerId> = a.take_expired(2).into_iter().map(|(p, _)| p).collect();
        assert_eq!(scan, swept);
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn table_survives_heavy_churn_and_growth() {
        let mut a = arena();
        // Interleave inserts and removals far past the initial capacity so
        // the table grows and backward-shift deletion runs over wrapped
        // probe chains.
        for round in 0u64..6 {
            for p in 0..500u64 {
                a.insert(PeerId(round * 10_000 + p), p as u32, round)
                    .unwrap();
            }
            for p in 0..500u64 {
                if p % 3 != 0 {
                    assert!(a.remove(PeerId(round * 10_000 + p)).is_some());
                }
            }
        }
        // Survivors: every p % 3 == 0 from every round.
        assert_eq!(a.len(), 6 * 167);
        for round in 0u64..6 {
            for p in 0..500u64 {
                let peer = PeerId(round * 10_000 + p);
                assert_eq!(a.contains(peer), p % 3 == 0, "{peer:?}");
            }
        }
    }

    #[test]
    fn colliding_keys_probe_correctly() {
        // Keys crafted to share a home bucket (same high bits after the
        // fibonacci multiply is hard to force; instead use a tiny table and
        // enough keys that chains necessarily overlap and wrap).
        let mut a: LeaseArena<u8> = LeaseArena::with_capacity(0);
        for p in 0..64u64 {
            a.insert(PeerId(p), p as u8, 0).unwrap();
        }
        for p in (0..64u64).step_by(2) {
            assert_eq!(a.remove(PeerId(p)), Some(p as u8));
        }
        for p in 0..64u64 {
            assert_eq!(a.get(PeerId(p)).copied(), (p % 2 == 1).then_some(p as u8));
        }
    }
}
