//! One landmark's slice of the management directory.

use super::lease_arena::LeaseArena;
use super::path_store::{PathRef, PathStore};
use crate::error::CoreError;
use crate::ids::{LandmarkId, PeerId};
use crate::path::PeerPath;
use crate::path_tree::PathTree;
use crate::router_index::{query_nearest_entries, EntryMap, Neighbor};
use nearpeer_topology::RouterId;
use std::collections::HashSet;

/// What happened to each item of a churn-absorbing batch
/// ([`DirectoryShard::absorb_batch`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardAbsorb {
    /// Fresh peers inserted (lease opened at the batch epoch).
    pub joined: usize,
    /// Already-registered peers whose lease was renewed instead.
    pub renewed: usize,
    /// Items skipped (wrong landmark root).
    pub rejected: usize,
}

/// The per-landmark directory shard: everything the server knows about the
/// peers registered under one landmark.
///
/// A shard owns the landmark's [`PathTree`], its slice of the router index
/// (entries for every router on its peers' paths), the interned path arena
/// ([`PathStore`] — one copy per distinct path instead of one clone per
/// structure), and the soft-state lease table — a slab-backed
/// [`LeaseArena`] holding membership, path handle and last-seen epoch in
/// one contiguous allocation with epoch-bucketed expiry (was three per-peer
/// `HashMap`s before the churn refactor). Shards never reference each
/// other, so distinct shards can be **mutated from different threads**
/// (`&mut` access via [`crate::ManagementServer::shards_mut`]) and
/// **queried concurrently** (every read takes `&self`). Cross-landmark
/// concerns — neighbor-list merging, bridge-estimate fills, super-peer
/// regions — live in the [`crate::ManagementServer`] facade.
#[derive(Debug)]
pub struct DirectoryShard {
    landmark: LandmarkId,
    root: RouterId,
    store: PathStore,
    entries: EntryMap,
    leases: LeaseArena<PathRef>,
    tree: PathTree,
    inserts: u64,
    removals: u64,
}

impl DirectoryShard {
    /// Creates the empty shard for `landmark` whose router is `root`.
    pub fn new(landmark: LandmarkId, root: RouterId) -> Self {
        Self {
            landmark,
            root,
            store: PathStore::new(),
            entries: EntryMap::new(),
            leases: LeaseArena::new(),
            tree: PathTree::new(root),
            inserts: 0,
            removals: 0,
        }
    }

    /// The landmark this shard serves.
    pub fn landmark(&self) -> LandmarkId {
        self.landmark
    }

    /// The landmark's router (every stored path terminates here).
    pub fn root(&self) -> RouterId {
        self.root
    }

    /// Peers registered in this shard.
    pub fn len(&self) -> usize {
        self.leases.len()
    }

    /// Whether the shard holds no peer.
    pub fn is_empty(&self) -> bool {
        self.leases.is_empty()
    }

    /// Whether `peer` is registered here.
    pub fn contains(&self, peer: PeerId) -> bool {
        self.leases.contains(peer)
    }

    /// The stored (interned) path of a peer.
    pub fn path_of(&self, peer: PeerId) -> Option<&PeerPath> {
        self.leases.get(peer).map(|&r| self.store.get(r))
    }

    /// Iterator over the shard's peers (slot order — arbitrary from the
    /// caller's point of view).
    pub fn peers(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.leases.iter().map(|(p, _, _)| p)
    }

    /// The landmark's path tree (analytics view).
    pub fn tree(&self) -> &PathTree {
        &self.tree
    }

    /// The interned path arena (diagnostics: dedup hits, distinct paths).
    pub fn path_store(&self) -> &PathStore {
        &self.store
    }

    /// The slab-backed lease table (diagnostics: sweep cost, slot reuse).
    pub fn leases(&self) -> &LeaseArena<PathRef> {
        &self.leases
    }

    /// Distinct routers referenced by this shard's paths.
    pub fn n_routers(&self) -> usize {
        self.entries.len()
    }

    /// Iterator over the distinct routers referenced by this shard.
    pub fn routers(&self) -> impl Iterator<Item = RouterId> + '_ {
        self.entries.keys().copied()
    }

    /// Lifetime insertions (used by the facade to derive join stats; a
    /// handover re-inserts, the facade compensates).
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Lifetime removals (leave-stat source, see [`Self::inserts`]).
    pub fn removals(&self) -> u64 {
        self.removals
    }

    /// Peers of this shard whose path traverses `router`, nearest-first
    /// (by hops below the router, ties by peer id).
    pub fn peers_through(&self, router: RouterId) -> impl Iterator<Item = (PeerId, u32)> + '_ {
        self.entries
            .get(&router)
            .into_iter()
            .flat_map(|set| set.iter().map(|&(d, p)| (p, d)))
    }

    /// The `k` shard peers with smallest `dtree` to the query path,
    /// ascending, ties by peer id — `&self`, so shards answer concurrently.
    pub fn query_nearest(
        &self,
        query: &PeerPath,
        k: usize,
        exclude: &HashSet<PeerId>,
    ) -> Vec<Neighbor> {
        query_nearest_entries(&self.entries, query, k, exclude)
    }

    /// The epoch `peer` last checked in, if registered.
    pub fn last_seen(&self, peer: PeerId) -> Option<u64> {
        self.leases.last_seen(peer)
    }

    /// Records a heartbeat; `false` if the peer is not in this shard.
    pub fn heartbeat(&mut self, peer: PeerId, epoch: u64) -> bool {
        self.leases.renew(peer, epoch)
    }

    /// Shard peers last seen strictly before `cutoff` — read-only
    /// diagnostic (O(peers) slab scan). The expiring path is
    /// [`Self::expire_stale_batch`], whose epoch-bucketed sweep is linear
    /// in the lease activity being retired instead.
    pub fn stale_peers(&self, cutoff: u64) -> Vec<PeerId> {
        self.leases.stale(cutoff)
    }

    /// Indexes every router of an interned path for `peer`.
    fn index_path(&mut self, peer: PeerId, r: PathRef) {
        let path = self.store.get(r);
        for (router, depth) in path.with_depths() {
            self.entries
                .entry(router)
                .or_default()
                .insert((depth, peer));
        }
    }

    /// Drops `peer`'s entries for the path behind `r` from the router
    /// index and releases the arena slot.
    fn unindex_path(&mut self, peer: PeerId, r: PathRef) {
        {
            let path = self.store.get(r);
            for (router, depth) in path.with_depths() {
                if let Some(set) = self.entries.get_mut(&router) {
                    set.remove(&(depth, peer));
                    if set.is_empty() {
                        self.entries.remove(&router);
                    }
                }
            }
        }
        self.store.release(r);
    }

    /// Registers one peer: interns the path, indexes every router on it,
    /// attaches the peer to the path tree and opens its lease at `epoch`.
    pub fn insert(&mut self, peer: PeerId, path: PeerPath, epoch: u64) -> Result<(), CoreError> {
        if path.landmark_router() != self.root {
            return Err(CoreError::UnknownLandmark(format!(
                "path terminates at {} but this shard serves {} at {}",
                path.landmark_router(),
                self.landmark,
                self.root
            )));
        }
        if self.leases.contains(peer) {
            return Err(CoreError::DuplicatePeer(peer));
        }
        let r = self.store.intern(path);
        self.index_path(peer, r);
        self.tree.insert(peer, self.store.get(r));
        self.leases.insert(peer, r, epoch);
        self.inserts += 1;
        Ok(())
    }

    /// Registers a pre-validated batch, amortising the tree descent (one
    /// [`PathTree::insert_batch`] walk) on top of per-item indexing. Items
    /// a sequential [`Self::insert`] would reject (wrong root, duplicate —
    /// also duplicates *within* the batch) are skipped. Returns the number
    /// of peers inserted.
    pub fn insert_batch(&mut self, items: Vec<(PeerId, PeerPath)>, epoch: u64) -> usize {
        self.absorb(items, epoch, false).joined
    }

    /// Churn-absorbing batch: like [`Self::insert_batch`], but an item
    /// whose peer is already registered here **renews its lease** at
    /// `epoch` (keeping the stored path) instead of being skipped — the
    /// rejoin-before-expiry case a million-peer churn replay hits
    /// constantly. Wrong-root items are counted as rejected.
    pub fn absorb_batch(&mut self, items: Vec<(PeerId, PeerPath)>, epoch: u64) -> ShardAbsorb {
        self.absorb(items, epoch, true)
    }

    fn absorb(
        &mut self,
        items: Vec<(PeerId, PeerPath)>,
        epoch: u64,
        renew_existing: bool,
    ) -> ShardAbsorb {
        let mut out = ShardAbsorb::default();
        let mut accepted: Vec<(PeerId, PathRef)> = Vec::with_capacity(items.len());
        self.store.reserve(items.len());
        for (peer, path) in items {
            if path.landmark_router() != self.root {
                out.rejected += 1;
                continue;
            }
            if self.leases.contains(peer) {
                if renew_existing {
                    self.leases.renew(peer, epoch);
                    out.renewed += 1;
                }
                continue;
            }
            let r = self.store.intern(path);
            self.index_path(peer, r);
            self.leases.insert(peer, r, epoch);
            accepted.push((peer, r));
        }
        let store = &self.store;
        let inserted = self
            .tree
            .insert_batch(accepted.iter().map(|&(p, r)| (p, store.get(r))));
        debug_assert_eq!(inserted, accepted.len());
        self.inserts += accepted.len() as u64;
        out.joined = accepted.len();
        out
    }

    /// Removes a peer, releasing its arena slot; `false` if unknown.
    pub fn remove(&mut self, peer: PeerId) -> bool {
        let Some(r) = self.leases.remove(peer) else {
            return false;
        };
        self.unindex_path(peer, r);
        self.tree.remove(peer);
        self.removals += 1;
        true
    }

    /// Renews the lease of every listed peer registered here at `epoch`
    /// (one heartbeat round, batched). Peers in other shards cost one
    /// open-addressed probe each. Returns the number renewed.
    pub fn renew_batch(&mut self, peers: &[PeerId], epoch: u64) -> usize {
        peers
            .iter()
            .filter(|&&peer| self.leases.renew(peer, epoch))
            .count()
    }

    /// Removes every listed peer registered here, returning the ones
    /// actually removed (in input order). Peers in other shards — or
    /// listed twice — are simply not found; the probe per miss is one
    /// open-addressed lookup.
    pub fn remove_batch(&mut self, peers: &[PeerId]) -> Vec<PeerId> {
        let mut removed = Vec::new();
        for &peer in peers {
            if self.remove(peer) {
                removed.push(peer);
            }
        }
        removed
    }

    /// Expires every lease last seen strictly before `cutoff`, returning
    /// the expired peers sorted by id. This is the epoch-bucketed linear
    /// sweep ([`LeaseArena::take_expired`]): cost proportional to the
    /// lease activity being retired, never a scan of the whole table.
    pub fn expire_stale_batch(&mut self, cutoff: u64) -> Vec<PeerId> {
        let expired = self.leases.take_expired(cutoff);
        let mut out = Vec::with_capacity(expired.len());
        for (peer, r) in expired {
            self.unindex_path(peer, r);
            self.tree.remove(peer);
            self.removals += 1;
            out.push(peer);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(ids: &[u32]) -> PeerPath {
        PeerPath::new(ids.iter().map(|&i| RouterId(i)).collect()).unwrap()
    }

    fn shard() -> DirectoryShard {
        DirectoryShard::new(LandmarkId(0), RouterId(0))
    }

    #[test]
    fn insert_query_remove_roundtrip() {
        let mut s = shard();
        s.insert(PeerId(1), path(&[4, 2, 1, 0]), 0).unwrap();
        s.insert(PeerId(2), path(&[5, 2, 1, 0]), 0).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.tree().n_peers(), 2);
        assert_eq!(s.path_of(PeerId(1)).unwrap().attach(), RouterId(4));
        let q = path(&[4, 2, 1, 0]);
        let res = s.query_nearest(&q, 5, &HashSet::new());
        assert_eq!(res[0].peer, PeerId(1));
        assert_eq!(res[0].dtree, 0);
        assert_eq!(res[1].peer, PeerId(2));
        assert_eq!(res[1].dtree, 2);
        assert!(s.remove(PeerId(1)));
        assert!(!s.remove(PeerId(1)));
        assert_eq!(s.len(), 1);
        assert!(s.path_of(PeerId(1)).is_none());
        assert_eq!(s.inserts(), 2);
        assert_eq!(s.removals(), 1);
    }

    #[test]
    fn rejects_foreign_and_duplicate() {
        let mut s = shard();
        assert!(matches!(
            s.insert(PeerId(1), path(&[4, 2, 99]), 0),
            Err(CoreError::UnknownLandmark(_))
        ));
        s.insert(PeerId(1), path(&[4, 2, 1, 0]), 0).unwrap();
        assert!(matches!(
            s.insert(PeerId(1), path(&[5, 2, 1, 0]), 0),
            Err(CoreError::DuplicatePeer(_))
        ));
    }

    #[test]
    fn batch_matches_sequential_inserts() {
        let mut seq = shard();
        let mut bat = shard();
        let paths = [
            path(&[4, 2, 1, 0]),
            path(&[5, 2, 1, 0]),
            path(&[6, 3, 1, 0]),
            path(&[7, 42]), // wrong root, skipped both ways
            path(&[2, 1, 0]),
        ];
        let mut ok = 0;
        for (i, p) in paths.iter().enumerate() {
            if seq.insert(PeerId(i as u64), p.clone(), 3).is_ok() {
                ok += 1;
            }
        }
        let items: Vec<(PeerId, PeerPath)> = paths
            .iter()
            .enumerate()
            .map(|(i, p)| (PeerId(i as u64), p.clone()))
            .collect();
        assert_eq!(bat.insert_batch(items, 3), ok);
        assert_eq!(bat.len(), seq.len());
        assert_eq!(bat.n_routers(), seq.n_routers());
        assert_eq!(bat.tree().n_peers(), seq.tree().n_peers());
        assert_eq!(bat.tree().n_nodes(), seq.tree().n_nodes());
        assert_eq!(bat.last_seen(PeerId(0)), Some(3));
        let q = path(&[4, 2, 1, 0]);
        assert_eq!(
            bat.query_nearest(&q, 5, &HashSet::new()),
            seq.query_nearest(&q, 5, &HashSet::new())
        );
        assert_eq!(bat.inserts(), seq.inserts());
    }

    #[test]
    fn batch_skips_duplicates_within_batch() {
        let mut s = shard();
        let items = vec![
            (PeerId(1), path(&[4, 2, 1, 0])),
            (PeerId(1), path(&[5, 2, 1, 0])),
        ];
        assert_eq!(s.insert_batch(items, 0), 1);
        assert_eq!(s.path_of(PeerId(1)).unwrap().attach(), RouterId(4));
    }

    #[test]
    fn absorb_batch_renews_instead_of_skipping() {
        let mut s = shard();
        s.insert(PeerId(1), path(&[4, 2, 1, 0]), 0).unwrap();
        let out = s.absorb_batch(
            vec![
                (PeerId(1), path(&[5, 2, 1, 0])), // registered: renew, keep path
                (PeerId(2), path(&[5, 2, 1, 0])), // fresh: join
                (PeerId(3), path(&[9, 42])),      // wrong root: reject
            ],
            7,
        );
        assert_eq!(
            out,
            ShardAbsorb {
                joined: 1,
                renewed: 1,
                rejected: 1
            }
        );
        assert_eq!(s.len(), 2);
        assert_eq!(s.last_seen(PeerId(1)), Some(7), "lease renewed");
        assert_eq!(
            s.path_of(PeerId(1)).unwrap().attach(),
            RouterId(4),
            "renewal keeps the stored path"
        );
        assert_eq!(s.inserts(), 2);
    }

    #[test]
    fn remove_batch_ignores_foreign_and_duplicate_ids() {
        let mut s = shard();
        s.insert(PeerId(1), path(&[4, 2, 1, 0]), 0).unwrap();
        s.insert(PeerId(2), path(&[5, 2, 1, 0]), 0).unwrap();
        let removed = s.remove_batch(&[PeerId(2), PeerId(9), PeerId(2), PeerId(1)]);
        assert_eq!(removed, vec![PeerId(2), PeerId(1)]);
        assert!(s.is_empty());
        assert_eq!(s.removals(), 2);
    }

    #[test]
    fn expire_batch_sweeps_and_cleans_indexes() {
        let mut s = shard();
        s.insert(PeerId(1), path(&[4, 2, 1, 0]), 0).unwrap();
        s.insert(PeerId(2), path(&[5, 2, 1, 0]), 0).unwrap();
        s.heartbeat(PeerId(1), 4);
        let expired = s.expire_stale_batch(3);
        assert_eq!(expired, vec![PeerId(2)]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.tree().n_peers(), 1);
        assert!(s.path_of(PeerId(2)).is_none());
        assert_eq!(s.path_store().distinct(), 1);
        assert_eq!(s.removals(), 1);
        // Matches what the read-only diagnostic would have named.
        assert!(s.stale_peers(3).is_empty());
    }

    #[test]
    fn interning_shares_identical_paths() {
        let mut s = shard();
        // Two peers behind the same NAT report the same router path.
        s.insert(PeerId(1), path(&[4, 2, 1, 0]), 0).unwrap();
        s.insert(PeerId(2), path(&[4, 2, 1, 0]), 0).unwrap();
        assert_eq!(s.path_store().distinct(), 1);
        assert_eq!(s.path_store().dedup_hits(), 1);
        // Both peers are individually indexed and removable.
        assert_eq!(s.peers_through(RouterId(4)).count(), 2);
        s.remove(PeerId(1));
        assert_eq!(s.path_store().distinct(), 1);
        assert_eq!(s.path_of(PeerId(2)).unwrap().attach(), RouterId(4));
        s.remove(PeerId(2));
        assert!(s.path_store().is_empty());
    }
}
