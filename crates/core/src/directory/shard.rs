//! One landmark's slice of the management directory.

use super::adaptive::{AdaptiveLeaseConfig, AdaptiveLeases};
use super::lease_arena::LeaseArena;
use super::path_store::{PathRef, PathStore};
use crate::error::CoreError;
use crate::ids::{LandmarkId, PeerId};
use crate::path::PeerPath;
use crate::path_tree::PathTree;
use crate::router_index::{query_nearest_entries, EntryMap, Neighbor};
use nearpeer_topology::RouterId;
use std::collections::HashSet;

/// Everything one [`DirectoryShard::expire_epoch`] sweep retired: leases
/// that lapsed silently, and forwarding tombstones whose retention ended.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardSweep {
    /// Peers whose lease expired (they are gone from the shard), ascending.
    pub expired: Vec<PeerId>,
    /// Swept forwarding tombstones `(peer, destination_region)` — these
    /// peers did not fail, they handed over to another region and the
    /// grace record has now been retired. Ascending by peer.
    pub moved: Vec<(PeerId, u32)>,
}

/// What happened to each item of a churn-absorbing batch
/// ([`DirectoryShard::absorb_batch`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardAbsorb {
    /// Fresh peers inserted (lease opened at the batch epoch).
    pub joined: usize,
    /// Already-registered peers whose lease was renewed instead.
    pub renewed: usize,
    /// Items skipped (wrong landmark root).
    pub rejected: usize,
}

/// The per-landmark directory shard: everything the server knows about the
/// peers registered under one landmark.
///
/// A shard owns the landmark's [`PathTree`], its slice of the router index
/// (entries for every router on its peers' paths), the interned path arena
/// ([`PathStore`] — one copy per distinct path instead of one clone per
/// structure), and the soft-state lease table — a slab-backed
/// [`LeaseArena`] holding membership, path handle and last-seen epoch in
/// one contiguous allocation with epoch-bucketed expiry (was three per-peer
/// `HashMap`s before the churn refactor). Shards never reference each
/// other, so distinct shards can be **mutated from different threads**
/// (`&mut` access via [`crate::ManagementServer::shards_mut`]) and
/// **queried concurrently** (every read takes `&self`). Cross-landmark
/// concerns — neighbor-list merging, bridge-estimate fills, super-peer
/// regions — live in the [`crate::ManagementServer`] facade.
#[derive(Debug)]
pub struct DirectoryShard {
    landmark: LandmarkId,
    root: RouterId,
    store: PathStore,
    entries: EntryMap,
    leases: LeaseArena<PathRef>,
    tree: PathTree,
    adaptive: Option<AdaptiveLeases>,
    inserts: u64,
    removals: u64,
}

impl DirectoryShard {
    /// Creates the empty shard for `landmark` whose router is `root`.
    pub fn new(landmark: LandmarkId, root: RouterId) -> Self {
        Self::with_adaptive(landmark, root, None)
    }

    /// Like [`Self::new`], with adaptive lease lengths enabled when a
    /// config is given: the shard tracks each peer's EWMA session length
    /// and sizes its lease accordingly at open/renewal time (see
    /// [`AdaptiveLeaseConfig`]).
    pub fn with_adaptive(
        landmark: LandmarkId,
        root: RouterId,
        adaptive: Option<AdaptiveLeaseConfig>,
    ) -> Self {
        Self {
            landmark,
            root,
            store: PathStore::new(),
            entries: EntryMap::new(),
            leases: LeaseArena::new(),
            tree: PathTree::new(root),
            adaptive: adaptive.map(AdaptiveLeases::new),
            inserts: 0,
            removals: 0,
        }
    }

    /// The landmark this shard serves.
    pub fn landmark(&self) -> LandmarkId {
        self.landmark
    }

    /// The landmark's router (every stored path terminates here).
    pub fn root(&self) -> RouterId {
        self.root
    }

    /// Peers registered in this shard.
    pub fn len(&self) -> usize {
        self.leases.len()
    }

    /// Whether the shard holds no peer.
    pub fn is_empty(&self) -> bool {
        self.leases.is_empty()
    }

    /// Whether `peer` is registered here.
    pub fn contains(&self, peer: PeerId) -> bool {
        self.leases.contains(peer)
    }

    /// The stored (interned) path of a peer.
    pub fn path_of(&self, peer: PeerId) -> Option<&PeerPath> {
        self.leases.get(peer).map(|&r| self.store.get(r))
    }

    /// Iterator over the shard's peers (slot order — arbitrary from the
    /// caller's point of view).
    pub fn peers(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.leases.iter().map(|(p, _, _)| p)
    }

    /// The landmark's path tree (analytics view).
    pub fn tree(&self) -> &PathTree {
        &self.tree
    }

    /// The interned path arena (diagnostics: dedup hits, distinct paths).
    pub fn path_store(&self) -> &PathStore {
        &self.store
    }

    /// The slab-backed lease table (diagnostics: sweep cost, slot reuse).
    pub fn leases(&self) -> &LeaseArena<PathRef> {
        &self.leases
    }

    /// Distinct routers referenced by this shard's paths.
    pub fn n_routers(&self) -> usize {
        self.entries.len()
    }

    /// Iterator over the distinct routers referenced by this shard.
    pub fn routers(&self) -> impl Iterator<Item = RouterId> + '_ {
        self.entries.keys().copied()
    }

    /// Lifetime insertions (used by the facade to derive join stats; a
    /// handover re-inserts, the facade compensates).
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Lifetime removals (leave-stat source, see [`Self::inserts`]).
    pub fn removals(&self) -> u64 {
        self.removals
    }

    /// Peers of this shard whose path traverses `router`, nearest-first
    /// (by hops below the router, ties by peer id).
    pub fn peers_through(&self, router: RouterId) -> impl Iterator<Item = (PeerId, u32)> + '_ {
        self.entries
            .get(&router)
            .into_iter()
            .flat_map(|set| set.iter().map(|&(d, p)| (p, d)))
    }

    /// The `k` shard peers with smallest `dtree` to the query path,
    /// ascending, ties by peer id — `&self`, so shards answer concurrently.
    pub fn query_nearest(
        &self,
        query: &PeerPath,
        k: usize,
        exclude: &HashSet<PeerId>,
    ) -> Vec<Neighbor> {
        query_nearest_entries(&self.entries, query, k, exclude)
    }

    /// The epoch `peer` last checked in, if registered.
    pub fn last_seen(&self, peer: PeerId) -> Option<u64> {
        self.leases.last_seen(peer)
    }

    /// Records a heartbeat; `false` if the peer is not in this shard.
    /// With adaptive leases on, the renewal also re-derives the peer's
    /// lease length from its session EWMA ("at renewal time").
    pub fn heartbeat(&mut self, peer: PeerId, epoch: u64) -> bool {
        match self.adaptive.as_mut().and_then(|a| a.ttl(peer)) {
            Some(ttl) => self.leases.renew_with_ttl(peer, epoch, ttl),
            None => self.leases.renew(peer, epoch),
        }
    }

    /// The destination region of `peer`'s forwarding tombstone, if this
    /// shard holds one (the peer handed over to another region's server).
    pub fn forwarded_to(&self, peer: PeerId) -> Option<u32> {
        self.leases.forwarded_to(peer)
    }

    /// Forwarding tombstones currently held (not yet swept).
    pub fn tombstone_count(&self) -> usize {
        self.leases.tombstone_count()
    }

    /// The adaptive-lease config, when enabled.
    pub fn adaptive_config(&self) -> Option<AdaptiveLeaseConfig> {
        self.adaptive.as_ref().map(|a| a.cfg())
    }

    /// Folds a finished session into the peer's EWMA (no-op without
    /// adaptive leases).
    fn observe_session(&mut self, peer: PeerId, opened: u64, last_seen: u64) {
        if let Some(a) = self.adaptive.as_mut() {
            a.observe(peer, last_seen.saturating_sub(opened));
        }
    }

    /// Shard peers last seen strictly before `cutoff` — read-only
    /// diagnostic (O(peers) slab scan). The expiring path is
    /// [`Self::expire_stale_batch`], whose epoch-bucketed sweep is linear
    /// in the lease activity being retired instead.
    pub fn stale_peers(&self, cutoff: u64) -> Vec<PeerId> {
        self.leases.stale(cutoff)
    }

    /// Indexes every router of an interned path for `peer`.
    fn index_path(&mut self, peer: PeerId, r: PathRef) {
        let path = self.store.get(r);
        for (router, depth) in path.with_depths() {
            self.entries
                .entry(router)
                .or_default()
                .insert((depth, peer));
        }
    }

    /// Drops `peer`'s entries for the path behind `r` from the router
    /// index and releases the arena slot.
    fn unindex_path(&mut self, peer: PeerId, r: PathRef) {
        {
            let path = self.store.get(r);
            for (router, depth) in path.with_depths() {
                if let Some(set) = self.entries.get_mut(&router) {
                    set.remove(&(depth, peer));
                    if set.is_empty() {
                        self.entries.remove(&router);
                    }
                }
            }
        }
        self.store.release(r);
    }

    /// Streams the shard into `out`: identity, lifetime counters, the
    /// interned path arena, the lease slab (payloads are 4-byte path
    /// refs), and the adaptive EWMA table when enabled. The router index
    /// and path tree are *not* written — the final directory state is a
    /// pure function of the registered set, so both rebuild from the
    /// restored leases.
    pub(crate) fn persist_encode(&self, out: &mut Vec<u8>) {
        use super::persist::wire::{put_u32, put_u64, put_u8};
        put_u32(out, self.landmark.0);
        put_u32(out, self.root.0);
        put_u64(out, self.inserts);
        put_u64(out, self.removals);
        self.store.persist_encode(out);
        self.leases
            .persist_encode(out, |r, buf| put_u32(buf, r.slot()));
        match &self.adaptive {
            None => put_u8(out, 0),
            Some(a) => {
                put_u8(out, 1);
                a.persist_encode(out);
            }
        }
    }

    /// Rebuilds a shard written by [`Self::persist_encode`], re-deriving
    /// the router index and path tree from the restored leases and
    /// cross-checking the structures against each other: every live lease
    /// must reference a live interned path rooted at this shard's
    /// landmark, and the store's reference counts must sum to exactly the
    /// live-lease count. `adaptive` must match how the shard was running
    /// (it comes from the snapshot's own config section). Fails closed.
    pub(crate) fn persist_decode(
        r: &mut super::persist::Reader<'_>,
        adaptive: Option<AdaptiveLeaseConfig>,
    ) -> Result<Self, super::persist::PersistError> {
        use super::persist::PersistError;
        let landmark = LandmarkId(r.u32()?);
        let root = RouterId(r.u32()?);
        let inserts = r.u64()?;
        let removals = r.u64()?;
        let store = PathStore::persist_decode(r)?;
        let leases = LeaseArena::persist_decode(r, |rd| {
            let slot = rd.u32()?;
            let pr = PathRef::from_slot(slot);
            if !store.is_live(pr) {
                return Err(PersistError::Corrupt(format!(
                    "lease references dead path slot {slot}"
                )));
            }
            Ok(pr)
        })?;
        if store.total_refs() != leases.len() as u64 {
            return Err(PersistError::Corrupt(format!(
                "path store holds {} refs for {} live leases",
                store.total_refs(),
                leases.len()
            )));
        }
        let adaptive = match (r.u8()?, adaptive) {
            (0, None) => None,
            (1, Some(cfg)) => Some(AdaptiveLeases::persist_decode(cfg, r)?),
            (flag, _) => {
                return Err(PersistError::Corrupt(format!(
                    "shard adaptive flag {flag} disagrees with the snapshot config"
                )))
            }
        };
        let mut shard = DirectoryShard {
            landmark,
            root,
            store,
            entries: EntryMap::new(),
            leases,
            tree: PathTree::new(root),
            adaptive,
            inserts,
            removals,
        };
        let pairs: Vec<(PeerId, PathRef)> = shard.leases.iter().map(|(p, _, r)| (p, *r)).collect();
        for &(_, pr) in &pairs {
            if shard.store.get(pr).landmark_router() != root {
                return Err(PersistError::Corrupt(format!(
                    "stored path in shard {} does not terminate at its landmark router",
                    landmark.0
                )));
            }
        }
        for &(peer, pr) in &pairs {
            shard.index_path(peer, pr);
        }
        let DirectoryShard { store, tree, .. } = &mut shard;
        for &(peer, pr) in &pairs {
            tree.insert(peer, store.get(pr));
        }
        Ok(shard)
    }

    /// Registers one peer: interns the path, indexes every router on it,
    /// attaches the peer to the path tree and opens its lease at `epoch`.
    pub fn insert(&mut self, peer: PeerId, path: PeerPath, epoch: u64) -> Result<(), CoreError> {
        if path.landmark_router() != self.root {
            return Err(CoreError::UnknownLandmark(format!(
                "path terminates at {} but this shard serves {} at {}",
                path.landmark_router(),
                self.landmark,
                self.root
            )));
        }
        if self.leases.contains(peer) {
            return Err(CoreError::DuplicatePeer(peer));
        }
        let r = self.store.intern(path);
        self.index_path(peer, r);
        self.tree.insert(peer, self.store.get(r));
        self.leases.insert(peer, r, epoch);
        if let Some(ttl) = self.adaptive.as_mut().and_then(|a| a.ttl(peer)) {
            self.leases.set_ttl(peer, ttl);
        }
        self.inserts += 1;
        Ok(())
    }

    /// Registers a pre-validated batch, amortising the tree descent (one
    /// [`PathTree::insert_batch`] walk) on top of per-item indexing. Items
    /// a sequential [`Self::insert`] would reject (wrong root, duplicate —
    /// also duplicates *within* the batch) are skipped. Returns the number
    /// of peers inserted.
    pub fn insert_batch(&mut self, items: Vec<(PeerId, PeerPath)>, epoch: u64) -> usize {
        self.absorb(items, epoch, false).joined
    }

    /// Churn-absorbing batch: like [`Self::insert_batch`], but an item
    /// whose peer is already registered here **renews its lease** at
    /// `epoch` (keeping the stored path) instead of being skipped — the
    /// rejoin-before-expiry case a million-peer churn replay hits
    /// constantly. Wrong-root items are counted as rejected.
    pub fn absorb_batch(&mut self, items: Vec<(PeerId, PeerPath)>, epoch: u64) -> ShardAbsorb {
        self.absorb(items, epoch, true)
    }

    fn absorb(
        &mut self,
        items: Vec<(PeerId, PeerPath)>,
        epoch: u64,
        renew_existing: bool,
    ) -> ShardAbsorb {
        let mut out = ShardAbsorb::default();
        let mut accepted: Vec<(PeerId, PathRef)> = Vec::with_capacity(items.len());
        self.store.reserve(items.len());
        for (peer, path) in items {
            if path.landmark_router() != self.root {
                out.rejected += 1;
                continue;
            }
            if self.leases.contains(peer) {
                if renew_existing {
                    match self.adaptive.as_mut().and_then(|a| a.ttl(peer)) {
                        Some(ttl) => self.leases.renew_with_ttl(peer, epoch, ttl),
                        None => self.leases.renew(peer, epoch),
                    };
                    out.renewed += 1;
                }
                continue;
            }
            let r = self.store.intern(path);
            self.index_path(peer, r);
            self.leases.insert(peer, r, epoch);
            if let Some(ttl) = self.adaptive.as_mut().and_then(|a| a.ttl(peer)) {
                self.leases.set_ttl(peer, ttl);
            }
            accepted.push((peer, r));
        }
        let store = &self.store;
        let inserted = self
            .tree
            .insert_batch(accepted.iter().map(|&(p, r)| (p, store.get(r))));
        debug_assert_eq!(inserted, accepted.len());
        self.inserts += accepted.len() as u64;
        out.joined = accepted.len();
        out
    }

    /// Removes a peer, releasing its arena slot; `false` if unknown.
    pub fn remove(&mut self, peer: PeerId) -> bool {
        let Some((r, opened, last_seen)) = self.leases.remove_full(peer) else {
            return false;
        };
        self.observe_session(peer, opened, last_seen);
        self.unindex_path(peer, r);
        self.tree.remove(peer);
        self.removals += 1;
        true
    }

    /// Removes a peer that is **relocating** (a handover, not a session
    /// end): identical to [`Self::remove`] except the session EWMA is not
    /// updated — the session continues from the new attachment, and
    /// folding the dwell time in would shrink a mobile peer's lease
    /// estimate mid-session. `false` if unknown.
    pub fn remove_moved(&mut self, peer: PeerId) -> bool {
        let Some(r) = self.leases.remove(peer) else {
            return false;
        };
        self.unindex_path(peer, r);
        self.tree.remove(peer);
        self.removals += 1;
        true
    }

    /// Removes a peer that **handed over to another region**, leaving a
    /// forwarding tombstone in the lease arena: the peer's path, tree and
    /// index entries are torn down like a departure, but the arena keeps a
    /// `(peer → region)` marker — noted in the current epoch's bucket and
    /// retired by the ordinary sweeps — so federation-aware expiry can
    /// tell "peer moved" apart from "peer silent". The session EWMA is
    /// *not* updated: the session continues elsewhere. `false` if unknown.
    pub fn remove_forwarding(&mut self, peer: PeerId, to_region: u32, epoch: u64) -> bool {
        let Some(r) = self.leases.remove(peer) else {
            return false;
        };
        self.unindex_path(peer, r);
        self.tree.remove(peer);
        self.removals += 1;
        let planted = self.leases.insert_tombstone(peer, to_region, epoch);
        debug_assert!(planted, "slot was just vacated");
        true
    }

    /// Renews the lease of every listed peer registered here at `epoch`
    /// (one heartbeat round, batched). Peers in other shards cost one
    /// open-addressed probe each. Returns the number renewed.
    pub fn renew_batch(&mut self, peers: &[PeerId], epoch: u64) -> usize {
        let mut renewed = 0usize;
        for &peer in peers {
            if self.heartbeat(peer, epoch) {
                renewed += 1;
            }
        }
        renewed
    }

    /// Removes every listed peer registered here, returning the ones
    /// actually removed (in input order). Peers in other shards — or
    /// listed twice — are simply not found; the probe per miss is one
    /// open-addressed lookup.
    pub fn remove_batch(&mut self, peers: &[PeerId]) -> Vec<PeerId> {
        let mut removed = Vec::new();
        for &peer in peers {
            if self.remove(peer) {
                removed.push(peer);
            }
        }
        removed
    }

    /// Expires every lease last seen strictly before `cutoff`, returning
    /// the expired peers sorted by id. This is the epoch-bucketed linear
    /// sweep ([`LeaseArena::take_expired`]): cost proportional to the
    /// lease activity being retired, never a scan of the whole table.
    /// Uniform-lease semantics — adaptive TTLs and forwarding tombstones
    /// are served by [`Self::expire_epoch`] (this method still retires
    /// lapsed tombstones, silently).
    pub fn expire_stale_batch(&mut self, cutoff: u64) -> Vec<PeerId> {
        let outcome = self.leases_sweep_uniform(cutoff);
        self.finish_sweep(outcome).expired
    }

    /// The epoch-bucketed expiry sweep at heartbeat epoch `now` with
    /// default lease length `max_age` — the entry point the facade (and
    /// the shard-parallel churn drivers) use:
    ///
    /// * without adaptive leases this is exactly
    ///   [`Self::expire_stale_batch`] at `cutoff = now - max_age`;
    /// * with adaptive leases each peer expires at its **own** deadline
    ///   (`last_seen + derived ttl`, see [`AdaptiveLeaseConfig`]), with
    ///   `max_age` as the default for peers without history;
    /// * either way, forwarding tombstones whose retention (`max_age`)
    ///   lapsed are retired and reported in [`ShardSweep::moved`] — the
    ///   federation's "peer moved, not silent" signal.
    pub fn expire_epoch(&mut self, now: u64, max_age: u64) -> ShardSweep {
        let outcome = match self.adaptive.as_ref().map(|a| a.cfg()) {
            Some(cfg) => {
                let min_ttl = (cfg.min_age as u64).min(max_age).max(1);
                self.leases.take_due(now, max_age, min_ttl)
            }
            None => self.leases_sweep_uniform(now.saturating_sub(max_age)),
        };
        self.finish_sweep(outcome)
    }

    /// The historical uniform sweep (`last_seen < cutoff`), expressed
    /// through the generalized deadline sweep.
    fn leases_sweep_uniform(&mut self, cutoff: u64) -> super::lease_arena::SweepOutcome<PathRef> {
        self.leases.take_due(cutoff.saturating_add(1), 1, 1)
    }

    /// Tears down the directory state of a sweep's expired leases and
    /// folds their sessions into the EWMA.
    fn finish_sweep(&mut self, outcome: super::lease_arena::SweepOutcome<PathRef>) -> ShardSweep {
        let mut out = ShardSweep {
            expired: Vec::with_capacity(outcome.expired.len()),
            moved: outcome.moved,
        };
        for lease in outcome.expired {
            self.observe_session(lease.peer, lease.opened, lease.last_seen);
            self.unindex_path(lease.peer, lease.value);
            self.tree.remove(lease.peer);
            self.removals += 1;
            out.expired.push(lease.peer);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(ids: &[u32]) -> PeerPath {
        PeerPath::new(ids.iter().map(|&i| RouterId(i)).collect()).unwrap()
    }

    fn shard() -> DirectoryShard {
        DirectoryShard::new(LandmarkId(0), RouterId(0))
    }

    #[test]
    fn insert_query_remove_roundtrip() {
        let mut s = shard();
        s.insert(PeerId(1), path(&[4, 2, 1, 0]), 0).unwrap();
        s.insert(PeerId(2), path(&[5, 2, 1, 0]), 0).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.tree().n_peers(), 2);
        assert_eq!(s.path_of(PeerId(1)).unwrap().attach(), RouterId(4));
        let q = path(&[4, 2, 1, 0]);
        let res = s.query_nearest(&q, 5, &HashSet::new());
        assert_eq!(res[0].peer, PeerId(1));
        assert_eq!(res[0].dtree, 0);
        assert_eq!(res[1].peer, PeerId(2));
        assert_eq!(res[1].dtree, 2);
        assert!(s.remove(PeerId(1)));
        assert!(!s.remove(PeerId(1)));
        assert_eq!(s.len(), 1);
        assert!(s.path_of(PeerId(1)).is_none());
        assert_eq!(s.inserts(), 2);
        assert_eq!(s.removals(), 1);
    }

    #[test]
    fn rejects_foreign_and_duplicate() {
        let mut s = shard();
        assert!(matches!(
            s.insert(PeerId(1), path(&[4, 2, 99]), 0),
            Err(CoreError::UnknownLandmark(_))
        ));
        s.insert(PeerId(1), path(&[4, 2, 1, 0]), 0).unwrap();
        assert!(matches!(
            s.insert(PeerId(1), path(&[5, 2, 1, 0]), 0),
            Err(CoreError::DuplicatePeer(_))
        ));
    }

    #[test]
    fn batch_matches_sequential_inserts() {
        let mut seq = shard();
        let mut bat = shard();
        let paths = [
            path(&[4, 2, 1, 0]),
            path(&[5, 2, 1, 0]),
            path(&[6, 3, 1, 0]),
            path(&[7, 42]), // wrong root, skipped both ways
            path(&[2, 1, 0]),
        ];
        let mut ok = 0;
        for (i, p) in paths.iter().enumerate() {
            if seq.insert(PeerId(i as u64), p.clone(), 3).is_ok() {
                ok += 1;
            }
        }
        let items: Vec<(PeerId, PeerPath)> = paths
            .iter()
            .enumerate()
            .map(|(i, p)| (PeerId(i as u64), p.clone()))
            .collect();
        assert_eq!(bat.insert_batch(items, 3), ok);
        assert_eq!(bat.len(), seq.len());
        assert_eq!(bat.n_routers(), seq.n_routers());
        assert_eq!(bat.tree().n_peers(), seq.tree().n_peers());
        assert_eq!(bat.tree().n_nodes(), seq.tree().n_nodes());
        assert_eq!(bat.last_seen(PeerId(0)), Some(3));
        let q = path(&[4, 2, 1, 0]);
        assert_eq!(
            bat.query_nearest(&q, 5, &HashSet::new()),
            seq.query_nearest(&q, 5, &HashSet::new())
        );
        assert_eq!(bat.inserts(), seq.inserts());
    }

    #[test]
    fn batch_skips_duplicates_within_batch() {
        let mut s = shard();
        let items = vec![
            (PeerId(1), path(&[4, 2, 1, 0])),
            (PeerId(1), path(&[5, 2, 1, 0])),
        ];
        assert_eq!(s.insert_batch(items, 0), 1);
        assert_eq!(s.path_of(PeerId(1)).unwrap().attach(), RouterId(4));
    }

    #[test]
    fn absorb_batch_renews_instead_of_skipping() {
        let mut s = shard();
        s.insert(PeerId(1), path(&[4, 2, 1, 0]), 0).unwrap();
        let out = s.absorb_batch(
            vec![
                (PeerId(1), path(&[5, 2, 1, 0])), // registered: renew, keep path
                (PeerId(2), path(&[5, 2, 1, 0])), // fresh: join
                (PeerId(3), path(&[9, 42])),      // wrong root: reject
            ],
            7,
        );
        assert_eq!(
            out,
            ShardAbsorb {
                joined: 1,
                renewed: 1,
                rejected: 1
            }
        );
        assert_eq!(s.len(), 2);
        assert_eq!(s.last_seen(PeerId(1)), Some(7), "lease renewed");
        assert_eq!(
            s.path_of(PeerId(1)).unwrap().attach(),
            RouterId(4),
            "renewal keeps the stored path"
        );
        assert_eq!(s.inserts(), 2);
    }

    #[test]
    fn remove_batch_ignores_foreign_and_duplicate_ids() {
        let mut s = shard();
        s.insert(PeerId(1), path(&[4, 2, 1, 0]), 0).unwrap();
        s.insert(PeerId(2), path(&[5, 2, 1, 0]), 0).unwrap();
        let removed = s.remove_batch(&[PeerId(2), PeerId(9), PeerId(2), PeerId(1)]);
        assert_eq!(removed, vec![PeerId(2), PeerId(1)]);
        assert!(s.is_empty());
        assert_eq!(s.removals(), 2);
    }

    #[test]
    fn expire_batch_sweeps_and_cleans_indexes() {
        let mut s = shard();
        s.insert(PeerId(1), path(&[4, 2, 1, 0]), 0).unwrap();
        s.insert(PeerId(2), path(&[5, 2, 1, 0]), 0).unwrap();
        s.heartbeat(PeerId(1), 4);
        let expired = s.expire_stale_batch(3);
        assert_eq!(expired, vec![PeerId(2)]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.tree().n_peers(), 1);
        assert!(s.path_of(PeerId(2)).is_none());
        assert_eq!(s.path_store().distinct(), 1);
        assert_eq!(s.removals(), 1);
        // Matches what the read-only diagnostic would have named.
        assert!(s.stale_peers(3).is_empty());
    }

    #[test]
    fn remove_forwarding_leaves_a_swept_tombstone() {
        let mut s = shard();
        s.insert(PeerId(1), path(&[4, 2, 1, 0]), 0).unwrap();
        s.insert(PeerId(2), path(&[5, 2, 1, 0]), 0).unwrap();
        assert!(s.remove_forwarding(PeerId(1), 3, 2));
        assert!(!s.remove_forwarding(PeerId(9), 3, 2));
        // The peer is gone from every directory structure...
        assert_eq!(s.len(), 1);
        assert!(s.path_of(PeerId(1)).is_none());
        assert_eq!(s.tree().n_peers(), 1);
        assert_eq!(s.removals(), 1);
        // ...but the forwarding record remains until its retention lapses.
        assert_eq!(s.forwarded_to(PeerId(1)), Some(3));
        assert_eq!(s.tombstone_count(), 1);
        let sweep = s.expire_epoch(4, 4);
        assert!(sweep.expired.is_empty() && sweep.moved.is_empty());
        let sweep = s.expire_epoch(7, 4);
        assert_eq!(sweep.moved, vec![(PeerId(1), 3)]);
        // Peer 2's lease (last seen 0) lapsed in the same sweep — the two
        // dispositions stay distinguishable.
        assert_eq!(sweep.expired, vec![PeerId(2)]);
        assert_eq!(s.tombstone_count(), 0);
        assert_eq!(s.forwarded_to(PeerId(1)), None);
    }

    #[test]
    fn expire_epoch_matches_expire_stale_batch_without_adaptive() {
        let build = || {
            let mut s = shard();
            s.insert(PeerId(1), path(&[4, 2, 1, 0]), 0).unwrap();
            s.insert(PeerId(2), path(&[5, 2, 1, 0]), 0).unwrap();
            s.heartbeat(PeerId(1), 4);
            s
        };
        let mut a = build();
        let mut b = build();
        assert_eq!(
            a.expire_epoch(6, 3).expired,
            b.expire_stale_batch(3),
            "expire_epoch(now, max_age) == expire_stale_batch(now - max_age)"
        );
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn adaptive_shortens_the_lease_of_short_lived_peers() {
        let cfg = AdaptiveLeaseConfig {
            ewma_shift: 1,
            margin: 1,
            min_age: 1,
            max_age: 16,
            max_tracked: 1024,
        };
        let mut s = DirectoryShard::with_adaptive(LandmarkId(0), RouterId(0), Some(cfg));
        // Peer 1 lives one epoch, leaves, and rejoins repeatedly: its EWMA
        // settles near 1, so its lease is derived as ~2 epochs.
        for round in 0u64..4 {
            let e = round * 10;
            s.insert(PeerId(1), path(&[4, 2, 1, 0]), e).unwrap();
            s.heartbeat(PeerId(1), e + 1);
            assert!(s.remove(PeerId(1)));
        }
        s.insert(PeerId(1), path(&[4, 2, 1, 0]), 100).unwrap();
        // A fresh peer joins at the same epoch with no history.
        s.insert(PeerId(2), path(&[5, 2, 1, 0]), 100).unwrap();
        // Sweep at epoch 106 with the default lease of 16: the adapted
        // peer (ttl ≈ 2) is expired ~8 epochs sooner than the default
        // would allow; the history-less peer keeps the full lease.
        let sweep = s.expire_epoch(106, 16);
        assert_eq!(sweep.expired, vec![PeerId(1)]);
        assert!(s.contains(PeerId(2)));
        assert_eq!(s.adaptive_config(), Some(cfg));
    }

    #[test]
    fn adaptive_lease_never_exceeds_the_configured_cap() {
        let cfg = AdaptiveLeaseConfig {
            ewma_shift: 0, // take each session whole
            margin: 0,
            min_age: 1,
            max_age: 4,
            max_tracked: 1024,
        };
        let mut s = DirectoryShard::with_adaptive(LandmarkId(0), RouterId(0), Some(cfg));
        // One very long session: the estimate caps out, so the peer is
        // untracked and rides the default lease on rejoin (= the
        // configured cap in a consistent deployment).
        s.insert(PeerId(1), path(&[4, 2, 1, 0]), 0).unwrap();
        s.heartbeat(PeerId(1), 50);
        assert!(s.remove(PeerId(1)));
        s.insert(PeerId(1), path(&[4, 2, 1, 0]), 60).unwrap();
        let sweep = s.expire_epoch(65, cfg.max_age as u64);
        assert_eq!(
            sweep.expired,
            vec![PeerId(1)],
            "never more than the 4-epoch cap, however long the EWMA history"
        );
    }

    #[test]
    fn interning_shares_identical_paths() {
        let mut s = shard();
        // Two peers behind the same NAT report the same router path.
        s.insert(PeerId(1), path(&[4, 2, 1, 0]), 0).unwrap();
        s.insert(PeerId(2), path(&[4, 2, 1, 0]), 0).unwrap();
        assert_eq!(s.path_store().distinct(), 1);
        assert_eq!(s.path_store().dedup_hits(), 1);
        // Both peers are individually indexed and removable.
        assert_eq!(s.peers_through(RouterId(4)).count(), 2);
        s.remove(PeerId(1));
        assert_eq!(s.path_store().distinct(), 1);
        assert_eq!(s.path_of(PeerId(2)).unwrap().attach(), RouterId(4));
        s.remove(PeerId(2));
        assert!(s.path_store().is_empty());
    }
}
