//! Shard-merging query plans, shared by every front end.
//!
//! The synchronous [`crate::ManagementServer`] facade and the actorized
//! runtime ([`crate::runtime`]) answer queries over the same per-landmark
//! [`DirectoryShard`]s; these free functions are the single implementation
//! of the merge logic, so both front ends return **bit-identical** answers
//! by construction. Each takes a slice of shard references — the facade
//! passes its owned shards, the runtime passes the shards behind its read
//! guards — and every function is a pure read (`&DirectoryShard` only).

use crate::ids::{LandmarkId, PeerId};
use crate::path::PeerPath;
use crate::router_index::Neighbor;
use nearpeer_topology::RouterId;
use std::collections::{BinaryHeap, HashSet};

use super::DirectoryShard;

/// The `k` best peers across the shards for a query path, ascending
/// `(dtree, peer)` — identical to what a single global index returns,
/// because the shards partition the peer set.
pub fn query_nearest_merged(
    shards: &[&DirectoryShard],
    query: &PeerPath,
    k: usize,
    exclude: &HashSet<PeerId>,
) -> Vec<Neighbor> {
    let mut merged: Vec<Neighbor> = Vec::with_capacity(k.saturating_mul(2));
    for shard in shards {
        merged.extend(shard.query_nearest(query, k, exclude));
    }
    merged.sort_unstable_by_key(|n| (n.dtree, n.peer));
    merged.truncate(k);
    merged
}

/// All registered peers whose path traverses `router`, nearest-first — a
/// lazy k-way merge of the shards' ordered per-router lists.
pub fn peers_through_merged<'a>(
    shards: &[&'a DirectoryShard],
    router: RouterId,
) -> MergedPeersThrough<'a> {
    let mut heap = BinaryHeap::new();
    let mut iters: Vec<Box<dyn Iterator<Item = (PeerId, u32)> + 'a>> = Vec::new();
    for shard in shards {
        let mut iter = shard.peers_through(router);
        if let Some((peer, depth)) = iter.next() {
            let idx = iters.len();
            heap.push(std::cmp::Reverse((depth, peer, idx)));
            iters.push(Box::new(iter));
        }
    }
    MergedPeersThrough { heap, iters }
}

/// Cross-landmark fill: rank foreign peers by
/// `depth(query) + hops(L_query, L_other) + depth(peer)` using the
/// per-landmark ordered lists at the landmark routers.
///
/// `landmark_routers` / `landmark_dist` are the facade's bootstrap
/// measurements; `own` is the query path's landmark (excluded from the
/// fill); `already` holds peers the caller placed in the answer before
/// falling back.
#[allow(clippy::too_many_arguments)]
pub fn cross_landmark_candidates(
    shards: &[&DirectoryShard],
    landmark_routers: &[RouterId],
    landmark_dist: &[Vec<u32>],
    own: LandmarkId,
    query_depth: u32,
    k: usize,
    exclude: &HashSet<PeerId>,
    already: &HashSet<PeerId>,
) -> Vec<Neighbor> {
    // K-way merge over the other landmarks' peer lists (each ordered by
    // depth below its landmark router). Every cursor keeps its own
    // `base` (= query depth + bridge): all its entries share it, and
    // deriving it from a popped estimate instead (as this code once
    // did, by subtracting the peer's *full* path depth) breaks — and
    // underflows — for peers whose path merely traverses another
    // landmark's router mid-path.
    let mut heap: BinaryHeap<std::cmp::Reverse<(u32, PeerId, usize)>> = BinaryHeap::new();
    let mut iters: Vec<(u32, MergedPeersThrough<'_>)> = Vec::new();
    for (li, &lrouter) in landmark_routers.iter().enumerate() {
        if LandmarkId(li as u32) == own {
            continue;
        }
        let bridge = landmark_dist[own.index()][li];
        if bridge == u32::MAX {
            continue;
        }
        let base = query_depth + bridge;
        let mut iter = peers_through_merged(shards, lrouter);
        if let Some((peer, depth)) = iter.next() {
            let idx = iters.len();
            heap.push(std::cmp::Reverse((base + depth, peer, idx)));
            iters.push((base, iter));
        }
    }
    let mut out = Vec::with_capacity(k);
    let mut emitted: HashSet<PeerId> = HashSet::new();
    while let Some(std::cmp::Reverse((est, peer, idx))) = heap.pop() {
        let (base, iter) = &mut iters[idx];
        if let Some((next_peer, depth)) = iter.next() {
            heap.push(std::cmp::Reverse((*base + depth, next_peer, idx)));
        }
        if exclude.contains(&peer) || already.contains(&peer) || !emitted.insert(peer) {
            continue;
        }
        out.push(Neighbor { peer, dtree: est });
        if out.len() == k {
            break;
        }
    }
    out
}

/// Lazy ascending `(depth, peer)` merge of the shards' per-router lists.
pub struct MergedPeersThrough<'a> {
    heap: BinaryHeap<std::cmp::Reverse<(u32, PeerId, usize)>>,
    iters: Vec<Box<dyn Iterator<Item = (PeerId, u32)> + 'a>>,
}

impl Iterator for MergedPeersThrough<'_> {
    type Item = (PeerId, u32);

    fn next(&mut self) -> Option<(PeerId, u32)> {
        let std::cmp::Reverse((depth, peer, idx)) = self.heap.pop()?;
        if let Some((next_peer, next_depth)) = self.iters[idx].next() {
            self.heap
                .push(std::cmp::Reverse((next_depth, next_peer, idx)));
        }
        Some((peer, depth))
    }
}
