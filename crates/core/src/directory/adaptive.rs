//! Adaptive lease lengths: per-peer `max_age` from observed sessions.
//!
//! The million-peer churn soak (PR 4) showed the cost of one global lease
//! length: with exponential lifetimes, short-lived peers keep their stale
//! registration discoverable for ~`max_age` epochs after failing silently,
//! even though their whole session lasted a fraction of that. The fix is
//! the classic soft-state one — size each peer's lease to its own observed
//! behaviour.
//!
//! This is the *small* version queued in the ROADMAP: every shard keeps an
//! **EWMA of each peer's session length** (epochs between lease open and
//! close, updated when a session ends — graceful leave or expiry), and at
//! renewal time derives the peer's lease length as
//! `clamp(ewma + margin, min_age, max_age)`. Peers without history use the
//! sweep's default. The per-lease TTL is enforced by the arena's
//! generalized deadline sweep ([`super::LeaseArena::take_due`]), which
//! stays linear in noted lease activity.

use crate::ids::PeerId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Tuning for adaptive lease lengths
/// ([`crate::ServerConfig::adaptive_leases`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdaptiveLeaseConfig {
    /// EWMA weight as a right-shift: `ewma += (sample - ewma) >> shift`
    /// (shift 1 = weight ½ on the newest session).
    pub ewma_shift: u32,
    /// Slack epochs added on top of the EWMA estimate — a lease should
    /// outlive the *expected* session, not race it.
    pub margin: u32,
    /// Floor for the derived lease length, in epochs (also the arena's
    /// sweep floor: TTLs are never handed out below it).
    ///
    /// **Must exceed the deployment's renewal cadence**: a peer whose
    /// sessions averaged one epoch gets a lease of `min_age` at rejoin —
    /// if its heartbeats arrive every `h` epochs, `min_age <= h` lets the
    /// sweep expire a live, cooperating peer between renewals (and the
    /// expiry records yet another short session, sticking the peer in a
    /// rejoin/expire loop). Size it `heartbeat_interval + 1` or more.
    pub min_age: u32,
    /// Cap for the derived lease length, in epochs ("capped to the
    /// configured max").
    pub max_age: u32,
}

impl Default for AdaptiveLeaseConfig {
    fn default() -> Self {
        Self {
            ewma_shift: 1,
            margin: 1,
            min_age: 1,
            max_age: 8,
        }
    }
}

/// Per-shard adaptive-lease state: the config plus one EWMA cell per peer
/// observed closing a session. Cells whose estimate caps out (derived TTL
/// = the configured `max_age`, i.e. no shorter than the default lease)
/// are evicted on update — only peers that actually *benefit* from a
/// shorter lease occupy memory. What remains is bounded by the universe
/// of short-lived peer ids the shard serves (rejoining peers reuse their
/// cell), not by event count; a hard cap/eviction policy for transient-id
/// deployments is a ROADMAP follow-on.
#[derive(Debug)]
pub(crate) struct AdaptiveLeases {
    cfg: AdaptiveLeaseConfig,
    ewma: HashMap<PeerId, u32>,
}

impl AdaptiveLeases {
    pub(crate) fn new(cfg: AdaptiveLeaseConfig) -> Self {
        Self {
            cfg,
            ewma: HashMap::new(),
        }
    }

    pub(crate) fn cfg(&self) -> AdaptiveLeaseConfig {
        self.cfg
    }

    /// Folds one finished session (epochs between open and last renewal)
    /// into the peer's EWMA. Estimates that cap out free their cell: a
    /// peer whose lease would clamp to `max_age` anyway behaves exactly
    /// like a history-less peer on the default lease.
    pub(crate) fn observe(&mut self, peer: PeerId, session_epochs: u64) {
        let sample = session_epochs.min(u32::MAX as u64) as u32;
        let next = match self.ewma.get(&peer) {
            Some(&old) => {
                let shift = self.cfg.ewma_shift.min(31);
                (old as i64 + ((sample as i64 - old as i64) >> shift)).clamp(0, u32::MAX as i64)
                    as u32
            }
            None => sample,
        };
        if next.saturating_add(self.cfg.margin) >= self.cfg.max_age {
            self.ewma.remove(&peer);
        } else {
            self.ewma.insert(peer, next);
        }
    }

    /// The lease length for `peer`, if it has history:
    /// `clamp(ewma + margin, min_age, max_age)`. Fresh peers return `None`
    /// and fall back to the sweep's default.
    pub(crate) fn ttl(&self, peer: PeerId) -> Option<u32> {
        let floor = self.cfg.min_age.max(1);
        self.ewma.get(&peer).map(|&e| {
            e.saturating_add(self.cfg.margin)
                .clamp(floor, self.cfg.max_age.max(floor))
        })
    }

    /// Peers with recorded history (diagnostics).
    #[cfg(test)]
    pub(crate) fn tracked(&self) -> usize {
        self.ewma.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_converges_toward_observed_sessions() {
        let mut a = AdaptiveLeases::new(AdaptiveLeaseConfig {
            ewma_shift: 1,
            margin: 0,
            min_age: 1,
            max_age: 100,
        });
        let p = PeerId(1);
        assert_eq!(a.ttl(p), None, "no history yet");
        a.observe(p, 40);
        assert_eq!(a.ttl(p), Some(40), "first sample is taken whole");
        for _ in 0..8 {
            a.observe(p, 4);
        }
        let ttl = a.ttl(p).unwrap();
        assert!(ttl <= 6, "EWMA must track the short sessions, got {ttl}");
        assert_eq!(a.tracked(), 1);
    }

    #[test]
    fn ttl_is_clamped_to_the_configured_band() {
        let mut a = AdaptiveLeases::new(AdaptiveLeaseConfig {
            ewma_shift: 1,
            margin: 2,
            min_age: 3,
            max_age: 8,
        });
        a.observe(PeerId(1), 0);
        assert_eq!(a.ttl(PeerId(1)), Some(3), "floor applies");
        // A capped-out estimate frees its cell: the peer rides the
        // default lease (= the configured max in a consistent
        // deployment), exactly like a history-less one.
        a.observe(PeerId(2), 1_000);
        assert_eq!(a.ttl(PeerId(2)), None, "cap evicts");
        assert_eq!(a.tracked(), 1, "only shorter-than-default peers held");
        a.observe(PeerId(3), 4);
        assert_eq!(a.ttl(PeerId(3)), Some(6), "ewma + margin in band");
        // A long-lived peer turning short-lived re-enters tracking.
        a.observe(PeerId(2), 1);
        assert_eq!(a.ttl(PeerId(2)), Some(3));
    }
}
