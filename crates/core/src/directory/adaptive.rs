//! Adaptive lease lengths: per-peer `max_age` from observed sessions.
//!
//! The million-peer churn soak (PR 4) showed the cost of one global lease
//! length: with exponential lifetimes, short-lived peers keep their stale
//! registration discoverable for ~`max_age` epochs after failing silently,
//! even though their whole session lasted a fraction of that. The fix is
//! the classic soft-state one — size each peer's lease to its own observed
//! behaviour.
//!
//! This is the *small* version queued in the ROADMAP: every shard keeps an
//! **EWMA of each peer's session length** (epochs between lease open and
//! close, updated when a session ends — graceful leave or expiry), and at
//! renewal time derives the peer's lease length as
//! `clamp(ewma + margin, min_age, max_age)`. Peers without history use the
//! sweep's default. The per-lease TTL is enforced by the arena's
//! generalized deadline sweep ([`super::LeaseArena::take_due`]), which
//! stays linear in noted lease activity.
//!
//! The cell table is **hard-capped** ([`AdaptiveLeaseConfig::max_tracked`])
//! with clock/second-chance eviction: a deployment whose peers mint a
//! fresh id per session would otherwise grow the map by one cell per
//! transient id, forever. Cells touched since the hand last passed (a
//! renewal consulted them, or a new session was folded in) survive one
//! sweep; cold cells make room. Losing a cell only means the peer rides
//! the default lease until its next session closes — an accuracy hit on
//! ids that were not renewing anyway, never a correctness one.

use super::persist::wire::{put_u32, put_u64, put_u8, Reader};
use super::persist::PersistError;
use crate::ids::PeerId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Tuning for adaptive lease lengths
/// ([`crate::ServerConfig::adaptive_leases`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdaptiveLeaseConfig {
    /// EWMA weight as a right-shift: `ewma += (sample - ewma) >> shift`
    /// (shift 1 = weight ½ on the newest session).
    pub ewma_shift: u32,
    /// Slack epochs added on top of the EWMA estimate — a lease should
    /// outlive the *expected* session, not race it.
    pub margin: u32,
    /// Floor for the derived lease length, in epochs (also the arena's
    /// sweep floor: TTLs are never handed out below it).
    ///
    /// **Must exceed the deployment's renewal cadence**: a peer whose
    /// sessions averaged one epoch gets a lease of `min_age` at rejoin —
    /// if its heartbeats arrive every `h` epochs, `min_age <= h` lets the
    /// sweep expire a live, cooperating peer between renewals (and the
    /// expiry records yet another short session, sticking the peer in a
    /// rejoin/expire loop). Size it `heartbeat_interval + 1` or more.
    pub min_age: u32,
    /// Cap for the derived lease length, in epochs ("capped to the
    /// configured max").
    pub max_age: u32,
    /// Hard cap on EWMA cells held **per shard**. Deployments with
    /// never-recycled (transient) peer ids would otherwise grow the map
    /// without bound; at the cap, a clock/second-chance sweep evicts a
    /// cell not touched since the hand last passed. `0` disables tracking
    /// entirely (every peer rides the default lease).
    pub max_tracked: u32,
}

impl Default for AdaptiveLeaseConfig {
    fn default() -> Self {
        Self {
            ewma_shift: 1,
            margin: 1,
            min_age: 1,
            max_age: 8,
            max_tracked: 65_536,
        }
    }
}

/// One tracked peer: its session-length EWMA plus the clock's reference
/// bit (set whenever the cell is consulted or updated, cleared as the
/// hand passes).
#[derive(Debug)]
struct Cell {
    peer: PeerId,
    ewma: u32,
    referenced: bool,
}

/// Per-shard adaptive-lease state: the config plus one EWMA cell per peer
/// observed closing a session. Cells whose estimate caps out (derived TTL
/// = the configured `max_age`, i.e. no shorter than the default lease)
/// are evicted on update — only peers that actually *benefit* from a
/// shorter lease occupy memory — and the table is hard-capped at
/// [`AdaptiveLeaseConfig::max_tracked`] with clock eviction for
/// transient-id deployments.
#[derive(Debug)]
pub(crate) struct AdaptiveLeases {
    cfg: AdaptiveLeaseConfig,
    cells: Vec<Cell>,
    index: HashMap<PeerId, usize>,
    /// Clock hand: the next eviction candidate in `cells`.
    hand: usize,
}

impl AdaptiveLeases {
    pub(crate) fn new(cfg: AdaptiveLeaseConfig) -> Self {
        Self {
            cfg,
            cells: Vec::new(),
            index: HashMap::new(),
            hand: 0,
        }
    }

    pub(crate) fn cfg(&self) -> AdaptiveLeaseConfig {
        self.cfg
    }

    /// Folds one finished session (epochs between open and last renewal)
    /// into the peer's EWMA. Estimates that cap out free their cell: a
    /// peer whose lease would clamp to `max_age` anyway behaves exactly
    /// like a history-less peer on the default lease. A fresh cell at the
    /// cap evicts the first cell the clock hand finds unreferenced.
    pub(crate) fn observe(&mut self, peer: PeerId, session_epochs: u64) {
        let sample = session_epochs.min(u32::MAX as u64) as u32;
        let existing = self.index.get(&peer).copied();
        let next = match existing {
            Some(i) => {
                let old = self.cells[i].ewma;
                let shift = self.cfg.ewma_shift.min(31);
                (old as i64 + ((sample as i64 - old as i64) >> shift)).clamp(0, u32::MAX as i64)
                    as u32
            }
            None => sample,
        };
        if next.saturating_add(self.cfg.margin) >= self.cfg.max_age {
            if let Some(i) = existing {
                self.remove_cell(i);
            }
            return;
        }
        match existing {
            Some(i) => {
                self.cells[i].ewma = next;
                self.cells[i].referenced = true;
            }
            None => self.insert_cell(peer, next),
        }
    }

    /// The lease length for `peer`, if it has history:
    /// `clamp(ewma + margin, min_age, max_age)`. Fresh peers return `None`
    /// and fall back to the sweep's default. Consulting a cell marks it
    /// referenced — peers that keep renewing survive the clock.
    pub(crate) fn ttl(&mut self, peer: PeerId) -> Option<u32> {
        let floor = self.cfg.min_age.max(1);
        let &i = self.index.get(&peer)?;
        let cell = &mut self.cells[i];
        cell.referenced = true;
        Some(
            cell.ewma
                .saturating_add(self.cfg.margin)
                .clamp(floor, self.cfg.max_age.max(floor)),
        )
    }

    fn insert_cell(&mut self, peer: PeerId, ewma: u32) {
        if self.cfg.max_tracked == 0 {
            return;
        }
        // Fresh cells are born *cold* (reference bit unset): a transient id
        // never consulted again is the very next eviction candidate, while
        // a cell proves itself hot the first time a renewal reads it or a
        // second session folds in. Born-hot cells would make a full table
        // look uniformly referenced and degrade the clock to FIFO —
        // evicting the long-resident cells sitting at the hand first.
        if self.cells.len() < self.cfg.max_tracked as usize {
            self.index.insert(peer, self.cells.len());
            self.cells.push(Cell {
                peer,
                ewma,
                referenced: false,
            });
            return;
        }
        // At the cap: the hand clears reference bits until it finds a cold
        // cell, then replaces it in place. Terminates within two laps.
        loop {
            let cell = &mut self.cells[self.hand];
            if cell.referenced {
                cell.referenced = false;
                self.hand = (self.hand + 1) % self.cells.len();
            } else {
                self.index.remove(&cell.peer);
                cell.peer = peer;
                cell.ewma = ewma;
                cell.referenced = false;
                self.index.insert(peer, self.hand);
                self.hand = (self.hand + 1) % self.cells.len();
                return;
            }
        }
    }

    fn remove_cell(&mut self, i: usize) {
        self.index.remove(&self.cells[i].peer);
        self.cells.swap_remove(i);
        if let Some(moved) = self.cells.get(i) {
            self.index.insert(moved.peer, i);
        }
        if self.hand >= self.cells.len() {
            self.hand = 0;
        }
    }

    /// Peers with recorded history (diagnostics).
    #[cfg(test)]
    pub(crate) fn tracked(&self) -> usize {
        debug_assert_eq!(self.cells.len(), self.index.len());
        self.cells.len()
    }

    /// Streams the cell table + clock hand into `out`. The config is not
    /// written: it lives in the snapshot's config section, and decode
    /// receives it from there.
    pub(crate) fn persist_encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.cells.len() as u64);
        for cell in &self.cells {
            put_u64(out, cell.peer.0);
            put_u32(out, cell.ewma);
            put_u8(out, u8::from(cell.referenced));
        }
        put_u64(out, self.hand as u64);
    }

    /// Rebuilds the EWMA state written by [`Self::persist_encode`],
    /// re-deriving the peer index. Fails closed on duplicate peers, a
    /// table above `max_tracked`, or an out-of-range clock hand.
    pub(crate) fn persist_decode(
        cfg: AdaptiveLeaseConfig,
        r: &mut Reader<'_>,
    ) -> Result<Self, PersistError> {
        let n = r.len_prefix(13)?;
        if n > cfg.max_tracked as usize {
            return Err(PersistError::Corrupt(format!(
                "adaptive table holds {n} cells, config caps it at {}",
                cfg.max_tracked
            )));
        }
        let mut cells = Vec::with_capacity(n);
        let mut index = HashMap::with_capacity(n);
        for i in 0..n {
            let peer = PeerId(r.u64()?);
            let ewma = r.u32()?;
            let referenced = match r.u8()? {
                0 => false,
                1 => true,
                t => {
                    return Err(PersistError::Corrupt(format!(
                        "adaptive cell {i} has reference tag {t}"
                    )))
                }
            };
            if index.insert(peer, i).is_some() {
                return Err(PersistError::Corrupt(format!(
                    "adaptive table tracks {peer} twice"
                )));
            }
            cells.push(Cell {
                peer,
                ewma,
                referenced,
            });
        }
        let hand = r.u64()? as usize;
        if hand >= cells.len().max(1) {
            return Err(PersistError::Corrupt(format!(
                "adaptive clock hand {hand} out of range for {} cells",
                cells.len()
            )));
        }
        Ok(AdaptiveLeases {
            cfg,
            cells,
            index,
            hand,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(max_tracked: u32) -> AdaptiveLeaseConfig {
        AdaptiveLeaseConfig {
            ewma_shift: 1,
            margin: 0,
            min_age: 1,
            max_age: 100,
            max_tracked,
        }
    }

    #[test]
    fn ewma_converges_toward_observed_sessions() {
        let mut a = AdaptiveLeases::new(cfg(1024));
        let p = PeerId(1);
        assert_eq!(a.ttl(p), None, "no history yet");
        a.observe(p, 40);
        assert_eq!(a.ttl(p), Some(40), "first sample is taken whole");
        for _ in 0..8 {
            a.observe(p, 4);
        }
        let ttl = a.ttl(p).unwrap();
        assert!(ttl <= 6, "EWMA must track the short sessions, got {ttl}");
        assert_eq!(a.tracked(), 1);
    }

    #[test]
    fn ttl_is_clamped_to_the_configured_band() {
        let mut a = AdaptiveLeases::new(AdaptiveLeaseConfig {
            ewma_shift: 1,
            margin: 2,
            min_age: 3,
            max_age: 8,
            max_tracked: 1024,
        });
        a.observe(PeerId(1), 0);
        assert_eq!(a.ttl(PeerId(1)), Some(3), "floor applies");
        // A capped-out estimate frees its cell: the peer rides the
        // default lease (= the configured max in a consistent
        // deployment), exactly like a history-less one.
        a.observe(PeerId(2), 1_000);
        assert_eq!(a.ttl(PeerId(2)), None, "cap evicts");
        assert_eq!(a.tracked(), 1, "only shorter-than-default peers held");
        a.observe(PeerId(3), 4);
        assert_eq!(a.ttl(PeerId(3)), Some(6), "ewma + margin in band");
        // A long-lived peer turning short-lived re-enters tracking.
        a.observe(PeerId(2), 1);
        assert_eq!(a.ttl(PeerId(2)), Some(3));
    }

    #[test]
    fn transient_id_storm_holds_the_table_at_the_cap() {
        let mut a = AdaptiveLeases::new(cfg(64));
        // Four resident peers with established short-session history.
        for p in 1..=4u64 {
            a.observe(PeerId(p), 3);
        }
        let resident_ttls: Vec<_> = (1..=4u64).map(|p| a.ttl(PeerId(p)).unwrap()).collect();
        // A storm of never-recycled ids, each closing one short session —
        // exactly the workload that used to grow the map without bound.
        // Residents renew (= get re-referenced) faster than the hand laps
        // the table, so second-chance keeps them; transient cells, never
        // touched again, recycle among themselves.
        for wave in 0..200u64 {
            for i in 0..16u64 {
                a.observe(PeerId(1_000_000 + wave * 16 + i), 2);
            }
            for p in 1..=4u64 {
                assert!(a.ttl(PeerId(p)).is_some(), "resident {p} evicted");
            }
        }
        assert_eq!(a.tracked(), 64, "table pinned at max_tracked");
        // No lease-length regression for the residents.
        let after: Vec<_> = (1..=4u64).map(|p| a.ttl(PeerId(p)).unwrap()).collect();
        assert_eq!(after, resident_ttls);
    }

    #[test]
    fn zero_cap_disables_tracking() {
        let mut a = AdaptiveLeases::new(cfg(0));
        a.observe(PeerId(1), 2);
        assert_eq!(a.ttl(PeerId(1)), None);
        assert_eq!(a.tracked(), 0);
    }

    #[test]
    fn persist_roundtrip_preserves_ewmas_reference_bits_and_hand() {
        let mut a = AdaptiveLeases::new(cfg(4));
        for p in 1..=6u64 {
            a.observe(PeerId(p), p);
        }
        // Reference one survivor so bits differ across cells.
        let _ = a.ttl(PeerId(5));

        let mut bytes = Vec::new();
        a.persist_encode(&mut bytes);
        let mut reader = super::Reader::new(&bytes);
        let mut restored = AdaptiveLeases::persist_decode(a.cfg(), &mut reader).unwrap();
        assert_eq!(reader.remaining(), 0);
        assert_eq!(restored.tracked(), a.tracked());
        for p in 1..=6u64 {
            assert_eq!(restored.ttl(PeerId(p)), a.ttl(PeerId(p)), "peer {p}");
        }
        // Future behaviour: the clock evicts the same victim next.
        restored.observe(PeerId(100), 1);
        a.observe(PeerId(100), 1);
        for p in 1..=6u64 {
            assert_eq!(restored.ttl(PeerId(p)), a.ttl(PeerId(p)), "post-evict {p}");
        }
    }

    #[test]
    fn persist_decode_rejects_duplicate_peer_cells() {
        let mut a = AdaptiveLeases::new(cfg(8));
        a.observe(PeerId(3), 2);
        let mut bytes = Vec::new();
        a.persist_encode(&mut bytes);
        // Duplicate the single 13-byte cell and bump the count to 2.
        let cell = bytes[8..21].to_vec();
        bytes.splice(21..21, cell);
        bytes[..8].copy_from_slice(&2u64.to_le_bytes());
        let mut reader = super::Reader::new(&bytes);
        assert!(matches!(
            AdaptiveLeases::persist_decode(a.cfg(), &mut reader),
            Err(super::PersistError::Corrupt(_))
        ));
    }
}
