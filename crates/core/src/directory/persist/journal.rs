//! The incremental journal: batched churn ops appended between snapshots.
//!
//! Layout: a 6-byte header (magic `NPJL` + `u16` version), then records.
//! Each record is `u32 payload_len | u64 fnv1a(payload) | payload`, where
//! the payload is one encoded [`JournalOp`]. Appends are the only write
//! operation, so the only damage a crash can inflict is a **torn tail**:
//! the final record cut short or half-written. [`JournalReader`] therefore
//! stops at the first record that is incomplete or fails its checksum and
//! reports it as a torn tail — everything before it is the last consistent
//! point. A wrong magic or version, by contrast, fails closed: that is not
//! crash damage, it is the wrong file.

use super::wire::{put_path, put_u16, put_u32, put_u64, Reader};
use super::{checksum, PersistError, JOURNAL_MAGIC, JOURNAL_VERSION};
use crate::ids::PeerId;
use crate::path::PeerPath;

/// One durable churn operation, mirroring the [`crate::ManagementServer`]
/// write API. Replaying the recorded stream through
/// [`crate::ManagementServer::apply_journal_op`] is deterministic: the
/// same ops in the same order rebuild the same directory.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum JournalOp {
    /// `register_batch_renewing`: fresh joins + renewals in one batch.
    RegisterBatch(Vec<(PeerId, PeerPath)>),
    /// `renew_batch`: heartbeat renewals.
    RenewBatch(Vec<PeerId>),
    /// `leave_batch`: voluntary departures.
    LeaveBatch(Vec<PeerId>),
    /// Same-server `handover` to a new path.
    Handover {
        /// The moving peer.
        peer: PeerId,
        /// Its path after the move.
        path: PeerPath,
    },
    /// Cross-region departure leaving a forwarding tombstone.
    DeregisterForwarding {
        /// The departing peer.
        peer: PeerId,
        /// Destination region recorded in the tombstone.
        to_region: u32,
    },
    /// Single-peer `deregister`.
    Deregister(PeerId),
    /// `advance_epoch` (the logical clock tick).
    AdvanceEpoch,
    /// `expire_stale_full(max_age)` sweep.
    ExpireStale {
        /// Lease age limit the sweep ran with.
        max_age: u64,
    },
}

const OP_REGISTER_BATCH: u8 = 1;
const OP_RENEW_BATCH: u8 = 2;
const OP_LEAVE_BATCH: u8 = 3;
const OP_HANDOVER: u8 = 4;
const OP_DEREGISTER_FORWARDING: u8 = 5;
const OP_DEREGISTER: u8 = 6;
const OP_ADVANCE_EPOCH: u8 = 7;
const OP_EXPIRE_STALE: u8 = 8;

impl JournalOp {
    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            JournalOp::RegisterBatch(items) => {
                out.push(OP_REGISTER_BATCH);
                put_u64(out, items.len() as u64);
                for (peer, path) in items {
                    put_u64(out, peer.0);
                    put_path(out, path);
                }
            }
            JournalOp::RenewBatch(peers) => {
                out.push(OP_RENEW_BATCH);
                put_u64(out, peers.len() as u64);
                for p in peers {
                    put_u64(out, p.0);
                }
            }
            JournalOp::LeaveBatch(peers) => {
                out.push(OP_LEAVE_BATCH);
                put_u64(out, peers.len() as u64);
                for p in peers {
                    put_u64(out, p.0);
                }
            }
            JournalOp::Handover { peer, path } => {
                out.push(OP_HANDOVER);
                put_u64(out, peer.0);
                put_path(out, path);
            }
            JournalOp::DeregisterForwarding { peer, to_region } => {
                out.push(OP_DEREGISTER_FORWARDING);
                put_u64(out, peer.0);
                put_u32(out, *to_region);
            }
            JournalOp::Deregister(peer) => {
                out.push(OP_DEREGISTER);
                put_u64(out, peer.0);
            }
            JournalOp::AdvanceEpoch => out.push(OP_ADVANCE_EPOCH),
            JournalOp::ExpireStale { max_age } => {
                out.push(OP_EXPIRE_STALE);
                put_u64(out, *max_age);
            }
        }
    }

    fn decode_payload(bytes: &[u8]) -> Result<JournalOp, PersistError> {
        let mut r = Reader::new(bytes);
        let op = match r.u8()? {
            OP_REGISTER_BATCH => {
                let n = r.len_prefix(8)?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    let peer = PeerId(r.u64()?);
                    items.push((peer, r.path()?));
                }
                JournalOp::RegisterBatch(items)
            }
            OP_RENEW_BATCH => {
                let n = r.len_prefix(8)?;
                let mut peers = Vec::with_capacity(n);
                for _ in 0..n {
                    peers.push(PeerId(r.u64()?));
                }
                JournalOp::RenewBatch(peers)
            }
            OP_LEAVE_BATCH => {
                let n = r.len_prefix(8)?;
                let mut peers = Vec::with_capacity(n);
                for _ in 0..n {
                    peers.push(PeerId(r.u64()?));
                }
                JournalOp::LeaveBatch(peers)
            }
            OP_HANDOVER => JournalOp::Handover {
                peer: PeerId(r.u64()?),
                path: r.path()?,
            },
            OP_DEREGISTER_FORWARDING => JournalOp::DeregisterForwarding {
                peer: PeerId(r.u64()?),
                to_region: r.u32()?,
            },
            OP_DEREGISTER => JournalOp::Deregister(PeerId(r.u64()?)),
            OP_ADVANCE_EPOCH => JournalOp::AdvanceEpoch,
            OP_EXPIRE_STALE => JournalOp::ExpireStale { max_age: r.u64()? },
            k => {
                return Err(PersistError::Corrupt(format!(
                    "unknown journal op kind {k}"
                )))
            }
        };
        if r.remaining() != 0 {
            return Err(PersistError::Corrupt(
                "trailing bytes after journal op".into(),
            ));
        }
        Ok(op)
    }
}

/// Writes the 6-byte journal header (magic + version) into `out`.
pub fn journal_header(out: &mut Vec<u8>) {
    out.extend_from_slice(&JOURNAL_MAGIC);
    put_u16(out, JOURNAL_VERSION);
}

/// Appends one op as a checksummed record. If `out` is empty the journal
/// header is written first, so a fresh buffer becomes a valid journal.
pub fn append_op(out: &mut Vec<u8>, op: &JournalOp) {
    if out.is_empty() {
        journal_header(out);
    }
    append_record(out, op);
}

/// Appends one record without the header check — for callers that manage
/// the header themselves (the background writer tracks the medium's
/// journal length across batches).
pub(crate) fn append_record(out: &mut Vec<u8>, op: &JournalOp) {
    let mut payload = Vec::new();
    op.encode_payload(&mut payload);
    put_u32(out, payload.len() as u32);
    put_u64(out, checksum(&payload));
    out.extend_from_slice(&payload);
}

/// Streaming reader over journal bytes; stops at the first torn record.
pub struct JournalReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    torn: bool,
    records: u64,
}

impl<'a> JournalReader<'a> {
    /// Validates the header. An empty slice is a valid empty journal; a
    /// strict prefix of the header is a torn tail at offset zero (the
    /// crash hit before the header finished); anything else with wrong
    /// magic or version fails closed.
    pub fn new(bytes: &'a [u8]) -> Result<Self, PersistError> {
        if bytes.is_empty() {
            return Ok(JournalReader {
                bytes,
                pos: 0,
                torn: false,
                records: 0,
            });
        }
        let mut header = Vec::with_capacity(6);
        journal_header(&mut header);
        if bytes.len() < header.len() {
            if header.starts_with(bytes) {
                return Ok(JournalReader {
                    bytes,
                    pos: 0,
                    torn: true,
                    records: 0,
                });
            }
            return Err(PersistError::BadMagic([
                *bytes.first().unwrap_or(&0),
                *bytes.get(1).unwrap_or(&0),
                *bytes.get(2).unwrap_or(&0),
                *bytes.get(3).unwrap_or(&0),
            ]));
        }
        if bytes[..4] != JOURNAL_MAGIC {
            return Err(PersistError::BadMagic(bytes[..4].try_into().unwrap()));
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
        if version != JOURNAL_VERSION {
            return Err(PersistError::UnsupportedVersion(version));
        }
        Ok(JournalReader {
            bytes,
            pos: 6,
            torn: false,
            records: 0,
        })
    }

    /// Next intact op, or `None` at the end of the journal (clean end or
    /// torn tail — check [`JournalReader::torn_tail`]).
    pub fn next_op(&mut self) -> Option<JournalOp> {
        if self.torn {
            return None;
        }
        let remaining = self.bytes.len() - self.pos;
        if remaining == 0 {
            return None;
        }
        if remaining < 12 {
            self.torn = true;
            return None;
        }
        let len =
            u32::from_le_bytes(self.bytes[self.pos..self.pos + 4].try_into().unwrap()) as usize;
        let stored =
            u64::from_le_bytes(self.bytes[self.pos + 4..self.pos + 12].try_into().unwrap());
        if remaining - 12 < len {
            self.torn = true;
            return None;
        }
        let payload = &self.bytes[self.pos + 12..self.pos + 12 + len];
        if checksum(payload) != stored {
            self.torn = true;
            return None;
        }
        match JournalOp::decode_payload(payload) {
            Ok(op) => {
                self.pos += 12 + len;
                self.records += 1;
                Some(op)
            }
            // A checksummed-but-undecodable payload means the writer and
            // reader disagree; treat as damage at this point and stop.
            Err(_) => {
                self.torn = true;
                None
            }
        }
    }

    /// Bytes consumed up to (not including) the first torn record.
    pub fn bytes_consumed(&self) -> usize {
        self.pos
    }

    /// Intact records read so far.
    pub fn records_read(&self) -> u64 {
        self.records
    }

    /// True once the reader hit a torn (incomplete or corrupt) tail.
    pub fn torn_tail(&self) -> bool {
        self.torn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nearpeer_topology::RouterId;

    fn path(routers: &[u32]) -> PeerPath {
        PeerPath::new(routers.iter().map(|&r| RouterId(r)).collect()).unwrap()
    }

    fn sample_ops() -> Vec<JournalOp> {
        vec![
            JournalOp::RegisterBatch(vec![
                (PeerId(1), path(&[9, 4, 0])),
                (PeerId(2), path(&[7, 0])),
            ]),
            JournalOp::RenewBatch(vec![PeerId(1), PeerId(2)]),
            JournalOp::AdvanceEpoch,
            JournalOp::Handover {
                peer: PeerId(1),
                path: path(&[8, 0]),
            },
            JournalOp::DeregisterForwarding {
                peer: PeerId(2),
                to_region: 3,
            },
            JournalOp::LeaveBatch(vec![PeerId(1)]),
            JournalOp::Deregister(PeerId(7)),
            JournalOp::ExpireStale { max_age: 16 },
        ]
    }

    #[test]
    fn ops_roundtrip_through_the_journal() {
        let ops = sample_ops();
        let mut buf = Vec::new();
        for op in &ops {
            append_op(&mut buf, op);
        }
        let mut reader = JournalReader::new(&buf).unwrap();
        let mut got = Vec::new();
        while let Some(op) = reader.next_op() {
            got.push(op);
        }
        assert_eq!(got, ops);
        assert!(!reader.torn_tail());
        assert_eq!(reader.bytes_consumed(), buf.len());
        assert_eq!(reader.records_read(), ops.len() as u64);
    }

    #[test]
    fn empty_journal_is_valid_and_yields_nothing() {
        let mut reader = JournalReader::new(&[]).unwrap();
        assert!(reader.next_op().is_none());
        assert!(!reader.torn_tail());
    }

    #[test]
    fn torn_tail_stops_at_last_intact_record() {
        let ops = sample_ops();
        let mut buf = Vec::new();
        for op in &ops {
            append_op(&mut buf, op);
        }
        let intact = buf.len();
        // Begin one more record, then cut it mid-payload.
        append_op(&mut buf, &JournalOp::RenewBatch(vec![PeerId(42)]));
        buf.truncate(intact + 14);
        let mut reader = JournalReader::new(&buf).unwrap();
        let mut got = 0;
        while reader.next_op().is_some() {
            got += 1;
        }
        assert_eq!(got, ops.len());
        assert!(reader.torn_tail());
        assert_eq!(reader.bytes_consumed(), intact);
    }

    #[test]
    fn corrupt_record_byte_is_a_torn_tail_there() {
        let ops = sample_ops();
        let mut buf = Vec::new();
        for op in &ops {
            append_op(&mut buf, op);
        }
        let mid = buf.len() / 2;
        buf[mid] ^= 0xFF;
        let mut reader = JournalReader::new(&buf).unwrap();
        let mut got = 0;
        while reader.next_op().is_some() {
            got += 1;
        }
        assert!(got < ops.len());
        assert!(reader.torn_tail());
    }

    #[test]
    fn wrong_magic_fails_closed() {
        let mut buf = Vec::new();
        append_op(&mut buf, &JournalOp::AdvanceEpoch);
        buf[0] = b'X';
        assert!(matches!(
            JournalReader::new(&buf),
            Err(PersistError::BadMagic(_))
        ));
    }

    #[test]
    fn newer_version_fails_closed() {
        let mut buf = Vec::new();
        append_op(&mut buf, &JournalOp::AdvanceEpoch);
        buf[4] = 0xFF;
        assert!(matches!(
            JournalReader::new(&buf),
            Err(PersistError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn header_prefix_is_a_torn_tail_not_bad_magic() {
        let mut reader = JournalReader::new(b"NPJ").unwrap();
        assert!(reader.next_op().is_none());
        assert!(reader.torn_tail());
        assert_eq!(reader.bytes_consumed(), 0);
    }
}
