//! Little-endian byte helpers shared by the snapshot and journal codecs.
//!
//! Deliberately minimal: fixed-width LE primitives plus a bounds-checked
//! [`Reader`]. Every read returns [`PersistError::Truncated`] instead of
//! panicking, so decoding arbitrary (fuzzed, faulted) bytes is safe.

use super::PersistError;
use crate::path::PeerPath;
use nearpeer_topology::RouterId;

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Writes a peer path as `u16 len | len × u32 router`.
pub(crate) fn put_path(out: &mut Vec<u8>, path: &PeerPath) {
    let routers = path.routers();
    debug_assert!(routers.len() <= u16::MAX as usize);
    put_u16(out, routers.len() as u16);
    for r in routers {
        put_u32(out, r.0);
    }
}

/// Bounds-checked cursor over an immutable byte slice.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated);
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, PersistError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length prefix that will be used to reserve or iterate; the
    /// value is additionally bounded by the bytes actually remaining (each
    /// element needs at least `min_elem_bytes`), so a corrupt length can't
    /// drive a huge allocation.
    pub(crate) fn len_prefix(&mut self, min_elem_bytes: usize) -> Result<usize, PersistError> {
        let n = self.u64()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(PersistError::Truncated);
        }
        Ok(n)
    }

    /// Reads a path written by [`put_path`].
    pub(crate) fn path(&mut self) -> Result<PeerPath, PersistError> {
        let n = self.u16()? as usize;
        let mut routers = Vec::with_capacity(n);
        for _ in 0..n {
            routers.push(RouterId(self.u32()?));
        }
        PeerPath::new(routers).map_err(|e| PersistError::Corrupt(format!("stored path: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u16(&mut buf, 0xBEEF);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.u8(), Err(PersistError::Truncated));
    }

    #[test]
    fn roundtrip_path() {
        let path = PeerPath::new(vec![RouterId(5), RouterId(3), RouterId(0)]).unwrap();
        let mut buf = Vec::new();
        put_path(&mut buf, &path);
        let mut r = Reader::new(&buf);
        assert_eq!(r.path().unwrap(), path);
    }

    #[test]
    fn len_prefix_rejects_absurd_lengths() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX);
        let mut r = Reader::new(&buf);
        assert_eq!(r.len_prefix(4), Err(PersistError::Truncated));
    }

    #[test]
    fn invalid_stored_path_is_corrupt_not_panic() {
        let mut buf = Vec::new();
        put_u16(&mut buf, 0); // empty path is invalid
        let mut r = Reader::new(&buf);
        assert!(matches!(r.path(), Err(PersistError::Corrupt(_))));
    }
}
