//! Durable snapshots + incremental journal for the directory.
//!
//! The directory's in-memory structures were built to serialise naturally:
//! the [`super::LeaseArena`] is a slab of generational slots plus an
//! open-addressed table that can be rebuilt from the slots, the
//! [`super::PathStore`] is a dedup arena whose hash index is derivable,
//! and epoch expiry buckets are plain `(slot, generation)` lists. This
//! module streams all of them into a **versioned snapshot** (magic +
//! version header, per-shard sections, trailing FNV-1a checksum) and an
//! **incremental journal** of batched churn ops appended between
//! snapshots ([`journal`]), written off the serving path by a bounded,
//! rate-limited background batch writer ([`writer`]).
//!
//! Recovery is fail-closed: a snapshot either verifies end-to-end
//! (checksum first, structural cross-checks during decode) and
//! reconstructs the *exact* pre-crash directory — conservation counters,
//! tombstones, adaptive-lease EWMA state, sweep statistics — or decoding
//! returns a typed [`PersistError`] and **no** partial directory. A
//! journal with a torn tail (the one legal kind of damage, since appends
//! can be cut mid-record by a crash) replays to the last intact record
//! and reports the truncation in [`RecoveryReport`].
//!
//! [`fault`] provides the fault-injection plans (torn tails, truncated
//! snapshots, flipped bytes, kill-between-batches) used by the
//! `restart_soak` bench and the durability proptests.

pub mod fault;
pub mod journal;
pub(crate) mod wire;
pub mod writer;

use std::fmt;

pub(crate) use wire::Reader;

/// Snapshot file magic: "NPSN" (NearPeer SNapshot).
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"NPSN";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u16 = 1;
/// Journal file magic: "NPJL" (NearPeer JournaL).
pub const JOURNAL_MAGIC: [u8; 4] = *b"NPJL";
/// Current journal format version.
pub const JOURNAL_VERSION: u16 = 1;

/// Typed persistence failure. Every decode path fails closed with one of
/// these — a caller never observes a partially-restored directory.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PersistError {
    /// The byte stream ended before the structure it promised.
    Truncated,
    /// The snapshot/journal does not start with the expected magic.
    BadMagic([u8; 4]),
    /// The format version is newer than this build understands.
    UnsupportedVersion(u16),
    /// The trailing checksum does not match the stored bytes.
    ChecksumMismatch {
        /// Checksum recorded in the file trailer.
        stored: u64,
        /// Checksum recomputed over the preceding bytes.
        computed: u64,
    },
    /// A structural invariant failed while decoding (dangling path ref,
    /// non-power-of-two table, free-list entry pointing at a live slot, …).
    Corrupt(String),
    /// The state uses a feature the snapshot format cannot carry yet
    /// (e.g. super-peer directories).
    Unsupported(String),
    /// An underlying I/O operation failed (file media only).
    Io(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Truncated => write!(f, "byte stream truncated"),
            PersistError::BadMagic(m) => write!(f, "bad magic {m:?}"),
            PersistError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            PersistError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            PersistError::Corrupt(msg) => write!(f, "corrupt stream: {msg}"),
            PersistError::Unsupported(msg) => write!(f, "unsupported state: {msg}"),
            PersistError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e.to_string())
    }
}

/// What a [`crate::ManagementServer::recover`] call reconstructed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Size of the verified snapshot, bytes.
    pub snapshot_bytes: usize,
    /// Journal records replayed on top of the snapshot.
    pub journal_records: u64,
    /// Journal bytes consumed (up to the last intact record).
    pub journal_bytes: usize,
    /// True if the journal ended in a torn (incomplete or corrupt) tail
    /// that was discarded; recovery stopped at the last consistent point.
    pub journal_torn_tail: bool,
}

/// FNV-1a 64-bit over `bytes` — the snapshot trailer and per-record
/// journal checksum. Not cryptographic; it detects torn writes and bit
/// rot, which is the failure model here.
pub(crate) fn checksum(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_stable_and_sensitive() {
        assert_eq!(checksum(b""), 0xcbf2_9ce4_8422_2325);
        let a = checksum(b"nearpeer");
        let mut flipped = b"nearpeer".to_vec();
        flipped[3] ^= 0x01;
        assert_ne!(a, checksum(&flipped));
        assert_eq!(a, checksum(b"nearpeer"));
    }

    #[test]
    fn errors_display_without_panicking() {
        let cases = [
            PersistError::Truncated,
            PersistError::BadMagic(*b"XXXX"),
            PersistError::UnsupportedVersion(9),
            PersistError::ChecksumMismatch {
                stored: 1,
                computed: 2,
            },
            PersistError::Corrupt("dangling ref".into()),
            PersistError::Unsupported("super peers".into()),
            PersistError::Io("disk gone".into()),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }
}
