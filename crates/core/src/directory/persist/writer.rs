//! The background durability writer: a bounded, rate-limited batch
//! mailbox that keeps persistence off the serving path.
//!
//! Callers enqueue [`JournalOp`]s (cheap, blocking only when the bounded
//! queue is full — real backpressure instead of unbounded memory) and
//! *offer* snapshots. One worker thread (reusing the runtime's
//! batch-draining mailbox loop) drains everything queued per wake and
//! applies it **in order** to a [`DurableMedium`]: journal records are
//! buffered and appended once per batch; a snapshot install atomically
//! replaces the stored snapshot and truncates the journal, discarding any
//! ops buffered before it in the same batch (they are, by FIFO order,
//! already contained in the snapshot's state). Snapshot offers are
//! rate-limited: offers arriving within `min_snapshot_interval` of the
//! last install are counted and dropped, so an eager snapshot cadence
//! degrades to skipped offers, never to a stalled serving thread.
//!
//! Failure model is fail-stop: the first medium error (or the configured
//! `kill_after_batches` fault point) parks the worker permanently; the
//! durable bytes end at a batch boundary, exactly like a machine that
//! died between flushes. [`WriterStats::error`] reports what happened.

use super::journal::{self, JournalOp};
use crate::runtime::mailbox::{spawn_batch_worker_observed, MailboxObs};
use crate::telemetry::{Counter, Gauge, Histogram, TelemetryRegistry};
use std::fs;
use std::io::{Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Where the durability writer persists bytes. Implementations must make
/// [`DurableMedium::install_snapshot`] atomic-ish: after it returns, the
/// stored snapshot is the new one and the journal is empty.
pub trait DurableMedium: Send + 'static {
    /// Appends raw journal bytes (header + records, already framed).
    fn append_journal(&mut self, bytes: &[u8]) -> std::io::Result<()>;
    /// Replaces the stored snapshot and truncates the journal.
    fn install_snapshot(&mut self, snapshot: &[u8]) -> std::io::Result<()>;
}

/// The durable bytes held by a [`MemoryMedium`] — what a recovery would
/// read back after a simulated crash.
#[derive(Debug, Default, Clone)]
pub struct DurableBytes {
    /// Last installed snapshot, if any.
    pub snapshot: Option<Vec<u8>>,
    /// Journal appended since that snapshot (header + records).
    pub journal: Vec<u8>,
}

/// In-memory medium for tests, benches, and crash simulation: the bytes
/// survive the writer via a shared handle, like a disk surviving a
/// process.
#[derive(Debug, Default)]
pub struct MemoryMedium {
    store: Arc<Mutex<DurableBytes>>,
}

impl MemoryMedium {
    /// Creates an empty medium.
    pub fn new() -> Self {
        MemoryMedium::default()
    }

    /// The shared handle to the durable bytes; clone it before handing
    /// the medium to [`DurabilityWriter::spawn`].
    pub fn handle(&self) -> Arc<Mutex<DurableBytes>> {
        Arc::clone(&self.store)
    }
}

impl DurableMedium for MemoryMedium {
    fn append_journal(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.store.lock().unwrap().journal.extend_from_slice(bytes);
        Ok(())
    }

    fn install_snapshot(&mut self, snapshot: &[u8]) -> std::io::Result<()> {
        let mut store = self.store.lock().unwrap();
        store.snapshot = Some(snapshot.to_vec());
        store.journal.clear();
        Ok(())
    }
}

/// File-backed medium: `snapshot.bin` (written via tmp + rename) and
/// `journal.log` (append + flush) inside one directory. Starts a fresh
/// journal epoch: the journal file is truncated on creation, so recover
/// *before* creating a medium over the same directory.
#[derive(Debug)]
pub struct FileMedium {
    dir: PathBuf,
    journal: fs::File,
}

impl FileMedium {
    /// Opens (creating if needed) `dir` and truncates its journal.
    pub fn create(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let journal = fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(dir.join("journal.log"))?;
        Ok(FileMedium { dir, journal })
    }

    /// Path of the snapshot file inside the medium's directory.
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot.bin")
    }

    /// Path of the journal file inside the medium's directory.
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join("journal.log")
    }
}

impl DurableMedium for FileMedium {
    fn append_journal(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.journal.write_all(bytes)?;
        self.journal.flush()
    }

    fn install_snapshot(&mut self, snapshot: &[u8]) -> std::io::Result<()> {
        let tmp = self.dir.join("snapshot.tmp");
        fs::write(&tmp, snapshot)?;
        fs::rename(&tmp, self.snapshot_path())?;
        self.journal.set_len(0)?;
        self.journal.seek(SeekFrom::Start(0))?;
        Ok(())
    }
}

/// Tuning for a [`DurabilityWriter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriterConfig {
    /// Bounded mailbox depth (ops + snapshot offers). A full queue blocks
    /// the producer — bounded memory under a stalled disk.
    pub queue_capacity: usize,
    /// Minimum spacing between snapshot installs; offers inside the
    /// window are counted as skipped.
    pub min_snapshot_interval: Duration,
    /// Fault point: stop persisting after this many batches (the journal
    /// ends at a batch boundary, like a machine dying between flushes).
    pub kill_after_batches: Option<u64>,
}

impl Default for WriterConfig {
    fn default() -> Self {
        WriterConfig {
            queue_capacity: 4096,
            min_snapshot_interval: Duration::from_millis(500),
            kill_after_batches: None,
        }
    }
}

/// Counters mirrored out of the worker thread.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriterStats {
    /// Journal ops accepted by the worker.
    pub records: u64,
    /// Batches the worker processed.
    pub batches: u64,
    /// Snapshots actually installed.
    pub snapshots_written: u64,
    /// Snapshot offers dropped by rate limiting.
    pub snapshots_skipped: u64,
    /// Journal bytes appended to the medium since the last install.
    pub journal_bytes: u64,
    /// First medium error (the worker is parked after it), if any.
    pub error: Option<String>,
}

/// Worker-side counters as shared telemetry handles, so a registry that
/// adopts them ([`DurabilityWriter::bind_telemetry`]) scrapes the same
/// atomics the legacy [`WriterStats`] snapshot reads.
#[derive(Default)]
struct SharedStats {
    records: Arc<Counter>,
    batches: Arc<Counter>,
    snapshots_written: Arc<Counter>,
    snapshots_skipped: Arc<Counter>,
    journal_bytes: Arc<Gauge>,
    flush_us: Arc<Histogram>,
    batch_size: Arc<Histogram>,
    queue_depth: Arc<Gauge>,
    error: Mutex<Option<String>>,
}

impl SharedStats {
    fn snapshot(&self) -> WriterStats {
        WriterStats {
            records: self.records.get(),
            batches: self.batches.get(),
            snapshots_written: self.snapshots_written.get(),
            snapshots_skipped: self.snapshots_skipped.get(),
            journal_bytes: self.journal_bytes.get(),
            error: self.error.lock().unwrap().clone(),
        }
    }
}

enum Cmd {
    Append(JournalOp),
    Snapshot(Vec<u8>),
}

/// Handle to the background durability worker.
pub struct DurabilityWriter {
    tx: Option<crossbeam::channel::Sender<Cmd>>,
    handle: Option<JoinHandle<()>>,
    shared: Arc<SharedStats>,
}

impl std::fmt::Debug for DurabilityWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurabilityWriter")
            .field("stats", &self.shared.snapshot())
            .finish()
    }
}

impl DurabilityWriter {
    /// Spawns the worker thread over `medium`.
    pub fn spawn<M: DurableMedium>(mut medium: M, config: WriterConfig) -> Self {
        let (tx, rx) = crossbeam::channel::bounded::<Cmd>(config.queue_capacity);
        let shared = Arc::new(SharedStats::default());
        let worker_shared = Arc::clone(&shared);
        let mut last_snapshot: Option<Instant> = None;
        let mut journal_len: usize = 0;
        let mut killed = false;
        let mut buf: Vec<u8> = Vec::new();
        // The mailbox loop increments `batches` (same Arc) before each
        // apply, and samples queue depth/batch size for us.
        let obs = MailboxObs {
            batches: Arc::clone(&shared.batches),
            items: Arc::new(Counter::new()),
            batch_size: Arc::clone(&shared.batch_size),
            queue_depth: Arc::clone(&shared.queue_depth),
        };
        let handle = spawn_batch_worker_observed(
            "durability-writer".into(),
            rx,
            crate::runtime::mailbox::DEFAULT_DRAIN_CAP,
            Some(obs),
            move |batch| {
                if killed {
                    return;
                }
                let batch_no = worker_shared.batches.get();
                if let Some(limit) = config.kill_after_batches {
                    if batch_no > limit {
                        killed = true;
                        return;
                    }
                }
                buf.clear();
                for cmd in batch {
                    match cmd {
                        Cmd::Append(op) => {
                            journal::append_record(&mut buf, &op);
                            worker_shared.records.inc();
                        }
                        Cmd::Snapshot(bytes) => {
                            let now = Instant::now();
                            let due = last_snapshot.is_none_or(|t| {
                                now.duration_since(t) >= config.min_snapshot_interval
                            });
                            if !due {
                                worker_shared.snapshots_skipped.inc();
                                continue;
                            }
                            let flush_start = Instant::now();
                            let installed = medium.install_snapshot(&bytes);
                            worker_shared
                                .flush_us
                                .record(flush_start.elapsed().as_micros() as u64);
                            match installed {
                                Ok(()) => {
                                    // Ops buffered before this offer are part
                                    // of the snapshot's state; dropping them
                                    // keeps replay exactly-once.
                                    buf.clear();
                                    journal_len = 0;
                                    worker_shared.journal_bytes.set(0);
                                    last_snapshot = Some(now);
                                    worker_shared.snapshots_written.inc();
                                }
                                Err(e) => {
                                    *worker_shared.error.lock().unwrap() =
                                        Some(format!("install_snapshot: {e}"));
                                    killed = true;
                                    return;
                                }
                            }
                        }
                    }
                }
                if buf.is_empty() {
                    return;
                }
                let mut out = Vec::with_capacity(buf.len() + 6);
                if journal_len == 0 {
                    journal::journal_header(&mut out);
                }
                out.extend_from_slice(&buf);
                let flush_start = Instant::now();
                let appended = medium.append_journal(&out);
                worker_shared
                    .flush_us
                    .record(flush_start.elapsed().as_micros() as u64);
                match appended {
                    Ok(()) => {
                        journal_len += out.len();
                        worker_shared.journal_bytes.add(out.len() as u64);
                    }
                    Err(e) => {
                        *worker_shared.error.lock().unwrap() = Some(format!("append_journal: {e}"));
                        killed = true;
                    }
                }
            },
        );
        DurabilityWriter {
            tx: Some(tx),
            handle: Some(handle),
            shared,
        }
    }

    /// Enqueues one journal op, blocking while the queue is full.
    /// Returns false if the worker is gone (after [`DurabilityWriter::close`]).
    pub fn append(&self, op: JournalOp) -> bool {
        match &self.tx {
            Some(tx) => tx.send(Cmd::Append(op)).is_ok(),
            None => false,
        }
    }

    /// Offers a serialized snapshot; the worker installs it unless rate
    /// limiting drops the offer. Blocks while the queue is full.
    pub fn offer_snapshot(&self, snapshot: Vec<u8>) -> bool {
        match &self.tx {
            Some(tx) => tx.send(Cmd::Snapshot(snapshot)).is_ok(),
            None => false,
        }
    }

    /// Live counters.
    pub fn stats(&self) -> WriterStats {
        self.shared.snapshot()
    }

    /// Adopts the writer's counters into `reg` under `writer_*` names:
    /// op/batch/snapshot counters, journal-bytes and queue-depth gauges,
    /// and the medium flush-latency + drain-batch-size histograms.
    pub fn bind_telemetry(&self, reg: &TelemetryRegistry) {
        reg.adopt_counter("writer_records_total", "", self.shared.records.clone());
        reg.adopt_counter("writer_batches_total", "", self.shared.batches.clone());
        reg.adopt_counter(
            "writer_snapshots_written_total",
            "",
            self.shared.snapshots_written.clone(),
        );
        reg.adopt_counter(
            "writer_snapshots_skipped_total",
            "",
            self.shared.snapshots_skipped.clone(),
        );
        reg.adopt_gauge(
            "writer_journal_bytes",
            "",
            self.shared.journal_bytes.clone(),
        );
        reg.adopt_gauge("writer_queue_depth", "", self.shared.queue_depth.clone());
        reg.adopt_histogram("writer_flush_us", "", self.shared.flush_us.clone());
        reg.adopt_histogram("writer_batch_size", "", self.shared.batch_size.clone());
    }

    /// Drains the queue, stops the worker, and returns the final stats.
    pub fn close(mut self) -> WriterStats {
        self.tx = None;
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        self.shared.snapshot()
    }
}

impl Drop for DurabilityWriter {
    fn drop(&mut self) {
        self.tx = None;
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::persist::journal::JournalReader;
    use crate::ids::PeerId;

    #[test]
    fn ops_land_in_the_journal_in_order() {
        let medium = MemoryMedium::new();
        let store = medium.handle();
        let writer = DurabilityWriter::spawn(medium, WriterConfig::default());
        for i in 0..100 {
            assert!(writer.append(JournalOp::Deregister(PeerId(i))));
        }
        let stats = writer.close();
        assert_eq!(stats.records, 100);
        assert!(stats.error.is_none());
        let bytes = store.lock().unwrap().journal.clone();
        let mut reader = JournalReader::new(&bytes).unwrap();
        let mut got = Vec::new();
        while let Some(op) = reader.next_op() {
            got.push(op);
        }
        assert_eq!(
            got,
            (0..100)
                .map(|i| JournalOp::Deregister(PeerId(i)))
                .collect::<Vec<_>>()
        );
        assert!(!reader.torn_tail());
    }

    #[test]
    fn snapshot_install_truncates_journal_and_drops_covered_ops() {
        let medium = MemoryMedium::new();
        let store = medium.handle();
        let writer = DurabilityWriter::spawn(
            medium,
            WriterConfig {
                min_snapshot_interval: Duration::ZERO,
                ..WriterConfig::default()
            },
        );
        writer.append(JournalOp::Deregister(PeerId(1)));
        writer.offer_snapshot(vec![0xAB; 16]);
        writer.append(JournalOp::Deregister(PeerId(2)));
        let stats = writer.close();
        assert_eq!(stats.snapshots_written, 1);
        let bytes = store.lock().unwrap().clone();
        assert_eq!(bytes.snapshot.as_deref(), Some(&[0xAB; 16][..]));
        let mut reader = JournalReader::new(&bytes.journal).unwrap();
        let mut got = Vec::new();
        while let Some(op) = reader.next_op() {
            got.push(op);
        }
        // Only the op after the install survives in the journal.
        assert_eq!(got, vec![JournalOp::Deregister(PeerId(2))]);
    }

    #[test]
    fn rate_limit_skips_rapid_snapshot_offers() {
        let medium = MemoryMedium::new();
        let writer = DurabilityWriter::spawn(
            medium,
            WriterConfig {
                min_snapshot_interval: Duration::from_secs(3600),
                ..WriterConfig::default()
            },
        );
        writer.offer_snapshot(vec![1]);
        writer.offer_snapshot(vec![2]);
        writer.offer_snapshot(vec![3]);
        let stats = writer.close();
        assert_eq!(stats.snapshots_written, 1);
        assert_eq!(stats.snapshots_skipped, 2);
    }

    #[test]
    fn kill_after_batches_parks_the_worker_at_a_batch_boundary() {
        let medium = MemoryMedium::new();
        let store = medium.handle();
        let writer = DurabilityWriter::spawn(
            medium,
            WriterConfig {
                queue_capacity: 1, // force one op per batch
                kill_after_batches: Some(2),
                ..WriterConfig::default()
            },
        );
        for i in 0..10 {
            writer.append(JournalOp::Deregister(PeerId(i)));
            // Give the worker time to drain, so each op lands in its own
            // batch and the kill point bites before the last op.
            std::thread::sleep(Duration::from_millis(2));
        }
        writer.close();
        let bytes = store.lock().unwrap().journal.clone();
        let mut reader = JournalReader::new(&bytes).unwrap();
        let mut got = 0;
        while reader.next_op().is_some() {
            got += 1;
        }
        // The journal is a clean prefix: intact records, no torn tail.
        assert!(!reader.torn_tail());
        assert!(
            (1..10).contains(&got),
            "expected a strict prefix, got {got}"
        );
    }

    #[test]
    fn file_medium_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "nearpeer-writer-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let medium = FileMedium::create(&dir).unwrap();
        let snap_path = medium.snapshot_path();
        let journal_path = medium.journal_path();
        let writer = DurabilityWriter::spawn(
            medium,
            WriterConfig {
                min_snapshot_interval: Duration::ZERO,
                ..WriterConfig::default()
            },
        );
        writer.offer_snapshot(vec![7; 8]);
        writer.append(JournalOp::Deregister(PeerId(9)));
        let stats = writer.close();
        assert!(stats.error.is_none(), "{:?}", stats.error);
        assert_eq!(fs::read(&snap_path).unwrap(), vec![7; 8]);
        let journal = fs::read(&journal_path).unwrap();
        let mut reader = JournalReader::new(&journal).unwrap();
        assert_eq!(reader.next_op(), Some(JournalOp::Deregister(PeerId(9))));
        let _ = fs::remove_dir_all(&dir);
    }
}
