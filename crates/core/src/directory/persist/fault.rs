//! Fault-injection plans for the durability pipeline.
//!
//! A [`FaultPlan`] describes damage to inflict on the persisted bytes
//! (and, via `kill_after_batches`, on the background writer) before a
//! recovery attempt — the same failure classes a real crash or sick disk
//! produces: torn tails, truncated files, flipped bits, and a writer that
//! dies between batches. The `restart_soak` bench and the durability
//! proptests drive recovery through every arm of a plan and assert the
//! typed-error / last-consistent-point contract.

/// Declarative damage to apply to snapshot/journal bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Keep only the first N bytes of the snapshot (crash mid-write of a
    /// non-atomic snapshot copy). Recovery must fail closed.
    pub snapshot_truncate: Option<usize>,
    /// XOR the snapshot byte at this offset with 0xFF (bit rot). The
    /// offset is clamped to the last byte. Recovery must fail closed.
    pub snapshot_corrupt_at: Option<usize>,
    /// Drop the last N bytes of the journal (torn tail append). Recovery
    /// replays to the last intact record.
    pub journal_torn_tail: Option<usize>,
    /// XOR the journal byte at this offset with 0xFF. Replay stops at the
    /// damaged record (indistinguishable from a torn tail by design).
    pub journal_corrupt_at: Option<usize>,
    /// Kill the background writer after it has persisted N batches: the
    /// journal simply ends at a batch boundary, the strongest "crash
    /// between batches" point.
    pub kill_after_batches: Option<u64>,
}

impl FaultPlan {
    /// The no-fault plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Applies the snapshot arms of the plan to `bytes`.
    pub fn damage_snapshot(&self, bytes: &mut Vec<u8>) {
        if let Some(keep) = self.snapshot_truncate {
            bytes.truncate(keep);
        }
        if let Some(at) = self.snapshot_corrupt_at {
            flip(bytes, at);
        }
    }

    /// Applies the journal arms of the plan to `bytes`.
    pub fn damage_journal(&self, bytes: &mut Vec<u8>) {
        if let Some(drop_tail) = self.journal_torn_tail {
            let keep = bytes.len().saturating_sub(drop_tail);
            bytes.truncate(keep);
        }
        if let Some(at) = self.journal_corrupt_at {
            flip(bytes, at);
        }
    }
}

fn flip(bytes: &mut [u8], at: usize) {
    if let Some(last) = bytes.len().checked_sub(1) {
        bytes[at.min(last)] ^= 0xFF;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn damage_is_deterministic_and_clamped() {
        let mut a = vec![1u8, 2, 3, 4, 5];
        let plan = FaultPlan {
            snapshot_truncate: Some(3),
            snapshot_corrupt_at: Some(99),
            ..FaultPlan::none()
        };
        plan.damage_snapshot(&mut a);
        assert_eq!(a, vec![1, 2, 3 ^ 0xFF]);

        let mut j = vec![9u8, 8, 7];
        let plan = FaultPlan {
            journal_torn_tail: Some(10),
            ..FaultPlan::none()
        };
        plan.damage_journal(&mut j);
        assert!(j.is_empty());
        // Flipping an empty buffer is a no-op, not a panic.
        let plan = FaultPlan {
            journal_corrupt_at: Some(0),
            ..FaultPlan::none()
        };
        plan.damage_journal(&mut j);
        assert!(j.is_empty());
    }
}
