//! The per-landmark path tree (trie of reversed routes).

use crate::ids::PeerId;
use crate::path::PeerPath;
use nearpeer_topology::RouterId;
use std::collections::HashMap;

const NO_NODE: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct TreeNode {
    router: RouterId,
    parent: u32,
    depth: u32,
    children: Vec<u32>,
    peers_here: Vec<PeerId>,
    subtree_peers: usize,
}

/// The tree formed by all stored routes towards one landmark, rooted at the
/// landmark's router — the structure drawn in the paper's Figure 1.
///
/// [`crate::RouterIndex`] is the query-optimal flat view; this trie is the
/// analytical view: branch points, subtree populations (super-peer regions,
/// W2), and tree statistics. The two are kept consistent by the
/// [`crate::ManagementServer`].
///
/// Route inconsistencies (a router reported with two different parents,
/// possible with decreased traceroutes) are resolved first-writer-wins and
/// counted in [`PathTree::inconsistencies`].
#[derive(Debug, Clone)]
pub struct PathTree {
    nodes: Vec<TreeNode>,
    by_router: HashMap<RouterId, u32>,
    peer_node: HashMap<PeerId, u32>,
    inconsistencies: usize,
}

impl PathTree {
    /// Creates the tree for a landmark whose router is `root`.
    pub fn new(root: RouterId) -> Self {
        let root_node = TreeNode {
            router: root,
            parent: NO_NODE,
            depth: 0,
            children: Vec::new(),
            peers_here: Vec::new(),
            subtree_peers: 0,
        };
        Self {
            nodes: vec![root_node],
            by_router: HashMap::from([(root, 0)]),
            peer_node: HashMap::new(),
            inconsistencies: 0,
        }
    }

    /// The landmark's router.
    pub fn root(&self) -> RouterId {
        self.nodes[0].router
    }

    /// Number of tree nodes (routers seen on any path).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of peers attached to the tree.
    pub fn n_peers(&self) -> usize {
        self.peer_node.len()
    }

    /// How many path insertions disagreed with an already-recorded parent
    /// (route instability or probe holes).
    pub fn inconsistencies(&self) -> usize {
        self.inconsistencies
    }

    /// Inserts a peer's path. The path must terminate at this tree's root;
    /// returns `false` (and stores nothing) otherwise or if the peer is
    /// already present.
    pub fn insert(&mut self, peer: PeerId, path: &PeerPath) -> bool {
        if path.landmark_router() != self.root() || self.peer_node.contains_key(&peer) {
            return false;
        }
        // Walk from the landmark outward (reverse of the stored order).
        let mut current = 0u32; // root index
        for &router in path.routers().iter().rev().skip(1) {
            let (idx, conflicted) = self.child(current, router);
            if conflicted {
                self.inconsistencies += 1;
            }
            current = idx;
        }
        self.nodes[current as usize].peers_here.push(peer);
        self.peer_node.insert(peer, current);
        // Bump subtree counts up to the root.
        let mut up = current;
        loop {
            self.nodes[up as usize].subtree_peers += 1;
            if up == 0 {
                break;
            }
            up = self.nodes[up as usize].parent;
        }
        true
    }

    /// Inserts a whole batch of peers, amortising the descent: consecutive
    /// paths sharing a landmark-side prefix reuse the previous walk instead
    /// of re-resolving every router, and subtree populations are propagated
    /// once at the end (`O(nodes + batch)`) instead of once per peer
    /// (`O(depth · batch)`).
    ///
    /// State-equivalent to calling [`Self::insert`] per item in order —
    /// including the per-walk [`Self::inconsistencies`] accounting — and
    /// skips items the sequential calls would reject (wrong root,
    /// duplicate peer). Returns the number of peers inserted.
    pub fn insert_batch<'a, I>(&mut self, items: I) -> usize
    where
        I: IntoIterator<Item = (PeerId, &'a PeerPath)>,
    {
        // The previous item's descent, root-outward: (router, node index,
        // whether that step counted an inconsistency). A new path reuses
        // the longest common prefix; the recorded flag replays the
        // per-walk conflict count the skipped lookups would have added.
        let mut walk: Vec<(RouterId, u32, bool)> = Vec::new();
        // Pending subtree-population additions, indexed by node.
        let mut delta: Vec<u32> = Vec::new();
        let mut inserted = 0usize;
        for (peer, path) in items {
            if path.landmark_router() != self.root() || self.peer_node.contains_key(&peer) {
                continue;
            }
            let outward = || path.routers().iter().rev().skip(1).copied();
            let lcp = outward()
                .zip(walk.iter())
                .take_while(|&(router, step)| router == step.0)
                .count();
            walk.truncate(lcp);
            self.inconsistencies += walk.iter().filter(|step| step.2).count();
            let mut current = walk.last().map_or(0, |step| step.1);
            for router in outward().skip(lcp) {
                let (idx, conflicted) = self.child(current, router);
                if conflicted {
                    self.inconsistencies += 1;
                }
                walk.push((router, idx, conflicted));
                current = idx;
            }
            self.nodes[current as usize].peers_here.push(peer);
            self.peer_node.insert(peer, current);
            if delta.len() < self.nodes.len() {
                delta.resize(self.nodes.len(), 0);
            }
            delta[current as usize] += 1;
            inserted += 1;
        }
        // Children always have larger indices than their parents (nodes are
        // appended during descent), so one high-to-low sweep pushes every
        // pending count up to the root.
        for idx in (0..delta.len()).rev() {
            let d = delta[idx];
            if d == 0 {
                continue;
            }
            self.nodes[idx].subtree_peers += d as usize;
            let parent = self.nodes[idx].parent;
            if parent != NO_NODE {
                delta[parent as usize] += d;
            }
        }
        inserted
    }

    /// Finds or creates the child of `parent_idx` for `router`; the flag
    /// reports a parent conflict (same router already attached elsewhere —
    /// the caller decides how to count it).
    fn child(&mut self, parent_idx: u32, router: RouterId) -> (u32, bool) {
        if let Some(&existing) = self.by_router.get(&router) {
            // Same router reported under a different parent: keep the
            // first-seen attachment, report the conflict.
            let conflicted = self.nodes[existing as usize].parent != parent_idx && existing != 0;
            return (existing, conflicted);
        }
        let idx = self.nodes.len() as u32;
        let depth = self.nodes[parent_idx as usize].depth + 1;
        self.nodes.push(TreeNode {
            router,
            parent: parent_idx,
            depth,
            children: Vec::new(),
            peers_here: Vec::new(),
            subtree_peers: 0,
        });
        self.nodes[parent_idx as usize].children.push(idx);
        self.by_router.insert(router, idx);
        (idx, false)
    }

    /// Removes a peer (its routers stay in the tree; only population counts
    /// change).
    pub fn remove(&mut self, peer: PeerId) -> bool {
        let Some(node) = self.peer_node.remove(&peer) else {
            return false;
        };
        let here = &mut self.nodes[node as usize].peers_here;
        if let Some(pos) = here.iter().position(|&p| p == peer) {
            here.remove(pos);
        }
        let mut up = node;
        loop {
            self.nodes[up as usize].subtree_peers -= 1;
            if up == 0 {
                break;
            }
            up = self.nodes[up as usize].parent;
        }
        true
    }

    /// The branch point (deepest common ancestor) of two attached peers and
    /// the resulting `dtree`; `None` if either peer is unknown.
    pub fn branch_point(&self, a: PeerId, b: PeerId) -> Option<(RouterId, u32)> {
        let mut ia = *self.peer_node.get(&a)?;
        let mut ib = *self.peer_node.get(&b)?;
        let (mut da, mut db) = (self.nodes[ia as usize].depth, self.nodes[ib as usize].depth);
        let mut hops = 0u32;
        while da > db {
            ia = self.nodes[ia as usize].parent;
            da -= 1;
            hops += 1;
        }
        while db > da {
            ib = self.nodes[ib as usize].parent;
            db -= 1;
            hops += 1;
        }
        while ia != ib {
            ia = self.nodes[ia as usize].parent;
            ib = self.nodes[ib as usize].parent;
            hops += 2;
        }
        Some((self.nodes[ia as usize].router, hops))
    }

    /// Number of peers attached in the subtree of `router`; `None` if the
    /// router never appeared on a stored path.
    pub fn subtree_population(&self, router: RouterId) -> Option<usize> {
        self.by_router
            .get(&router)
            .map(|&i| self.nodes[i as usize].subtree_peers)
    }

    /// Depth (hops from the landmark) at which `router` sits in the tree.
    pub fn depth_of(&self, router: RouterId) -> Option<u32> {
        self.by_router
            .get(&router)
            .map(|&i| self.nodes[i as usize].depth)
    }

    /// The routers at exactly `depth` hops from the landmark, with their
    /// subtree populations — the candidate super-peer regions of W2.
    pub fn regions_at_depth(&self, depth: u32) -> Vec<(RouterId, usize)> {
        self.nodes
            .iter()
            .filter(|n| n.depth == depth)
            .map(|n| (n.router, n.subtree_peers))
            .collect()
    }

    /// Renders the landmark tree as Graphviz DOT: routers as nodes (core
    /// root boxed), peer counts annotated — handy for inspecting what the
    /// management server actually learned.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph pathtree {\n  rankdir=BT;\n");
        for (i, node) in self.nodes.iter().enumerate() {
            let label = if node.peers_here.is_empty() {
                format!("{}", node.router)
            } else {
                format!("{} ({} peers)", node.router, node.peers_here.len())
            };
            let shape = if i == 0 { "box" } else { "ellipse" };
            out.push_str(&format!("  n{i} [label=\"{label}\", shape={shape}];\n"));
        }
        for (i, node) in self.nodes.iter().enumerate().skip(1) {
            out.push_str(&format!("  n{i} -> n{};\n", node.parent));
        }
        out.push_str("}\n");
        out
    }

    /// All peers attached in the subtree rooted at `router` (DFS order).
    pub fn peers_under(&self, router: RouterId) -> Vec<PeerId> {
        let Some(&start) = self.by_router.get(&router) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut stack = vec![start];
        while let Some(i) = stack.pop() {
            let node = &self.nodes[i as usize];
            out.extend_from_slice(&node.peers_here);
            stack.extend_from_slice(&node.children);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(ids: &[u32]) -> PeerPath {
        PeerPath::new(ids.iter().map(|&i| RouterId(i)).collect()).unwrap()
    }

    fn sample_tree() -> PathTree {
        // Same topology as the RouterIndex tests: root 0, spine 1,
        // branches 2 (with leaves 4, 5) and 3 (leaf 6).
        let mut t = PathTree::new(RouterId(0));
        assert!(t.insert(PeerId(0xA), &path(&[4, 2, 1, 0])));
        assert!(t.insert(PeerId(0xB), &path(&[5, 2, 1, 0])));
        assert!(t.insert(PeerId(0xC), &path(&[6, 3, 1, 0])));
        assert!(t.insert(PeerId(0xD), &path(&[2, 1, 0])));
        t
    }

    #[test]
    fn construction_counts() {
        let t = sample_tree();
        assert_eq!(t.root(), RouterId(0));
        assert_eq!(t.n_nodes(), 7);
        assert_eq!(t.n_peers(), 4);
        assert_eq!(t.inconsistencies(), 0);
        assert_eq!(t.subtree_population(RouterId(0)), Some(4));
        assert_eq!(t.subtree_population(RouterId(2)), Some(3)); // A, B, D
        assert_eq!(t.subtree_population(RouterId(3)), Some(1));
        assert_eq!(t.subtree_population(RouterId(99)), None);
    }

    #[test]
    fn rejects_wrong_root_and_duplicates() {
        let mut t = sample_tree();
        assert!(!t.insert(PeerId(0xE), &path(&[7, 8, 42]))); // wrong landmark
        assert!(!t.insert(PeerId(0xA), &path(&[4, 2, 1, 0]))); // duplicate
        assert_eq!(t.n_peers(), 4);
    }

    #[test]
    fn branch_points() {
        let t = sample_tree();
        assert_eq!(
            t.branch_point(PeerId(0xA), PeerId(0xB)),
            Some((RouterId(2), 2))
        );
        assert_eq!(
            t.branch_point(PeerId(0xA), PeerId(0xC)),
            Some((RouterId(1), 4))
        );
        assert_eq!(
            t.branch_point(PeerId(0xA), PeerId(0xD)),
            Some((RouterId(2), 1))
        );
        assert_eq!(
            t.branch_point(PeerId(0xA), PeerId(0xA)),
            Some((RouterId(4), 0))
        );
        assert_eq!(t.branch_point(PeerId(0xA), PeerId(0xF)), None);
    }

    #[test]
    fn dtree_agrees_with_peerpath_dtree() {
        let t = sample_tree();
        let pa = path(&[4, 2, 1, 0]);
        let pc = path(&[6, 3, 1, 0]);
        let via_paths = pa.dtree(&pc).unwrap().1;
        let via_tree = t.branch_point(PeerId(0xA), PeerId(0xC)).unwrap().1;
        assert_eq!(via_paths, via_tree);
    }

    #[test]
    fn removal_updates_counts() {
        let mut t = sample_tree();
        assert!(t.remove(PeerId(0xB)));
        assert!(!t.remove(PeerId(0xB)));
        assert_eq!(t.n_peers(), 3);
        assert_eq!(t.subtree_population(RouterId(2)), Some(2));
        assert_eq!(t.subtree_population(RouterId(5)), Some(0));
    }

    #[test]
    fn regions_and_peers_under() {
        let t = sample_tree();
        let mut regions = t.regions_at_depth(2);
        regions.sort();
        assert_eq!(regions, vec![(RouterId(2), 3), (RouterId(3), 1)]);
        let mut under2 = t.peers_under(RouterId(2));
        under2.sort();
        assert_eq!(under2, vec![PeerId(0xA), PeerId(0xB), PeerId(0xD)]);
        assert!(t.peers_under(RouterId(77)).is_empty());
    }

    #[test]
    fn inconsistent_parent_counted() {
        let mut t = PathTree::new(RouterId(0));
        t.insert(PeerId(1), &path(&[5, 2, 1, 0]));
        // Router 5 now claims parent 3 instead of 2 (hole in the trace).
        t.insert(PeerId(2), &path(&[6, 5, 3, 1, 0]));
        assert_eq!(t.inconsistencies(), 1);
        // First-writer-wins: 5 stays under 2.
        assert_eq!(t.depth_of(RouterId(5)), Some(3));
    }

    #[test]
    fn dot_rendering() {
        let t = sample_tree();
        let dot = t.to_dot();
        assert!(dot.starts_with("digraph pathtree {"));
        assert!(dot.contains("shape=box"), "root is boxed");
        assert!(dot.contains("(1 peers)"), "peer counts annotated:\n{dot}");
        // Every non-root node has exactly one parent edge.
        assert_eq!(dot.matches(" -> ").count(), t.n_nodes() - 1);
    }

    #[test]
    fn insert_batch_matches_sequential() {
        // Shared prefixes, an inconsistent parent, a duplicate and a
        // wrong-root path — the batch must reproduce sequential state
        // exactly, counters included.
        let paths = [
            path(&[4, 2, 1, 0]),
            path(&[5, 2, 1, 0]),    // shares [2,1] with the previous walk
            path(&[6, 5, 3, 1, 0]), // router 5 re-parented: inconsistency
            path(&[7, 5, 3, 1, 0]), // same conflicting walk again
            path(&[2, 1, 0]),
            path(&[9, 8, 42]), // wrong root (never inserted)
        ];
        let mut seq = PathTree::new(RouterId(0));
        let mut inserted_seq = 0;
        for (i, p) in paths.iter().enumerate() {
            if seq.insert(PeerId(i as u64), p) {
                inserted_seq += 1;
            }
            // A duplicate of peer 0 is a sequential no-op.
            assert!(!seq.insert(PeerId(0), p));
        }
        let mut batched = PathTree::new(RouterId(0));
        let mut items: Vec<(PeerId, &PeerPath)> = paths
            .iter()
            .enumerate()
            .map(|(i, p)| (PeerId(i as u64), p))
            .collect();
        // Interleave the duplicates exactly like the sequential loop did.
        let dups: Vec<(PeerId, &PeerPath)> = paths.iter().map(|p| (PeerId(0), p)).collect();
        let mut interleaved = Vec::new();
        for (item, dup) in items.drain(..).zip(dups) {
            interleaved.push(item);
            interleaved.push(dup);
        }
        let inserted = batched.insert_batch(interleaved);
        assert_eq!(inserted, inserted_seq);
        assert_eq!(batched.n_nodes(), seq.n_nodes());
        assert_eq!(batched.n_peers(), seq.n_peers());
        assert_eq!(batched.inconsistencies(), seq.inconsistencies());
        assert_eq!(seq.inconsistencies(), 2, "one per conflicting walk");
        for p in &paths {
            for &r in p.routers() {
                assert_eq!(batched.depth_of(r), seq.depth_of(r), "{r}");
                assert_eq!(
                    batched.subtree_population(r),
                    seq.subtree_population(r),
                    "{r}"
                );
            }
        }
        assert_eq!(batched.to_dot(), seq.to_dot());
    }

    #[test]
    fn insert_batch_on_populated_tree() {
        let mut t = sample_tree();
        let extra = [path(&[7, 2, 1, 0]), path(&[8, 3, 1, 0])];
        let items: Vec<(PeerId, &PeerPath)> = extra
            .iter()
            .enumerate()
            .map(|(i, p)| (PeerId(100 + i as u64), p))
            .collect();
        assert_eq!(t.insert_batch(items), 2);
        assert_eq!(t.n_peers(), 6);
        assert_eq!(t.subtree_population(RouterId(2)), Some(4));
        assert_eq!(t.subtree_population(RouterId(0)), Some(6));
        assert_eq!(
            t.branch_point(PeerId(100), PeerId(0xA)),
            Some((RouterId(2), 2))
        );
    }

    #[test]
    fn depth_lookup() {
        let t = sample_tree();
        assert_eq!(t.depth_of(RouterId(0)), Some(0));
        assert_eq!(t.depth_of(RouterId(1)), Some(1));
        assert_eq!(t.depth_of(RouterId(6)), Some(3));
        assert_eq!(t.depth_of(RouterId(42)), None);
    }
}
