//! The generic mailbox worker behind every actor in [`crate::runtime`].
//!
//! One worker owns one blocking receive loop: it parks on the mailbox's
//! channel, and each time it wakes it drains **up to a cap** of what is
//! queued into a batch before applying it. The actors use this to amortise
//! their lock acquisitions — a shard worker takes its shard's write lock
//! once per batch, not once per operation — which is exactly the advantage
//! a mailbox has over callers contending on the lock directly. The cap
//! bounds how long one batch can hold that lock: under a flood the worker
//! applies a full batch, releases the lock, and immediately wakes again
//! for the leftovers still queued in the channel, so readers get a window
//! between batches instead of starving behind one unbounded drain.
//!
//! Lifecycle is channel-driven: a worker exits when every sender to its
//! mailbox is gone, so an actor shuts down by dropping its send handles
//! and joining the threads. No poison message, no shutdown flag.

use crate::telemetry::{Counter, Gauge, Histogram};
use crossbeam::channel::Receiver;
use std::sync::Arc;
use std::thread::{Builder, JoinHandle};

/// Default per-batch drain cap: large enough that lock amortisation is
/// intact (hundreds of ops per acquisition), small enough that a churn
/// flood cannot pin a shard's write lock for an unbounded stretch.
pub(crate) const DEFAULT_DRAIN_CAP: usize = 1024;

/// Telemetry handles for one mailbox worker, shared with the registry
/// that adopted them. All optional at the spawn site: an unobserved
/// worker costs nothing extra.
#[derive(Clone)]
pub(crate) struct MailboxObs {
    /// Batches applied.
    pub batches: Arc<Counter>,
    /// Items applied (sums batch lengths).
    pub items: Arc<Counter>,
    /// Distribution of batch sizes.
    pub batch_size: Arc<Histogram>,
    /// Items still queued, sampled after each drain.
    pub queue_depth: Arc<Gauge>,
}

/// Spawns a named worker thread that feeds `apply` with batches drained
/// from `rx`, at most `cap` items per batch. Every batch is non-empty;
/// leftovers beyond the cap stay queued and wake the worker again without
/// parking. The thread exits when the channel disconnects (all senders
/// dropped).
#[cfg(test)]
pub(crate) fn spawn_batch_worker<T, F>(
    name: String,
    rx: Receiver<T>,
    cap: usize,
    apply: F,
) -> JoinHandle<()>
where
    T: Send + 'static,
    F: FnMut(Vec<T>) + Send + 'static,
{
    spawn_batch_worker_observed(name, rx, cap, None, apply)
}

/// [`spawn_batch_worker`] with optional telemetry: batch count/size and
/// post-drain queue depth land in the given handles.
pub(crate) fn spawn_batch_worker_observed<T, F>(
    name: String,
    rx: Receiver<T>,
    cap: usize,
    obs: Option<MailboxObs>,
    mut apply: F,
) -> JoinHandle<()>
where
    T: Send + 'static,
    F: FnMut(Vec<T>) + Send + 'static,
{
    assert!(cap > 0, "drain cap must admit at least one item");
    Builder::new()
        .name(name)
        .spawn(move || {
            let mut batch = Vec::new();
            while let Ok(first) = rx.recv() {
                batch.push(first);
                while batch.len() < cap {
                    match rx.try_recv() {
                        Ok(more) => batch.push(more),
                        Err(_) => break,
                    }
                }
                if let Some(obs) = &obs {
                    obs.batches.inc();
                    obs.items.add(batch.len() as u64);
                    obs.batch_size.record(batch.len() as u64);
                    obs.queue_depth.set(rx.len() as u64);
                }
                apply(std::mem::take(&mut batch));
            }
        })
        .expect("spawn mailbox worker")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn worker_drains_batches_and_exits_on_disconnect() {
        let (tx, rx) = crossbeam::channel::unbounded::<u64>();
        let sum = Arc::new(AtomicUsize::new(0));
        let batches = Arc::new(AtomicUsize::new(0));
        let handle = {
            let (sum, batches) = (Arc::clone(&sum), Arc::clone(&batches));
            spawn_batch_worker("test-worker".into(), rx, DEFAULT_DRAIN_CAP, move |batch| {
                assert!(!batch.is_empty());
                batches.fetch_add(1, Ordering::Relaxed);
                sum.fetch_add(batch.iter().sum::<u64>() as usize, Ordering::Relaxed);
            })
        };
        for i in 1..=100u64 {
            tx.send(i).unwrap();
        }
        drop(tx);
        handle.join().unwrap();
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
        let n = batches.load(Ordering::Relaxed);
        assert!((1..=100).contains(&n), "batches in [1, 100], got {n}");
    }

    #[test]
    fn drain_cap_bounds_batches_without_losing_leftovers() {
        let (tx, rx) = crossbeam::channel::unbounded::<u64>();
        // Pre-load the mailbox so the very first wake-up sees a flood far
        // beyond the cap; a capped worker must split it across batches.
        for i in 1..=100u64 {
            tx.send(i).unwrap();
        }
        let sum = Arc::new(AtomicUsize::new(0));
        let max_batch = Arc::new(AtomicUsize::new(0));
        let handle = {
            let (sum, max_batch) = (Arc::clone(&sum), Arc::clone(&max_batch));
            spawn_batch_worker("capped-worker".into(), rx, 8, move |batch| {
                assert!(!batch.is_empty());
                max_batch.fetch_max(batch.len(), Ordering::Relaxed);
                sum.fetch_add(batch.iter().sum::<u64>() as usize, Ordering::Relaxed);
            })
        };
        drop(tx);
        handle.join().unwrap();
        assert_eq!(sum.load(Ordering::Relaxed), 5050, "leftovers must survive");
        let m = max_batch.load(Ordering::Relaxed);
        assert!(m <= 8, "batch exceeded cap: {m}");
    }

    #[test]
    fn observed_worker_conserves_item_count() {
        let (tx, rx) = crossbeam::channel::unbounded::<u64>();
        let obs = MailboxObs {
            batches: Arc::new(Counter::new()),
            items: Arc::new(Counter::new()),
            batch_size: Arc::new(Histogram::new()),
            queue_depth: Arc::new(Gauge::new()),
        };
        let handle = spawn_batch_worker_observed(
            "observed-worker".into(),
            rx,
            8,
            Some(obs.clone()),
            |_batch| {},
        );
        for i in 0..100u64 {
            tx.send(i).unwrap();
        }
        drop(tx);
        handle.join().unwrap();
        assert_eq!(obs.items.get(), 100, "items conserve");
        assert_eq!(obs.batch_size.count(), obs.batches.get());
        let s = obs.batch_size.snapshot();
        assert!(s.max <= 8, "batch size obeys the cap");
        assert_eq!(s.sum, 100, "batch sizes sum to item count");
        assert_eq!(obs.queue_depth.get(), 0, "drained at exit");
    }
}
