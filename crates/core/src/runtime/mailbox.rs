//! The generic mailbox worker behind every actor in [`crate::runtime`].
//!
//! One worker owns one blocking receive loop: it parks on the mailbox's
//! channel, and each time it wakes it drains **up to a cap** of what is
//! queued into a batch before applying it. The actors use this to amortise
//! their lock acquisitions — a shard worker takes its shard's write lock
//! once per batch, not once per operation — which is exactly the advantage
//! a mailbox has over callers contending on the lock directly. The cap
//! bounds how long one batch can hold that lock: under a flood the worker
//! applies a full batch, releases the lock, and immediately wakes again
//! for the leftovers still queued in the channel, so readers get a window
//! between batches instead of starving behind one unbounded drain.
//!
//! Lifecycle is channel-driven: a worker exits when every sender to its
//! mailbox is gone, so an actor shuts down by dropping its send handles
//! and joining the threads. No poison message, no shutdown flag.

use crossbeam::channel::Receiver;
use std::thread::{Builder, JoinHandle};

/// Default per-batch drain cap: large enough that lock amortisation is
/// intact (hundreds of ops per acquisition), small enough that a churn
/// flood cannot pin a shard's write lock for an unbounded stretch.
pub(crate) const DEFAULT_DRAIN_CAP: usize = 1024;

/// Spawns a named worker thread that feeds `apply` with batches drained
/// from `rx`, at most `cap` items per batch. Every batch is non-empty;
/// leftovers beyond the cap stay queued and wake the worker again without
/// parking. The thread exits when the channel disconnects (all senders
/// dropped).
pub(crate) fn spawn_batch_worker<T, F>(
    name: String,
    rx: Receiver<T>,
    cap: usize,
    mut apply: F,
) -> JoinHandle<()>
where
    T: Send + 'static,
    F: FnMut(Vec<T>) + Send + 'static,
{
    assert!(cap > 0, "drain cap must admit at least one item");
    Builder::new()
        .name(name)
        .spawn(move || {
            let mut batch = Vec::new();
            while let Ok(first) = rx.recv() {
                batch.push(first);
                while batch.len() < cap {
                    match rx.try_recv() {
                        Ok(more) => batch.push(more),
                        Err(_) => break,
                    }
                }
                apply(std::mem::take(&mut batch));
            }
        })
        .expect("spawn mailbox worker")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn worker_drains_batches_and_exits_on_disconnect() {
        let (tx, rx) = crossbeam::channel::unbounded::<u64>();
        let sum = Arc::new(AtomicUsize::new(0));
        let batches = Arc::new(AtomicUsize::new(0));
        let handle = {
            let (sum, batches) = (Arc::clone(&sum), Arc::clone(&batches));
            spawn_batch_worker("test-worker".into(), rx, DEFAULT_DRAIN_CAP, move |batch| {
                assert!(!batch.is_empty());
                batches.fetch_add(1, Ordering::Relaxed);
                sum.fetch_add(batch.iter().sum::<u64>() as usize, Ordering::Relaxed);
            })
        };
        for i in 1..=100u64 {
            tx.send(i).unwrap();
        }
        drop(tx);
        handle.join().unwrap();
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
        let n = batches.load(Ordering::Relaxed);
        assert!((1..=100).contains(&n), "batches in [1, 100], got {n}");
    }

    #[test]
    fn drain_cap_bounds_batches_without_losing_leftovers() {
        let (tx, rx) = crossbeam::channel::unbounded::<u64>();
        // Pre-load the mailbox so the very first wake-up sees a flood far
        // beyond the cap; a capped worker must split it across batches.
        for i in 1..=100u64 {
            tx.send(i).unwrap();
        }
        let sum = Arc::new(AtomicUsize::new(0));
        let max_batch = Arc::new(AtomicUsize::new(0));
        let handle = {
            let (sum, max_batch) = (Arc::clone(&sum), Arc::clone(&max_batch));
            spawn_batch_worker("capped-worker".into(), rx, 8, move |batch| {
                assert!(!batch.is_empty());
                max_batch.fetch_max(batch.len(), Ordering::Relaxed);
                sum.fetch_add(batch.iter().sum::<u64>() as usize, Ordering::Relaxed);
            })
        };
        drop(tx);
        handle.join().unwrap();
        assert_eq!(sum.load(Ordering::Relaxed), 5050, "leftovers must survive");
        let m = max_batch.load(Ordering::Relaxed);
        assert!(m <= 8, "batch exceeded cap: {m}");
    }
}
