//! The generic mailbox worker behind every actor in [`crate::runtime`].
//!
//! One worker owns one blocking receive loop: it parks on the mailbox's
//! channel, and each time it wakes it **drains everything queued** into a
//! batch before applying it. The actors use this to amortise their lock
//! acquisitions — a shard worker takes its shard's write lock once per
//! batch, not once per operation — which is exactly the advantage a
//! mailbox has over callers contending on the lock directly.
//!
//! Lifecycle is channel-driven: a worker exits when every sender to its
//! mailbox is gone, so an actor shuts down by dropping its send handles
//! and joining the threads. No poison message, no shutdown flag.

use crossbeam::channel::Receiver;
use std::thread::{Builder, JoinHandle};

/// Spawns a named worker thread that feeds `apply` with batches drained
/// from `rx`. Every batch is non-empty; the thread exits when the channel
/// disconnects (all senders dropped).
pub(crate) fn spawn_batch_worker<T, F>(
    name: String,
    rx: Receiver<T>,
    mut apply: F,
) -> JoinHandle<()>
where
    T: Send + 'static,
    F: FnMut(Vec<T>) + Send + 'static,
{
    Builder::new()
        .name(name)
        .spawn(move || {
            let mut batch = Vec::new();
            while let Ok(first) = rx.recv() {
                batch.push(first);
                while let Ok(more) = rx.try_recv() {
                    batch.push(more);
                }
                apply(std::mem::take(&mut batch));
            }
        })
        .expect("spawn mailbox worker")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn worker_drains_batches_and_exits_on_disconnect() {
        let (tx, rx) = crossbeam::channel::unbounded::<u64>();
        let sum = Arc::new(AtomicUsize::new(0));
        let batches = Arc::new(AtomicUsize::new(0));
        let handle = {
            let (sum, batches) = (Arc::clone(&sum), Arc::clone(&batches));
            spawn_batch_worker("test-worker".into(), rx, move |batch| {
                assert!(!batch.is_empty());
                batches.fetch_add(1, Ordering::Relaxed);
                sum.fetch_add(batch.iter().sum::<u64>() as usize, Ordering::Relaxed);
            })
        };
        for i in 1..=100u64 {
            tx.send(i).unwrap();
        }
        drop(tx);
        handle.join().unwrap();
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
        let n = batches.load(Ordering::Relaxed);
        assert!((1..=100).contains(&n), "batches in [1, 100], got {n}");
    }
}
