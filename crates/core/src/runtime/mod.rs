//! The actorized serving plane: mailbox workers behind every shard and
//! region, and the wire-facing service trait `nearpeerd` serves.
//!
//! The synchronous data plane ([`crate::ManagementServer`],
//! [`crate::Federation`]) reads concurrently but writes through
//! `&mut self` — one writer at a time across the whole directory. This
//! module is the other half:
//!
//! * [`mailbox`] — the generic batch-draining worker thread every actor
//!   is built from;
//! * [`ActorServer`] — one write mailbox per [`crate::DirectoryShard`];
//!   reads take shard read guards and run the shared merge plans in
//!   [`crate::directory::query`], so answers are bit-identical to the
//!   facade's by construction;
//! * [`ActorFederation`] — one write mailbox plus a query-worker pool
//!   per region; the home-first + fanout query is carried as encoded
//!   [`crate::codec`] frames (`QueryRequest`/`FillRequest` RPCs), fanned
//!   out concurrently and merged order-independently;
//! * [`WireService`] — the one-method trait both actors implement, and
//!   the only thing the `nearpeerd` TCP server needs to know about.
//!
//! Everything here takes `&self`: callers on any number of threads (one
//! per TCP connection in `nearpeerd`) issue reads and writes without
//! coordinating.

mod actor_federation;
mod actor_server;
pub(crate) mod mailbox;

pub use actor_federation::ActorFederation;
pub use actor_server::ActorServer;

use crate::protocol::{Message, WireNeighbor};
use crate::router_index::Neighbor;
use crate::subscription::Subscription;
use crate::telemetry::TelemetryRegistry;
use std::sync::Arc;

/// A directory service addressable by protocol messages — the boundary
/// between the wire (`nearpeerd`'s per-connection frame loops) and the
/// actors behind it.
///
/// `handle` consumes one decoded request and returns the reply to send
/// back, or `None` for fire-and-forget messages ([`Message::Leave`],
/// [`Message::Heartbeat`]) and for messages a server ignores (stray
/// replies). [`Message::Shutdown`] is acknowledged with a
/// [`Message::ProbePong`]; acting on it (draining and exiting) is the
/// transport's business, not the service's.
///
/// Transports that keep a long-lived connection per client also get a
/// push channel: `open_client`/`close_client` bracket the connection,
/// `handle_from` routes requests that need a push channel (subscriptions)
/// to it, and `drain_pushes` collects server-initiated
/// [`Message::DeltaPush`] frames ready for that client. The defaults make
/// all of this opt-in — a service without subscriptions implements
/// `handle` alone and rejects [`Message::Subscribe`] there.
pub trait WireService: Send + Sync {
    /// Handles one request message, returning the reply, if any.
    fn handle(&self, msg: Message) -> Option<Message>;

    /// Registers a connection as a push-capable client. `None` (the
    /// default) means this service has no push channel and subscription
    /// requests will be refused by `handle`.
    fn open_client(&self) -> Option<u64> {
        None
    }

    /// Tears down a client opened by [`WireService::open_client`],
    /// dropping its subscriptions and queued pushes.
    fn close_client(&self, _client: u64) {}

    /// Handles one request on behalf of `client` (the connection's token
    /// from [`WireService::open_client`], if any). The default ignores
    /// the client and delegates to [`WireService::handle`].
    fn handle_from(&self, _client: Option<u64>, msg: Message) -> Option<Message> {
        self.handle(msg)
    }

    /// Drains up to `max` server-initiated push frames ready for
    /// `client` into `out`. The default pushes nothing.
    fn drain_pushes(&self, _client: u64, _max: usize, _out: &mut Vec<Message>) {}

    /// The telemetry registry backing this service's
    /// [`Message::StatsRequest`] answers, if one is bound. The default —
    /// `None` — makes `StatsReply.text` empty, never an error: stats are
    /// advisory and must not take a connection down.
    fn telemetry(&self) -> Option<Arc<TelemetryRegistry>> {
        None
    }
}

/// The [`Message::StatsRequest`] answer every service shares: render the
/// bound registry, or an empty exposition when none is bound.
fn stats_reply(service: &impl WireService, nonce: u64) -> Message {
    Message::StatsReply {
        nonce,
        text: service
            .telemetry()
            .map(|t| t.render_text())
            .unwrap_or_default(),
    }
}

/// Converts an answer list to its wire form.
fn to_wire(neighbors: Vec<Neighbor>) -> Vec<WireNeighbor> {
    neighbors
        .into_iter()
        .map(|n| WireNeighbor {
            peer: n.peer,
            dtree: n.dtree,
        })
        .collect()
}

impl WireService for ActorServer {
    fn handle(&self, msg: Message) -> Option<Message> {
        match msg {
            Message::ProbePing { nonce } => Some(Message::ProbePong { nonce }),
            Message::JoinRequest { peer, path } => Some(match self.register(peer, path) {
                Ok(out) => Message::JoinReply {
                    peer,
                    neighbors: to_wire(out.neighbors),
                    delegate: out.delegate,
                },
                Err(e) => Message::JoinError {
                    peer,
                    reason: e.to_string(),
                },
            }),
            Message::HandoverRequest { peer, path } => Some(match self.handover(peer, path) {
                Ok(out) => Message::JoinReply {
                    peer,
                    neighbors: to_wire(out.neighbors),
                    delegate: out.delegate,
                },
                Err(e) => Message::JoinError {
                    peer,
                    reason: e.to_string(),
                },
            }),
            Message::Leave { peer } => {
                let _ = self.deregister(peer);
                None
            }
            Message::Heartbeat { peer } => {
                let _ = self.heartbeat(peer);
                None
            }
            Message::QueryRequest {
                nonce,
                path,
                k,
                exclude,
            } => Some(Message::QueryReply {
                nonce,
                neighbors: to_wire(self.closest_to_path(&path, k as usize, exclude)),
            }),
            Message::FillRequest {
                nonce,
                router,
                limit,
            } => Some(Message::FillReply {
                nonce,
                items: self
                    .peers_through_prefix(router, limit as usize)
                    .into_iter()
                    .map(|(peer, depth)| WireNeighbor { peer, dtree: depth })
                    .collect(),
            }),
            Message::Shutdown { nonce } => Some(Message::ProbePong { nonce }),
            // Subscribing through plain `handle` means the transport never
            // opened a push channel — there is nowhere to deliver deltas.
            Message::Subscribe { peer, .. } => Some(Message::JoinError {
                peer,
                reason: "subscriptions need a push-capable connection".into(),
            }),
            Message::Unsubscribe { nonce, peer } => {
                self.unsubscribe(peer);
                Some(Message::SubAck {
                    nonce,
                    peer,
                    neighbors: Vec::new(),
                })
            }
            Message::StatsRequest { nonce } => Some(stats_reply(self, nonce)),
            // Stray replies are not requests; drop them.
            Message::ProbePong { .. }
            | Message::JoinReply { .. }
            | Message::JoinError { .. }
            | Message::QueryReply { .. }
            | Message::FillReply { .. }
            | Message::DeltaPush { .. }
            | Message::SubAck { .. }
            | Message::StatsReply { .. } => None,
        }
    }

    fn open_client(&self) -> Option<u64> {
        Some(self.open_sub_client())
    }

    fn close_client(&self, client: u64) {
        self.close_sub_client(client);
    }

    fn handle_from(&self, client: Option<u64>, msg: Message) -> Option<Message> {
        match msg {
            Message::Subscribe {
                nonce,
                peer,
                k,
                min_interval_ms,
            } => Some(match client {
                Some(client) => match self.subscribe(
                    client,
                    Subscription {
                        peer,
                        k: k as usize,
                        min_interval_ms: min_interval_ms as u64,
                    },
                ) {
                    Ok(initial) => Message::SubAck {
                        nonce,
                        peer,
                        neighbors: to_wire(initial),
                    },
                    Err(e) => Message::JoinError {
                        peer,
                        reason: e.to_string(),
                    },
                },
                None => Message::JoinError {
                    peer,
                    reason: "subscriptions need a push-capable connection".into(),
                },
            }),
            other => self.handle(other),
        }
    }

    fn drain_pushes(&self, client: u64, max: usize, out: &mut Vec<Message>) {
        let mut deltas = Vec::new();
        self.drain_deltas(client, max, &mut deltas);
        out.extend(deltas.into_iter().map(|d| Message::DeltaPush {
            peer: d.peer,
            epoch: d.epoch,
            class: d.class.code(),
            added: to_wire(d.added),
            removed: d.removed,
        }));
    }

    fn telemetry(&self) -> Option<Arc<TelemetryRegistry>> {
        ActorServer::telemetry(self)
    }
}

impl WireService for ActorFederation {
    fn handle(&self, msg: Message) -> Option<Message> {
        match msg {
            Message::ProbePing { nonce } => Some(Message::ProbePong { nonce }),
            Message::JoinRequest { peer, path } => Some(match self.register(peer, path) {
                Ok(out) => Message::JoinReply {
                    peer,
                    neighbors: to_wire(out.neighbors),
                    delegate: None,
                },
                Err(e) => Message::JoinError {
                    peer,
                    reason: e.to_string(),
                },
            }),
            Message::HandoverRequest { peer, path } => Some(match self.handover(peer, path) {
                Ok(out) => Message::JoinReply {
                    peer,
                    neighbors: to_wire(out.neighbors),
                    delegate: None,
                },
                Err(e) => Message::JoinError {
                    peer,
                    reason: e.to_string(),
                },
            }),
            Message::Leave { peer } => {
                self.leave_batch(&[peer]);
                None
            }
            Message::Heartbeat { peer } => {
                self.renew_batch(&[peer]);
                None
            }
            Message::QueryRequest {
                nonce,
                path,
                k,
                exclude,
            } => Some(Message::QueryReply {
                nonce,
                // Client-facing queries get the full federated answer
                // (fan-out + bridge fills); the region workers' own
                // QueryRequest handling stays exact-candidates-only.
                neighbors: to_wire(self.closest_to_path(&path, k as usize, exclude)),
            }),
            Message::FillRequest { nonce, .. } => Some(Message::FillReply {
                nonce,
                items: Vec::new(),
            }),
            Message::Shutdown { nonce } => Some(Message::ProbePong { nonce }),
            // A federated answer is merged across regions per query; a
            // standing subscription would have to re-merge on every churn
            // event in every region. Until that exists, refuse loudly
            // rather than serve region-local (wrong) deltas.
            Message::Subscribe { peer, .. } => Some(Message::JoinError {
                peer,
                reason: "subscriptions are not supported on a federated front door".into(),
            }),
            Message::Unsubscribe { nonce, peer } => Some(Message::SubAck {
                nonce,
                peer,
                neighbors: Vec::new(),
            }),
            Message::StatsRequest { nonce } => Some(stats_reply(self, nonce)),
            Message::ProbePong { .. }
            | Message::JoinReply { .. }
            | Message::JoinError { .. }
            | Message::QueryReply { .. }
            | Message::FillReply { .. }
            | Message::DeltaPush { .. }
            | Message::SubAck { .. }
            | Message::StatsReply { .. } => None,
        }
    }

    fn telemetry(&self) -> Option<Arc<TelemetryRegistry>> {
        ActorFederation::telemetry(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::PeerId;
    use crate::path::PeerPath;
    use crate::ServerConfig;
    use nearpeer_topology::RouterId;

    fn path(ids: &[u32]) -> PeerPath {
        PeerPath::new(ids.iter().map(|&i| RouterId(i)).collect()).unwrap()
    }

    #[test]
    fn wire_service_maps_requests_to_replies() {
        let srv =
            ActorServer::new(vec![RouterId(0)], vec![vec![0]], ServerConfig::default()).unwrap();
        assert_eq!(
            srv.handle(Message::ProbePing { nonce: 7 }),
            Some(Message::ProbePong { nonce: 7 })
        );
        let reply = srv
            .handle(Message::JoinRequest {
                peer: PeerId(1),
                path: path(&[4, 2, 1, 0]),
            })
            .unwrap();
        assert!(matches!(
            reply,
            Message::JoinReply {
                peer: PeerId(1),
                ..
            }
        ));
        // Duplicate turns into a JoinError carried on the wire.
        let reply = srv
            .handle(Message::JoinRequest {
                peer: PeerId(1),
                path: path(&[4, 2, 1, 0]),
            })
            .unwrap();
        assert!(matches!(
            reply,
            Message::JoinError {
                peer: PeerId(1),
                ..
            }
        ));
        let reply = srv
            .handle(Message::QueryRequest {
                nonce: 9,
                path: path(&[5, 2, 1, 0]),
                k: 3,
                exclude: None,
            })
            .unwrap();
        match reply {
            Message::QueryReply { nonce, neighbors } => {
                assert_eq!(nonce, 9);
                assert_eq!(neighbors.len(), 1);
                assert_eq!(neighbors[0].peer, PeerId(1));
            }
            other => panic!("expected QueryReply, got {}", other.kind_name()),
        }
        assert_eq!(srv.handle(Message::Leave { peer: PeerId(1) }), None);
        assert_eq!(srv.peer_count(), 0);
        assert_eq!(
            srv.handle(Message::Shutdown { nonce: 3 }),
            Some(Message::ProbePong { nonce: 3 })
        );
    }

    #[test]
    fn subscribe_over_the_wire_acks_then_pushes() {
        let srv =
            ActorServer::new(vec![RouterId(0)], vec![vec![0]], ServerConfig::default()).unwrap();
        srv.handle(Message::JoinRequest {
            peer: PeerId(1),
            path: path(&[4, 2, 1, 0]),
        });
        // Clientless subscribe is refused: no push channel to deliver on.
        assert!(matches!(
            srv.handle_from(
                None,
                Message::Subscribe {
                    nonce: 1,
                    peer: PeerId(1),
                    k: 3,
                    min_interval_ms: 0,
                }
            ),
            Some(Message::JoinError { .. })
        ));
        let client = srv.open_client().expect("actor server is push-capable");
        let ack = srv
            .handle_from(
                Some(client),
                Message::Subscribe {
                    nonce: 2,
                    peer: PeerId(1),
                    k: 3,
                    min_interval_ms: 0,
                },
            )
            .unwrap();
        match ack {
            Message::SubAck {
                nonce, neighbors, ..
            } => {
                assert_eq!(nonce, 2);
                assert!(neighbors.is_empty(), "nobody else registered yet");
            }
            other => panic!("expected SubAck, got {}", other.kind_name()),
        }
        srv.handle(Message::JoinRequest {
            peer: PeerId(2),
            path: path(&[5, 2, 1, 0]),
        });
        let mut pushes = Vec::new();
        srv.drain_pushes(client, usize::MAX, &mut pushes);
        assert_eq!(pushes.len(), 1);
        match &pushes[0] {
            Message::DeltaPush {
                peer,
                class,
                added,
                removed,
                ..
            } => {
                assert_eq!(*peer, PeerId(1));
                assert_eq!(*class, crate::subscription::DeltaClass::Join.code());
                assert_eq!(added.len(), 1);
                assert_eq!(added[0].peer, PeerId(2));
                assert!(removed.is_empty());
            }
            other => panic!("expected DeltaPush, got {}", other.kind_name()),
        }
        // Unsubscribe through plain handle works (no push channel needed).
        assert!(matches!(
            srv.handle(Message::Unsubscribe {
                nonce: 3,
                peer: PeerId(1)
            }),
            Some(Message::SubAck { nonce: 3, .. })
        ));
        srv.close_client(client);
        assert_eq!(srv.subscription_stats().active, 0);
    }

    #[test]
    fn stats_request_serves_the_bound_registry() {
        let srv =
            ActorServer::new(vec![RouterId(0)], vec![vec![0]], ServerConfig::default()).unwrap();
        // Unbound: an empty exposition, never an error.
        match srv.handle(Message::StatsRequest { nonce: 1 }) {
            Some(Message::StatsReply { nonce: 1, text }) => assert!(text.is_empty()),
            other => panic!("expected StatsReply, got {other:?}"),
        }
        let reg = Arc::new(TelemetryRegistry::new());
        srv.bind_telemetry(Arc::clone(&reg));
        srv.handle(Message::JoinRequest {
            peer: PeerId(1),
            path: path(&[4, 2, 1, 0]),
        });
        srv.handle(Message::QueryRequest {
            nonce: 2,
            path: path(&[5, 2, 1, 0]),
            k: 3,
            exclude: None,
        });
        match srv.handle(Message::StatsRequest { nonce: 3 }) {
            Some(Message::StatsReply { nonce: 3, text }) => {
                // The join answers with neighbors (one query) plus the
                // explicit QueryRequest: two directory queries.
                assert_eq!(
                    crate::telemetry::find_metric(&text, "dir_queries_total"),
                    Some(2)
                );
                assert_eq!(
                    crate::telemetry::find_metric(&text, "dir_query_latency_us_count"),
                    Some(2)
                );
                let items =
                    crate::telemetry::find_metric(&text, "mailbox_items_total{mailbox=\"shard\"}");
                assert!(items >= Some(1), "join went through the shard mailbox");
            }
            other => panic!("expected StatsReply, got {other:?}"),
        }
    }
}
