//! The actorized serving plane: mailbox workers behind every shard and
//! region, and the wire-facing service trait `nearpeerd` serves.
//!
//! The synchronous data plane ([`crate::ManagementServer`],
//! [`crate::Federation`]) reads concurrently but writes through
//! `&mut self` — one writer at a time across the whole directory. This
//! module is the other half:
//!
//! * [`mailbox`] — the generic batch-draining worker thread every actor
//!   is built from;
//! * [`ActorServer`] — one write mailbox per [`crate::DirectoryShard`];
//!   reads take shard read guards and run the shared merge plans in
//!   [`crate::directory::query`], so answers are bit-identical to the
//!   facade's by construction;
//! * [`ActorFederation`] — one write mailbox plus a query-worker pool
//!   per region; the home-first + fanout query is carried as encoded
//!   [`crate::codec`] frames (`QueryRequest`/`FillRequest` RPCs), fanned
//!   out concurrently and merged order-independently;
//! * [`WireService`] — the one-method trait both actors implement, and
//!   the only thing the `nearpeerd` TCP server needs to know about.
//!
//! Everything here takes `&self`: callers on any number of threads (one
//! per TCP connection in `nearpeerd`) issue reads and writes without
//! coordinating.

mod actor_federation;
mod actor_server;
pub(crate) mod mailbox;

pub use actor_federation::ActorFederation;
pub use actor_server::ActorServer;

use crate::protocol::{Message, WireNeighbor};
use crate::router_index::Neighbor;

/// A directory service addressable by protocol messages — the boundary
/// between the wire (`nearpeerd`'s per-connection frame loops) and the
/// actors behind it.
///
/// `handle` consumes one decoded request and returns the reply to send
/// back, or `None` for fire-and-forget messages ([`Message::Leave`],
/// [`Message::Heartbeat`]) and for messages a server ignores (stray
/// replies). [`Message::Shutdown`] is acknowledged with a
/// [`Message::ProbePong`]; acting on it (draining and exiting) is the
/// transport's business, not the service's.
pub trait WireService: Send + Sync {
    /// Handles one request message, returning the reply, if any.
    fn handle(&self, msg: Message) -> Option<Message>;
}

/// Converts an answer list to its wire form.
fn to_wire(neighbors: Vec<Neighbor>) -> Vec<WireNeighbor> {
    neighbors
        .into_iter()
        .map(|n| WireNeighbor {
            peer: n.peer,
            dtree: n.dtree,
        })
        .collect()
}

impl WireService for ActorServer {
    fn handle(&self, msg: Message) -> Option<Message> {
        match msg {
            Message::ProbePing { nonce } => Some(Message::ProbePong { nonce }),
            Message::JoinRequest { peer, path } => Some(match self.register(peer, path) {
                Ok(out) => Message::JoinReply {
                    peer,
                    neighbors: to_wire(out.neighbors),
                    delegate: out.delegate,
                },
                Err(e) => Message::JoinError {
                    peer,
                    reason: e.to_string(),
                },
            }),
            Message::HandoverRequest { peer, path } => Some(match self.handover(peer, path) {
                Ok(out) => Message::JoinReply {
                    peer,
                    neighbors: to_wire(out.neighbors),
                    delegate: out.delegate,
                },
                Err(e) => Message::JoinError {
                    peer,
                    reason: e.to_string(),
                },
            }),
            Message::Leave { peer } => {
                let _ = self.deregister(peer);
                None
            }
            Message::Heartbeat { peer } => {
                let _ = self.heartbeat(peer);
                None
            }
            Message::QueryRequest {
                nonce,
                path,
                k,
                exclude,
            } => Some(Message::QueryReply {
                nonce,
                neighbors: to_wire(self.closest_to_path(&path, k as usize, exclude)),
            }),
            Message::FillRequest {
                nonce,
                router,
                limit,
            } => Some(Message::FillReply {
                nonce,
                items: self
                    .peers_through_prefix(router, limit as usize)
                    .into_iter()
                    .map(|(peer, depth)| WireNeighbor { peer, dtree: depth })
                    .collect(),
            }),
            Message::Shutdown { nonce } => Some(Message::ProbePong { nonce }),
            // Stray replies are not requests; drop them.
            Message::ProbePong { .. }
            | Message::JoinReply { .. }
            | Message::JoinError { .. }
            | Message::QueryReply { .. }
            | Message::FillReply { .. } => None,
        }
    }
}

impl WireService for ActorFederation {
    fn handle(&self, msg: Message) -> Option<Message> {
        match msg {
            Message::ProbePing { nonce } => Some(Message::ProbePong { nonce }),
            Message::JoinRequest { peer, path } => Some(match self.register(peer, path) {
                Ok(out) => Message::JoinReply {
                    peer,
                    neighbors: to_wire(out.neighbors),
                    delegate: None,
                },
                Err(e) => Message::JoinError {
                    peer,
                    reason: e.to_string(),
                },
            }),
            Message::HandoverRequest { peer, path } => Some(match self.handover(peer, path) {
                Ok(out) => Message::JoinReply {
                    peer,
                    neighbors: to_wire(out.neighbors),
                    delegate: None,
                },
                Err(e) => Message::JoinError {
                    peer,
                    reason: e.to_string(),
                },
            }),
            Message::Leave { peer } => {
                self.leave_batch(&[peer]);
                None
            }
            Message::Heartbeat { peer } => {
                self.renew_batch(&[peer]);
                None
            }
            Message::QueryRequest {
                nonce,
                path,
                k,
                exclude,
            } => Some(Message::QueryReply {
                nonce,
                // Client-facing queries get the full federated answer
                // (fan-out + bridge fills); the region workers' own
                // QueryRequest handling stays exact-candidates-only.
                neighbors: to_wire(self.closest_to_path(&path, k as usize, exclude)),
            }),
            Message::FillRequest { nonce, .. } => Some(Message::FillReply {
                nonce,
                items: Vec::new(),
            }),
            Message::Shutdown { nonce } => Some(Message::ProbePong { nonce }),
            Message::ProbePong { .. }
            | Message::JoinReply { .. }
            | Message::JoinError { .. }
            | Message::QueryReply { .. }
            | Message::FillReply { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::PeerId;
    use crate::path::PeerPath;
    use crate::ServerConfig;
    use nearpeer_topology::RouterId;

    fn path(ids: &[u32]) -> PeerPath {
        PeerPath::new(ids.iter().map(|&i| RouterId(i)).collect()).unwrap()
    }

    #[test]
    fn wire_service_maps_requests_to_replies() {
        let srv =
            ActorServer::new(vec![RouterId(0)], vec![vec![0]], ServerConfig::default()).unwrap();
        assert_eq!(
            srv.handle(Message::ProbePing { nonce: 7 }),
            Some(Message::ProbePong { nonce: 7 })
        );
        let reply = srv
            .handle(Message::JoinRequest {
                peer: PeerId(1),
                path: path(&[4, 2, 1, 0]),
            })
            .unwrap();
        assert!(matches!(
            reply,
            Message::JoinReply {
                peer: PeerId(1),
                ..
            }
        ));
        // Duplicate turns into a JoinError carried on the wire.
        let reply = srv
            .handle(Message::JoinRequest {
                peer: PeerId(1),
                path: path(&[4, 2, 1, 0]),
            })
            .unwrap();
        assert!(matches!(
            reply,
            Message::JoinError {
                peer: PeerId(1),
                ..
            }
        ));
        let reply = srv
            .handle(Message::QueryRequest {
                nonce: 9,
                path: path(&[5, 2, 1, 0]),
                k: 3,
                exclude: None,
            })
            .unwrap();
        match reply {
            Message::QueryReply { nonce, neighbors } => {
                assert_eq!(nonce, 9);
                assert_eq!(neighbors.len(), 1);
                assert_eq!(neighbors[0].peer, PeerId(1));
            }
            other => panic!("expected QueryReply, got {}", other.kind_name()),
        }
        assert_eq!(srv.handle(Message::Leave { peer: PeerId(1) }), None);
        assert_eq!(srv.peer_count(), 0);
        assert_eq!(
            srv.handle(Message::Shutdown { nonce: 3 }),
            Some(Message::ProbePong { nonce: 3 })
        );
    }
}
