//! The actorized management server: one write mailbox per shard.
//!
//! [`crate::ManagementServer`] already serves concurrent reads (`&self`
//! queries merge per-shard answers); writes were the missing half — they
//! take `&mut self` and serialize the whole facade. [`ActorServer`] keeps
//! the same shards but puts **each one behind its own mailbox worker**:
//!
//! * every shard lives in its own `RwLock`, so queries keep taking read
//!   guards across all shards and merging through the shared plans in
//!   [`crate::directory::query`] — answers are bit-identical to the
//!   synchronous facade *by construction*;
//! * every shard has one worker thread owning its writes. The worker
//!   batch-drains its mailbox and applies the whole batch under a single
//!   write-lock acquisition, so writes to different shards run in
//!   parallel and writers never block each other enqueueing;
//! * the cross-shard invariant (a peer id registered in at most one
//!   shard) moves into a front-door **claims map**. Membership decisions
//!   happen under the claims mutex, and the matching shard ops are
//!   enqueued *before the mutex is released* — so each shard's mailbox
//!   order agrees with the claims order, and two racing writes on the
//!   same peer cannot interleave their shard effects. The mutex is never
//!   held across a wait: callers release it, then block on their op's
//!   reply channel.

use crate::directory::query;
use crate::directory::{DirectoryShard, ShardSweep};
use crate::error::CoreError;
use crate::ids::{LandmarkId, PeerId};
use crate::path::PeerPath;
use crate::router_index::Neighbor;
use crate::server::{JoinOutcome, ServerConfig, ServerStats};
use crate::subscription::{
    DeltaClass, NeighborDelta, Subscription, SubscriptionHost, SubscriptionRegistry,
    SubscriptionStats,
};
use crate::telemetry::{Counter, Gauge, Histogram, SlowQueryRecord, TelemetryRegistry};
use crossbeam::channel::{unbounded, Sender};
use nearpeer_topology::RouterId;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// One write operation bound for a shard worker. Every op carries a
/// oneshot reply channel: the front door enqueues under the claims lock
/// and awaits the reply after releasing it.
enum ShardOp {
    Insert {
        peer: PeerId,
        path: PeerPath,
        epoch: u64,
        reply: mpsc::Sender<Result<(), CoreError>>,
    },
    Remove {
        peer: PeerId,
        reply: mpsc::Sender<bool>,
    },
    /// Handover teardown: the move is no session end, so the adaptive
    /// lease EWMA must not absorb the dwell time (mirrors the facade).
    RemoveMoved {
        peer: PeerId,
        reply: mpsc::Sender<bool>,
    },
    Heartbeat {
        peer: PeerId,
        epoch: u64,
        reply: mpsc::Sender<bool>,
    },
    Expire {
        now: u64,
        max_age: u64,
        reply: mpsc::Sender<ShardSweep>,
    },
}

/// State shared between the front door, the shard workers and any number
/// of querying threads.
struct Shared {
    config: ServerConfig,
    landmark_routers: Vec<RouterId>,
    landmark_by_router: HashMap<RouterId, LandmarkId>,
    landmark_dist: Vec<Vec<u32>>,
    shards: Vec<RwLock<DirectoryShard>>,
    queries: Arc<Counter>,
    fills: Arc<Counter>,
    query_latency: Arc<Histogram>,
    /// Mailbox observability, shared by every shard worker (one merged
    /// view: the queue-depth gauge is a sample from whichever worker
    /// drained last, counters and batch sizes aggregate exactly).
    mailbox_obs: super::mailbox::MailboxObs,
    /// Registry bound after construction ([`ActorServer::bind_telemetry`]);
    /// one atomic load on the query path while unbound.
    telemetry: OnceLock<Arc<TelemetryRegistry>>,
}

impl Shared {
    fn landmark_for_path(&self, path: &PeerPath) -> Result<LandmarkId, CoreError> {
        self.landmark_by_router
            .get(&path.landmark_router())
            .copied()
            .ok_or_else(|| {
                CoreError::UnknownLandmark(format!(
                    "path terminates at {} which is no landmark",
                    path.landmark_router()
                ))
            })
    }
}

/// The actorized serving plane over per-landmark shards: concurrent
/// reads *and* concurrent writes, all through `&self`.
///
/// Answers are bit-identical to a [`crate::ManagementServer`] fed the
/// same operations (pinned by `tests/properties.rs`): both front ends
/// call the same query plans over the same shard type. Super-peers are
/// not supported (the delegate field of [`JoinOutcome`] stays `None`).
pub struct ActorServer {
    shared: Arc<Shared>,
    /// Front-door membership authority: peer → owning shard index.
    claims: Mutex<HashMap<PeerId, u32>>,
    write_txs: Vec<Sender<ShardOp>>,
    workers: Vec<JoinHandle<()>>,
    epoch: AtomicU64,
    handovers: AtomicU64,
    /// Standing subscriptions. Lock order: `subs` before `claims` /
    /// shard read guards (the registry's host callbacks take both); no
    /// path takes `subs` while holding `claims`.
    subs: Mutex<SubscriptionRegistry>,
    /// Wall-clock origin for subscription rate limiting.
    started: Instant,
}

impl ActorServer {
    /// Builds the actorized server from the same inputs as
    /// [`crate::ManagementServer::new`] and spawns one write worker per
    /// shard. Super-peer promotion is rejected — regional election under
    /// concurrent writes is future work.
    pub fn new(
        landmark_routers: Vec<RouterId>,
        landmark_dist: Vec<Vec<u32>>,
        config: ServerConfig,
    ) -> Result<Self, CoreError> {
        if config.super_peers.is_some() {
            return Err(CoreError::InvalidFederation(
                "super-peers are not supported by the actorized server".into(),
            ));
        }
        if landmark_routers.is_empty() {
            return Err(CoreError::InvalidConfig(
                "a server needs at least one landmark (zero shards cannot \
                 register anything)"
                    .into(),
            ));
        }
        config.validate()?;
        let landmark_by_router = landmark_routers
            .iter()
            .enumerate()
            .map(|(i, &r)| (r, LandmarkId(i as u32)))
            .collect();
        let shards = landmark_routers
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                RwLock::new(DirectoryShard::with_adaptive(
                    LandmarkId(i as u32),
                    r,
                    config.adaptive_leases,
                ))
            })
            .collect();
        let shared = Arc::new(Shared {
            config,
            landmark_by_router,
            landmark_dist,
            shards,
            landmark_routers,
            queries: Arc::new(Counter::new()),
            fills: Arc::new(Counter::new()),
            query_latency: Arc::new(Histogram::new()),
            mailbox_obs: super::mailbox::MailboxObs {
                batches: Arc::new(Counter::new()),
                items: Arc::new(Counter::new()),
                batch_size: Arc::new(Histogram::new()),
                queue_depth: Arc::new(Gauge::new()),
            },
            telemetry: OnceLock::new(),
        });
        let mut write_txs = Vec::with_capacity(shared.shards.len());
        let mut workers = Vec::with_capacity(shared.shards.len());
        for i in 0..shared.shards.len() {
            let (tx, rx) = unbounded::<ShardOp>();
            let shard_shared = Arc::clone(&shared);
            workers.push(super::mailbox::spawn_batch_worker_observed(
                format!("shard-{i}"),
                rx,
                super::mailbox::DEFAULT_DRAIN_CAP,
                Some(shared.mailbox_obs.clone()),
                move |batch| {
                    let mut shard = shard_shared.shards[i].write().expect("shard poisoned");
                    for op in batch {
                        apply_shard_op(&mut shard, op);
                    }
                },
            ));
            write_txs.push(tx);
        }
        Ok(Self {
            shared,
            claims: Mutex::new(HashMap::new()),
            write_txs,
            workers,
            epoch: AtomicU64::new(0),
            handovers: AtomicU64::new(0),
            subs: Mutex::new(SubscriptionRegistry::new()),
            started: Instant::now(),
        })
    }

    /// The landmark routers, indexed by [`LandmarkId`].
    pub fn landmarks(&self) -> &[RouterId] {
        &self.shared.landmark_routers
    }

    /// The active configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.shared.config
    }

    /// Registered peer count.
    pub fn peer_count(&self) -> usize {
        self.claims.lock().expect("claims poisoned").len()
    }

    /// The current heartbeat epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Advances the heartbeat epoch and returns it. `&self`, unlike the
    /// facade: epoch is an atomic, and in-flight ops carry the epoch they
    /// were admitted under.
    pub fn advance_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Registers a newcomer and answers its closest peers — the actorized
    /// [`crate::ManagementServer::register`].
    pub fn register(&self, peer: PeerId, path: PeerPath) -> Result<JoinOutcome, CoreError> {
        let landmark = self.shared.landmark_for_path(&path)?;
        let query_path = path.clone();
        let (tx, rx) = mpsc::channel();
        {
            let mut claims = self.claims.lock().expect("claims poisoned");
            if claims.contains_key(&peer) {
                return Err(CoreError::DuplicatePeer(peer));
            }
            claims.insert(peer, landmark.0);
            let epoch = self.epoch.load(Ordering::Acquire);
            self.send_op(
                landmark.index(),
                ShardOp::Insert {
                    peer,
                    path,
                    epoch,
                    reply: tx,
                },
            );
        }
        if let Err(e) = rx.recv().expect("shard worker alive") {
            // Unreachable while the claims map is the only admission path
            // (landmark validated, duplicate excluded) — but a path that
            // fails shard-level validation must roll its claim back.
            self.claims.lock().expect("claims poisoned").remove(&peer);
            return Err(e);
        }
        self.notify_subs(DeltaClass::Join, &[peer], &[]);
        let neighbors =
            self.closest_to_path(&query_path, self.shared.config.neighbor_count, Some(peer));
        Ok(JoinOutcome {
            landmark,
            neighbors,
            delegate: None,
        })
    }

    /// Removes a departed peer — the actorized
    /// [`crate::ManagementServer::deregister`].
    pub fn deregister(&self, peer: PeerId) -> Result<(), CoreError> {
        let (tx, rx) = mpsc::channel();
        {
            let mut claims = self.claims.lock().expect("claims poisoned");
            let Some(idx) = claims.remove(&peer) else {
                return Err(CoreError::UnknownPeer(peer));
            };
            self.send_op(idx as usize, ShardOp::Remove { peer, reply: tx });
        }
        let removed = rx.recv().expect("shard worker alive");
        debug_assert!(removed, "claims and shards agree");
        self.notify_subs(DeltaClass::Join, &[], &[peer]);
        Ok(())
    }

    /// Renews a live peer's lease — the actorized
    /// [`crate::ManagementServer::heartbeat`].
    pub fn heartbeat(&self, peer: PeerId) -> Result<(), CoreError> {
        let (tx, rx) = mpsc::channel();
        {
            let claims = self.claims.lock().expect("claims poisoned");
            let Some(&idx) = claims.get(&peer) else {
                return Err(CoreError::UnknownPeer(peer));
            };
            let epoch = self.epoch.load(Ordering::Acquire);
            self.send_op(
                idx as usize,
                ShardOp::Heartbeat {
                    peer,
                    epoch,
                    reply: tx,
                },
            );
        }
        let renewed = rx.recv().expect("shard worker alive");
        debug_assert!(renewed, "claims and shards agree");
        Ok(())
    }

    /// Mobility handover — the actorized
    /// [`crate::ManagementServer::handover`]. The new path is validated
    /// before teardown; the teardown and the re-insert enqueue under one
    /// claims-lock critical section, so no concurrent writer can observe
    /// the peer half-moved.
    pub fn handover(&self, peer: PeerId, new_path: PeerPath) -> Result<JoinOutcome, CoreError> {
        let landmark = self.shared.landmark_for_path(&new_path)?;
        let query_path = new_path.clone();
        let (rm_tx, rm_rx) = mpsc::channel();
        let (ins_tx, ins_rx) = mpsc::channel();
        {
            let mut claims = self.claims.lock().expect("claims poisoned");
            let Some(&old) = claims.get(&peer) else {
                return Err(CoreError::UnknownPeer(peer));
            };
            claims.insert(peer, landmark.0);
            let epoch = self.epoch.load(Ordering::Acquire);
            self.send_op(old as usize, ShardOp::RemoveMoved { peer, reply: rm_tx });
            self.send_op(
                landmark.index(),
                ShardOp::Insert {
                    peer,
                    path: new_path,
                    epoch,
                    reply: ins_tx,
                },
            );
        }
        let removed = rm_rx.recv().expect("shard worker alive");
        debug_assert!(removed, "claims and shards agree");
        ins_rx
            .recv()
            .expect("shard worker alive")
            .expect("validated insert into claimed slot");
        self.handovers.fetch_add(1, Ordering::Relaxed);
        self.notify_subs(DeltaClass::Handover, &[peer], &[peer]);
        let neighbors =
            self.closest_to_path(&query_path, self.shared.config.neighbor_count, Some(peer));
        Ok(JoinOutcome {
            landmark,
            neighbors,
            delegate: None,
        })
    }

    /// Expires every peer not seen for more than `max_age` epochs,
    /// ascending ids — the actorized
    /// [`crate::ManagementServer::expire_stale`]. All shards sweep
    /// concurrently (one `Expire` op lands in every mailbox).
    pub fn expire_stale(&self, max_age: u64) -> Vec<PeerId> {
        let now = self.epoch.load(Ordering::Acquire);
        let mut rxs = Vec::with_capacity(self.write_txs.len());
        {
            let _claims = self.claims.lock().expect("claims poisoned");
            for i in 0..self.write_txs.len() {
                let (tx, rx) = mpsc::channel();
                self.send_op(
                    i,
                    ShardOp::Expire {
                        now,
                        max_age,
                        reply: tx,
                    },
                );
                rxs.push(rx);
            }
        }
        let mut expired = Vec::new();
        let mut moved = Vec::new();
        for rx in rxs {
            let sweep = rx.recv().expect("shard worker alive");
            expired.extend(sweep.expired);
            moved.extend(sweep.moved.into_iter().map(|(p, _)| p));
        }
        {
            let mut claims = self.claims.lock().expect("claims poisoned");
            for p in expired.iter().chain(moved.iter()) {
                claims.remove(p);
            }
        }
        if !(expired.is_empty() && moved.is_empty()) {
            let gone: Vec<PeerId> = expired.iter().chain(moved.iter()).copied().collect();
            self.notify_subs(DeltaClass::Expiry, &[], &gone);
        }
        expired.sort_unstable();
        expired
    }

    /// The closest registered peers to a query path — the actorized
    /// [`crate::ManagementServer::closest_to_path`]. Takes read guards on
    /// every shard and runs the shared merge plans, so any number of
    /// threads can query while writes land on other shards.
    pub fn closest_to_path(
        &self,
        path: &PeerPath,
        k: usize,
        exclude: Option<PeerId>,
    ) -> Vec<Neighbor> {
        self.closest_split(path, k, exclude).0
    }

    /// [`ActorServer::closest_to_path`] plus the length of the exact
    /// section (same-tree `dtree` candidates; everything after it is a
    /// cross-landmark fill estimate) — the split the incremental
    /// subscription engine needs to seed its answers.
    pub fn closest_split(
        &self,
        path: &PeerPath,
        k: usize,
        exclude: Option<PeerId>,
    ) -> (Vec<Neighbor>, usize) {
        self.shared.queries.inc();
        // Clock calls only with a bound registry whose timing gate is on
        // — the untelemetered query path stays as cheap as before.
        let started = self
            .shared
            .telemetry
            .get()
            .filter(|t| t.timing_enabled())
            .map(|_| Instant::now());
        let guards: Vec<_> = self
            .shared
            .shards
            .iter()
            .map(|s| s.read().expect("shard poisoned"))
            .collect();
        let shards: Vec<&DirectoryShard> = guards.iter().map(|g| &**g).collect();
        let excl: HashSet<PeerId> = exclude.into_iter().collect();
        let mut result = query::query_nearest_merged(&shards, path, k, &excl);
        let exact_len = result.len();
        if result.len() < k && self.shared.config.cross_landmark_fallback {
            if let Ok(own) = self.shared.landmark_for_path(path) {
                let missing = k - result.len();
                let have: HashSet<PeerId> = result.iter().map(|n| n.peer).collect();
                let fill = query::cross_landmark_candidates(
                    &shards,
                    &self.shared.landmark_routers,
                    &self.shared.landmark_dist,
                    own,
                    path.depth(),
                    missing,
                    &excl,
                    &have,
                );
                self.shared.fills.add(fill.len() as u64);
                result.extend(fill);
            }
        }
        if let (Some(start), Some(t)) = (started, self.shared.telemetry.get()) {
            let us = start.elapsed().as_micros() as u64;
            self.shared.query_latency.record(us);
            t.slow().offer(us, || SlowQueryRecord {
                latency_us: us,
                landmark: self
                    .shared
                    .landmark_by_router
                    .get(&path.landmark_router())
                    .map(|l| l.0 as u64),
                path_depth: path.depth() as usize,
                fanout: result.len() - exact_len,
                answered: result.len(),
            });
        }
        (result, exact_len)
    }

    /// Neighbors of an already-registered peer (fresh query).
    pub fn neighbors_of(&self, peer: PeerId, k: usize) -> Result<Vec<Neighbor>, CoreError> {
        let idx = {
            let claims = self.claims.lock().expect("claims poisoned");
            *claims.get(&peer).ok_or(CoreError::UnknownPeer(peer))?
        };
        let path = {
            let shard = self.shared.shards[idx as usize]
                .read()
                .expect("shard poisoned");
            shard
                .path_of(peer)
                .ok_or(CoreError::UnknownPeer(peer))?
                .clone()
        };
        Ok(self.closest_to_path(&path, k, Some(peer)))
    }

    /// The first `limit` peers of the ordered peers-through-router cursor
    /// at `router`, merged across shards (the fill RPC's server side).
    pub fn peers_through_prefix(&self, router: RouterId, limit: usize) -> Vec<(PeerId, u32)> {
        let guards: Vec<_> = self
            .shared
            .shards
            .iter()
            .map(|s| s.read().expect("shard poisoned"))
            .collect();
        let shards: Vec<&DirectoryShard> = guards.iter().map(|g| &**g).collect();
        query::peers_through_merged(&shards, router)
            .take(limit)
            .collect()
    }

    /// Aggregate counters, shaped like the facade's
    /// [`crate::ManagementServer::stats`].
    pub fn stats(&self) -> ServerStats {
        let handovers = self.handovers.load(Ordering::Relaxed);
        let (inserts, removals) = self
            .shared
            .shards
            .iter()
            .map(|s| {
                let g = s.read().expect("shard poisoned");
                (g.inserts(), g.removals())
            })
            .fold((0u64, 0u64), |(i, r), (si, sr)| (i + si, r + sr));
        // Saturating: the handover counter and the per-shard insert and
        // remove counters are read at different instants while writers
        // run, so a mid-handover snapshot could otherwise observe the
        // re-insert pair half-applied and underflow the subtraction.
        ServerStats {
            joins: inserts.saturating_sub(handovers),
            queries: self.shared.queries.get(),
            cross_landmark_fills: self.shared.fills.get(),
            leaves: removals.saturating_sub(handovers),
            handovers,
        }
    }

    /// Binds a telemetry registry (idempotent; first call wins): the
    /// directory query counters and latency histogram (`dir_*`), the
    /// shard-mailbox drain metrics (`mailbox_*{mailbox="shard"}`), and
    /// the subscription counters (`sub_*`) all become scrapeable, query
    /// timing honors the registry's gate, and slow queries land in its
    /// trace log.
    pub fn bind_telemetry(&self, reg: Arc<TelemetryRegistry>) {
        reg.adopt_counter("dir_queries_total", "", self.shared.queries.clone());
        reg.adopt_counter(
            "dir_cross_landmark_fills_total",
            "",
            self.shared.fills.clone(),
        );
        reg.adopt_histogram(
            "dir_query_latency_us",
            "",
            self.shared.query_latency.clone(),
        );
        let obs = &self.shared.mailbox_obs;
        let label = "mailbox=\"shard\"";
        reg.adopt_counter("mailbox_batches_total", label, obs.batches.clone());
        reg.adopt_counter("mailbox_items_total", label, obs.items.clone());
        reg.adopt_histogram("mailbox_batch_size", label, obs.batch_size.clone());
        reg.adopt_gauge("mailbox_queue_depth", label, obs.queue_depth.clone());
        self.subs
            .lock()
            .expect("subs poisoned")
            .bind_telemetry(&reg);
        let _ = self.shared.telemetry.set(reg);
    }

    /// The bound registry, if any.
    pub fn telemetry(&self) -> Option<Arc<TelemetryRegistry>> {
        self.shared.telemetry.get().cloned()
    }

    /// Registers a push-capable connection with the subscription plane
    /// and returns its client token.
    pub fn open_sub_client(&self) -> u64 {
        self.subs.lock().expect("subs poisoned").open_client()
    }

    /// Drops a connection's subscriptions and queued deltas.
    pub fn close_sub_client(&self, client: u64) {
        self.subs
            .lock()
            .expect("subs poisoned")
            .close_client(client);
    }

    /// Opens (or replaces) a standing subscription for `sub.peer`,
    /// delivered through `client`'s push channel; returns the initial
    /// answer snapshot.
    pub fn subscribe(&self, client: u64, sub: Subscription) -> Result<Vec<Neighbor>, CoreError> {
        let now = self.sub_now_ms();
        let mut subs = self.subs.lock().expect("subs poisoned");
        subs.subscribe(&ActorHost(self), client, sub, now)
    }

    /// Cancels `peer`'s standing subscription; `false` if there was none.
    pub fn unsubscribe(&self, peer: PeerId) -> bool {
        self.subs.lock().expect("subs poisoned").unsubscribe(peer)
    }

    /// Drains up to `max` rate-limit-eligible deltas queued for `client`,
    /// priority first (handover > expiry > join), FIFO within a class.
    pub fn drain_deltas(&self, client: u64, max: usize, out: &mut Vec<NeighborDelta>) {
        let now = self.sub_now_ms();
        self.subs
            .lock()
            .expect("subs poisoned")
            .drain(client, now, max, out);
    }

    /// Subscription-plane counters.
    pub fn subscription_stats(&self) -> SubscriptionStats {
        self.subs.lock().expect("subs poisoned").stats()
    }

    /// Milliseconds since this server started — the subscription plane's
    /// rate-limit clock.
    fn sub_now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Feeds one applied churn event to the subscription engine. Called
    /// after the shard write has landed and the claims lock is released,
    /// so the registry's host callbacks see the post-event directory.
    fn notify_subs(&self, class: DeltaClass, added: &[PeerId], removed: &[PeerId]) {
        let mut subs = self.subs.lock().expect("subs poisoned");
        if subs.is_empty() {
            return;
        }
        let epoch = self.epoch.load(Ordering::Acquire);
        let now = self.sub_now_ms();
        subs.observe(&ActorHost(self), class, epoch, now, added, removed);
    }

    fn send_op(&self, shard: usize, op: ShardOp) {
        self.write_txs[shard]
            .send(op)
            .expect("shard worker outlives the front door");
    }
}

/// The subscription engine's read-only window into the actorized
/// directory. Every callback takes the claims lock and/or shard read
/// guards; callers hold the `subs` mutex, never the reverse.
struct ActorHost<'a>(&'a ActorServer);

impl SubscriptionHost for ActorHost<'_> {
    fn path_of(&self, peer: PeerId) -> Option<PeerPath> {
        let idx = *self.0.claims.lock().expect("claims poisoned").get(&peer)?;
        self.0.shared.shards[idx as usize]
            .read()
            .expect("shard poisoned")
            .path_of(peer)
            .cloned()
    }

    fn landmark_at(&self, router: RouterId) -> Option<LandmarkId> {
        self.0.shared.landmark_by_router.get(&router).copied()
    }

    fn bridge(&self, from: LandmarkId, to: LandmarkId) -> Option<u32> {
        let d = *self
            .0
            .shared
            .landmark_dist
            .get(from.index())?
            .get(to.index())?;
        (d != u32::MAX).then_some(d)
    }

    fn fills_enabled(&self) -> bool {
        self.0.shared.config.cross_landmark_fallback
    }

    fn query_split(&self, path: &PeerPath, k: usize, exclude: PeerId) -> (Vec<Neighbor>, usize) {
        self.0.closest_split(path, k, Some(exclude))
    }
}

impl Drop for ActorServer {
    fn drop(&mut self) {
        // Disconnect every mailbox, then join: workers drain what's
        // queued and exit on their own.
        self.write_txs.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ActorServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActorServer")
            .field("landmarks", &self.shared.landmark_routers.len())
            .field("peers", &self.peer_count())
            .field("epoch", &self.epoch())
            .finish_non_exhaustive()
    }
}

fn apply_shard_op(shard: &mut DirectoryShard, op: ShardOp) {
    match op {
        ShardOp::Insert {
            peer,
            path,
            epoch,
            reply,
        } => {
            let _ = reply.send(shard.insert(peer, path, epoch));
        }
        ShardOp::Remove { peer, reply } => {
            let _ = reply.send(shard.remove(peer));
        }
        ShardOp::RemoveMoved { peer, reply } => {
            let _ = reply.send(shard.remove_moved(peer));
        }
        ShardOp::Heartbeat { peer, epoch, reply } => {
            let _ = reply.send(shard.heartbeat(peer, epoch));
        }
        ShardOp::Expire {
            now,
            max_age,
            reply,
        } => {
            let _ = reply.send(shard.expire_epoch(now, max_age));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(ids: &[u32]) -> PeerPath {
        PeerPath::new(ids.iter().map(|&i| RouterId(i)).collect()).unwrap()
    }

    fn two_landmark_server() -> ActorServer {
        ActorServer::new(
            vec![RouterId(0), RouterId(100)],
            vec![vec![0, 5], vec![5, 0]],
            ServerConfig {
                neighbor_count: 3,
                ..ServerConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn invalid_configs_are_rejected_at_construction() {
        assert!(matches!(
            ActorServer::new(Vec::new(), Vec::new(), ServerConfig::default()),
            Err(CoreError::InvalidConfig(_))
        ));
        assert!(matches!(
            ActorServer::new(
                vec![RouterId(0)],
                vec![vec![0]],
                ServerConfig {
                    neighbor_count: 0,
                    ..ServerConfig::default()
                },
            ),
            Err(CoreError::InvalidConfig(_))
        ));
        assert!(matches!(
            ActorServer::new(
                vec![RouterId(0)],
                vec![vec![0]],
                ServerConfig {
                    adaptive_leases: Some(crate::AdaptiveLeaseConfig {
                        min_age: 8,
                        max_age: 2,
                        ..crate::AdaptiveLeaseConfig::default()
                    }),
                    ..ServerConfig::default()
                },
            ),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn register_query_handover_deregister_roundtrip() {
        let srv = two_landmark_server();
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        let out = srv.register(PeerId(2), path(&[5, 2, 1, 0])).unwrap();
        assert_eq!(out.landmark, LandmarkId(0));
        assert_eq!(out.neighbors[0].peer, PeerId(1));
        assert_eq!(out.neighbors[0].dtree, 2);
        assert!(matches!(
            srv.register(PeerId(1), path(&[4, 2, 1, 0])),
            Err(CoreError::DuplicatePeer(_))
        ));
        let out = srv.handover(PeerId(1), path(&[110, 105, 100])).unwrap();
        assert_eq!(out.landmark, LandmarkId(1));
        // Cross-landmark answer via the bridge: depth 2 + bridge 5 + depth 3.
        assert_eq!(out.neighbors[0].peer, PeerId(2));
        assert_eq!(out.neighbors[0].dtree, 10);
        assert_eq!(srv.peer_count(), 2);
        srv.deregister(PeerId(2)).unwrap();
        assert!(matches!(
            srv.deregister(PeerId(2)),
            Err(CoreError::UnknownPeer(_))
        ));
        assert_eq!(srv.peer_count(), 1);
        let stats = srv.stats();
        assert_eq!((stats.joins, stats.leaves, stats.handovers), (2, 1, 1));
    }

    #[test]
    fn expiry_sweeps_unrenewed_peers() {
        let srv = two_landmark_server();
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        srv.register(PeerId(2), path(&[110, 105, 100])).unwrap();
        for _ in 0..3 {
            srv.advance_epoch();
            srv.heartbeat(PeerId(1)).unwrap();
        }
        assert_eq!(srv.expire_stale(2), vec![PeerId(2)]);
        assert_eq!(srv.peer_count(), 1);
        assert!(matches!(
            srv.heartbeat(PeerId(2)),
            Err(CoreError::UnknownPeer(_))
        ));
    }

    #[test]
    fn subscription_tracks_churn_and_matches_repoll() {
        let srv = two_landmark_server();
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        srv.register(PeerId(2), path(&[5, 2, 1, 0])).unwrap();
        let client = srv.open_sub_client();
        let initial = srv
            .subscribe(
                client,
                Subscription {
                    peer: PeerId(1),
                    k: 3,
                    min_interval_ms: 0,
                },
            )
            .unwrap();
        let mut view = initial;
        // Churn: a closer join, a cross-landmark join, a departure.
        srv.register(PeerId(3), path(&[9, 4, 2, 1, 0])).unwrap();
        srv.register(PeerId(4), path(&[110, 105, 100])).unwrap();
        srv.deregister(PeerId(2)).unwrap();
        let mut deltas = Vec::new();
        srv.drain_deltas(client, usize::MAX, &mut deltas);
        assert!(!deltas.is_empty());
        for d in deltas {
            view.retain(|n| !d.removed.contains(&n.peer));
            for a in d.added {
                match view.iter_mut().find(|n| n.peer == a.peer) {
                    Some(n) => n.dtree = a.dtree,
                    None => view.push(a),
                }
            }
        }
        let mut expect = srv.neighbors_of(PeerId(1), 3).unwrap();
        view.sort_by_key(|n| n.peer);
        expect.sort_by_key(|n| n.peer);
        assert_eq!(view, expect);
        assert_eq!(srv.subscription_stats().active, 1);
        srv.close_sub_client(client);
        assert_eq!(srv.subscription_stats().active, 0);
    }

    #[test]
    fn concurrent_writers_land_on_disjoint_shards() {
        let srv = Arc::new(two_landmark_server());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let srv = Arc::clone(&srv);
                scope.spawn(move || {
                    for i in 0..50u64 {
                        let id = 1 + t * 50 + i;
                        let p = if id % 2 == 0 {
                            path(&[1000 + id as u32, 2, 1, 0])
                        } else {
                            path(&[1000 + id as u32, 105, 100])
                        };
                        srv.register(PeerId(id), p).unwrap();
                    }
                });
            }
        });
        assert_eq!(srv.peer_count(), 200);
        // Every peer is findable and excluded from its own answer.
        for id in 1..=200u64 {
            let n = srv.neighbors_of(PeerId(id), 3).unwrap();
            assert!(n.iter().all(|x| x.peer != PeerId(id)));
            assert_eq!(n.len(), 3);
        }
    }
}
