//! The actorized federation: per-region workers and RPC-as-frames.
//!
//! [`crate::Federation`]'s home-first + fanout query is a loop of nested
//! function calls into each region's server. Here every [`Region`] of the
//! synchronous federation becomes an **actor**: its `ManagementServer`
//! moves behind an `RwLock`, one write worker serializes its `&mut` ops,
//! and a pool of query workers answers read RPCs. The front door carries
//! those RPCs as **encoded [`crate::codec`] frames** — the same
//! `QueryRequest`/`QueryReply`/`FillRequest`/`FillReply` messages
//! `nearpeerd` speaks over TCP — so the in-process fan-out exercises the
//! exact bytes a wire deployment would exchange, and the fan-out is
//! genuinely concurrent: one frame per consulted region, all regions
//! computing in parallel, replies merged by `(dtree, peer)` (an
//! order-independent merge, so concurrency cannot perturb the answer).
//!
//! Bridge fills become prefix-cursor RPCs: instead of lazily pulling a
//! foreign region's `peers_through` iterator, the front door requests a
//! bounded prefix per foreign landmark (`FillRequest { router, limit }`)
//! and k-way merges the prefixes with the same per-cursor base the
//! synchronous [`crate::Federation::closest_to_path`] uses. The prefix
//! bound `2·missing + |exclude| + |already|` dominates every skip the
//! merge can make (excluded peers, already-answered peers, cross-cursor
//! duplicates — the emitted set never exceeds `missing`), so the merged
//! result is **bit-identical** to the synchronous federation's — pinned
//! at 1, 2 and 4 regions by `tests/properties.rs`.
//!
//! [`Region`]: crate::Region

use crate::codec;
use crate::error::CoreError;
use crate::federation::{FederatedJoin, FederationStats, FederationSweep, RuntimeParts};
use crate::federation::{Federation, FederationConfig, RegionId};
use crate::ids::{LandmarkId, PeerId};
use crate::path::PeerPath;
use crate::protocol::{Message, WireNeighbor};
use crate::router_index::Neighbor;
use crate::server::{ChurnBatchOutcome, ManagementServer};
use crate::telemetry::{Counter, Histogram, SlowQueryRecord, TelemetryRegistry};
use bytes::{Bytes, BytesMut};
use crossbeam::channel::{unbounded, Sender};
use nearpeer_topology::RouterId;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Query workers per region. Reads share the region's `RwLock` read
/// side, so a small pool is enough to overlap decode/encode work.
const QUERY_WORKERS: usize = 2;

/// One write operation bound for a region's write worker.
enum RegionOp {
    /// `register_batch_renewing` — the federation's insert/renew path.
    Absorb {
        items: Vec<(PeerId, PeerPath)>,
        reply: mpsc::Sender<ChurnBatchOutcome>,
    },
    /// Same-region atomic handover.
    Handover {
        peer: PeerId,
        path: PeerPath,
        reply: mpsc::Sender<Result<(), CoreError>>,
    },
    /// Cross-region teardown: leave a forwarding tombstone.
    Forward {
        peer: PeerId,
        to_region: u32,
        reply: mpsc::Sender<Result<(), CoreError>>,
    },
    Leave {
        peers: Vec<PeerId>,
        reply: mpsc::Sender<usize>,
    },
    Renew {
        peers: Vec<PeerId>,
        reply: mpsc::Sender<usize>,
    },
    Advance {
        reply: mpsc::Sender<u64>,
    },
    Expire {
        max_age: u64,
        reply: mpsc::Sender<crate::directory::ShardSweep>,
    },
}

/// One read RPC: an encoded request frame plus the channel the encoded
/// reply frame goes back on.
struct QueryJob {
    frame: Bytes,
    reply: mpsc::Sender<Bytes>,
}

/// Routing metadata shared with the workers.
struct FedMeta {
    landmark_routers: Vec<RouterId>,
    landmark_dist: Vec<Vec<u32>>,
    landmark_region: Vec<RegionId>,
    router_landmark: HashMap<RouterId, u32>,
    bridge: Vec<Vec<u32>>,
    fanout: Option<usize>,
    fallback: bool,
    neighbor_count: usize,
    servers: Vec<Arc<RwLock<ManagementServer>>>,
    queries: Arc<Counter>,
    remote: Arc<Counter>,
    fills: Arc<Counter>,
    query_latency: Arc<Histogram>,
}

impl FedMeta {
    fn home_of_path(&self, path: &PeerPath) -> Result<(RegionId, u32), CoreError> {
        self.router_landmark
            .get(&path.landmark_router())
            .map(|&g| (self.landmark_region[g as usize], g))
            .ok_or_else(|| {
                CoreError::UnknownLandmark(format!(
                    "path terminates at {} which is no federation landmark",
                    path.landmark_router()
                ))
            })
    }

    /// Home region first, then foreign regions ascending by
    /// `(bridge, id)` bounded by the fanout — identical to the
    /// synchronous federation's consult order.
    fn query_regions(&self, home: RegionId) -> Vec<RegionId> {
        let mut foreign: Vec<RegionId> = (0..self.servers.len() as u32)
            .map(RegionId)
            .filter(|&r| r != home)
            .collect();
        foreign.sort_unstable_by_key(|&r| (self.bridge[home.index()][r.index()], r.0));
        let take = self.fanout.unwrap_or(foreign.len()).min(foreign.len());
        let mut out = Vec::with_capacity(take + 1);
        out.push(home);
        out.extend(foreign.into_iter().take(take));
        out
    }
}

/// The actorized federation front door: every region behind its own
/// write mailbox and query-worker pool, cross-region RPC carried as
/// codec frames, all operations `&self`.
///
/// Answers are bit-identical to a [`Federation`] fed the same operations
/// (same consult order, same merges, same bridge fills); super-peers are
/// rejected at construction exactly like the synchronous front door.
pub struct ActorFederation {
    meta: Arc<FedMeta>,
    /// Front-door membership authority: peer → current region.
    claims: Mutex<HashMap<PeerId, RegionId>>,
    write_txs: Vec<Sender<RegionOp>>,
    query_txs: Vec<Sender<QueryJob>>,
    workers: Vec<JoinHandle<()>>,
    epoch: AtomicU64,
    nonce: AtomicU64,
    handovers: AtomicU64,
    cross_region_handovers: AtomicU64,
    /// One merged mailbox view across every region's write worker.
    write_obs: super::mailbox::MailboxObs,
    /// One merged mailbox view across every region's query pool.
    query_obs: super::mailbox::MailboxObs,
    telemetry: OnceLock<Arc<TelemetryRegistry>>,
}

impl ActorFederation {
    /// Builds the actorized federation from the same inputs as
    /// [`Federation::new`] (round-robin landmark partition, derived
    /// bridge matrix) and spawns each region's workers.
    pub fn new(
        landmark_routers: Vec<RouterId>,
        landmark_dist: Vec<Vec<u32>>,
        n_regions: usize,
        config: FederationConfig,
    ) -> Result<Self, CoreError> {
        // Reuse the synchronous constructor: validation, partition and
        // bridge derivation stay one implementation.
        let parts: RuntimeParts =
            Federation::new(landmark_routers, landmark_dist, n_regions, config)?
                .into_runtime_parts();
        let meta = Arc::new(FedMeta {
            landmark_routers: parts.landmark_routers,
            landmark_dist: parts.landmark_dist,
            landmark_region: parts.landmark_region,
            router_landmark: parts.router_landmark,
            bridge: parts.bridge,
            fanout: parts.fanout,
            fallback: parts.fallback,
            neighbor_count: parts.neighbor_count,
            servers: parts
                .servers
                .into_iter()
                .map(|s| Arc::new(RwLock::new(s)))
                .collect(),
            queries: Arc::new(Counter::new()),
            remote: Arc::new(Counter::new()),
            fills: Arc::new(Counter::new()),
            query_latency: Arc::new(Histogram::new()),
        });
        let write_obs = super::mailbox::MailboxObs {
            batches: Arc::new(Counter::new()),
            items: Arc::new(Counter::new()),
            batch_size: Arc::new(Histogram::new()),
            queue_depth: Arc::new(crate::telemetry::Gauge::new()),
        };
        let query_obs = super::mailbox::MailboxObs {
            batches: Arc::new(Counter::new()),
            items: Arc::new(Counter::new()),
            batch_size: Arc::new(Histogram::new()),
            queue_depth: Arc::new(crate::telemetry::Gauge::new()),
        };
        let mut write_txs = Vec::with_capacity(meta.servers.len());
        let mut query_txs = Vec::with_capacity(meta.servers.len());
        let mut workers = Vec::new();
        for (r, server) in meta.servers.iter().enumerate() {
            let (wtx, wrx) = unbounded::<RegionOp>();
            let wserver = Arc::clone(server);
            workers.push(super::mailbox::spawn_batch_worker_observed(
                format!("region-{r}-write"),
                wrx,
                super::mailbox::DEFAULT_DRAIN_CAP,
                Some(write_obs.clone()),
                move |batch| {
                    let mut srv = wserver.write().expect("region server poisoned");
                    for op in batch {
                        apply_region_op(&mut srv, op);
                    }
                },
            ));
            write_txs.push(wtx);
            let (qtx, qrx) = unbounded::<QueryJob>();
            for w in 0..QUERY_WORKERS {
                let qserver = Arc::clone(server);
                let qrx = qrx.clone();
                workers.push(super::mailbox::spawn_batch_worker_observed(
                    format!("region-{r}-query-{w}"),
                    qrx,
                    super::mailbox::DEFAULT_DRAIN_CAP,
                    Some(query_obs.clone()),
                    move |batch| {
                        let srv = qserver.read().expect("region server poisoned");
                        for job in batch {
                            serve_query_frame(&srv, job);
                        }
                    },
                ));
            }
            query_txs.push(qtx);
        }
        Ok(Self {
            meta,
            claims: Mutex::new(HashMap::new()),
            write_txs,
            query_txs,
            workers,
            epoch: AtomicU64::new(0),
            nonce: AtomicU64::new(1),
            handovers: AtomicU64::new(0),
            cross_region_handovers: AtomicU64::new(0),
            write_obs,
            query_obs,
            telemetry: OnceLock::new(),
        })
    }

    /// Number of regions.
    pub fn n_regions(&self) -> usize {
        self.meta.servers.len()
    }

    /// The global landmark routers, indexed by global [`LandmarkId`].
    pub fn landmarks(&self) -> &[RouterId] {
        &self.meta.landmark_routers
    }

    /// Registered peers across all regions.
    pub fn peer_count(&self) -> usize {
        self.claims.lock().expect("claims poisoned").len()
    }

    /// The federation-wide heartbeat epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The region a peer is currently registered in, if any.
    pub fn region_of_peer(&self, peer: PeerId) -> Option<RegionId> {
        self.claims
            .lock()
            .expect("claims poisoned")
            .get(&peer)
            .copied()
    }

    /// Aggregate federation counters.
    pub fn stats(&self) -> FederationStats {
        FederationStats {
            queries: self.meta.queries.get(),
            remote_regions_consulted: self.meta.remote.get(),
            cross_region_fills: self.meta.fills.get(),
            handovers: self.handovers.load(Ordering::Relaxed),
            cross_region_handovers: self.cross_region_handovers.load(Ordering::Relaxed),
        }
    }

    /// Adopts the federation's counters, query-latency histogram and
    /// mailbox views into `reg`, and arms query timing. Idempotent in
    /// the sense that only the first registry sticks; every region
    /// server also binds its own shard counters under a region label.
    pub fn bind_telemetry(&self, reg: Arc<TelemetryRegistry>) {
        reg.adopt_counter("fed_queries_total", "", Arc::clone(&self.meta.queries));
        reg.adopt_counter(
            "fed_remote_regions_consulted_total",
            "",
            Arc::clone(&self.meta.remote),
        );
        reg.adopt_counter(
            "fed_cross_region_fills_total",
            "",
            Arc::clone(&self.meta.fills),
        );
        reg.adopt_histogram(
            "fed_query_latency_us",
            "",
            Arc::clone(&self.meta.query_latency),
        );
        for (obs, label) in [
            (&self.write_obs, "mailbox=\"region-write\""),
            (&self.query_obs, "mailbox=\"region-query\""),
        ] {
            reg.adopt_counter("mailbox_batches_total", label, Arc::clone(&obs.batches));
            reg.adopt_counter("mailbox_items_total", label, Arc::clone(&obs.items));
            reg.adopt_histogram("mailbox_batch_size", label, Arc::clone(&obs.batch_size));
            reg.adopt_gauge("mailbox_queue_depth", label, Arc::clone(&obs.queue_depth));
        }
        let _ = self.telemetry.set(reg);
    }

    /// The registry bound via [`Self::bind_telemetry`], if any.
    pub fn telemetry(&self) -> Option<Arc<TelemetryRegistry>> {
        self.telemetry.get().cloned()
    }

    /// Forwarding tombstones currently held across all regions.
    pub fn tombstone_count(&self) -> usize {
        self.meta
            .servers
            .iter()
            .map(|s| s.read().expect("region server poisoned").tombstone_count())
            .sum()
    }

    /// Advances every region's epoch in lockstep — the actorized
    /// [`Federation::advance_epoch`].
    pub fn advance_epoch(&self) -> u64 {
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        let rxs = self.broadcast(|reply| RegionOp::Advance { reply });
        for rx in rxs {
            let e = rx.recv().expect("region worker alive");
            debug_assert_eq!(e, epoch, "regions advance in lockstep");
        }
        epoch
    }

    /// Registers a newcomer — the actorized [`Federation::register`]:
    /// write-only insert in the home region, federated answer.
    pub fn register(&self, peer: PeerId, path: PeerPath) -> Result<FederatedJoin, CoreError> {
        let (region, global) = self.meta.home_of_path(&path)?;
        let query_path = path.clone();
        let (tx, rx) = mpsc::channel();
        {
            let mut claims = self.claims.lock().expect("claims poisoned");
            if claims.contains_key(&peer) {
                return Err(CoreError::DuplicatePeer(peer));
            }
            claims.insert(peer, region);
            self.send_write(
                region,
                RegionOp::Absorb {
                    items: vec![(peer, path)],
                    reply: tx,
                },
            );
        }
        let out = rx.recv().expect("region worker alive");
        debug_assert_eq!(out.joined, 1, "validated fresh insert");
        let neighbors = self.closest_to_path(&query_path, self.meta.neighbor_count, Some(peer));
        Ok(FederatedJoin {
            region,
            landmark: LandmarkId(global),
            neighbors,
        })
    }

    /// Mobility handover — the actorized [`Federation::handover`]. The
    /// new path is validated first; a cross-region move enqueues the
    /// forwarding teardown and the destination insert under one
    /// claims-lock critical section.
    pub fn handover(&self, peer: PeerId, new_path: PeerPath) -> Result<FederatedJoin, CoreError> {
        let (dest, global) = self.meta.home_of_path(&new_path)?;
        let query_path = new_path.clone();
        enum Pending {
            Same(mpsc::Receiver<Result<(), CoreError>>),
            Cross(
                mpsc::Receiver<Result<(), CoreError>>,
                mpsc::Receiver<ChurnBatchOutcome>,
            ),
        }
        let pending = {
            let mut claims = self.claims.lock().expect("claims poisoned");
            let Some(&from) = claims.get(&peer) else {
                return Err(CoreError::UnknownPeer(peer));
            };
            if from == dest {
                let (tx, rx) = mpsc::channel();
                self.send_write(
                    dest,
                    RegionOp::Handover {
                        peer,
                        path: new_path,
                        reply: tx,
                    },
                );
                Pending::Same(rx)
            } else {
                claims.insert(peer, dest);
                let (ftx, frx) = mpsc::channel();
                let (atx, arx) = mpsc::channel();
                self.send_write(
                    from,
                    RegionOp::Forward {
                        peer,
                        to_region: dest.0,
                        reply: ftx,
                    },
                );
                self.send_write(
                    dest,
                    RegionOp::Absorb {
                        items: vec![(peer, new_path)],
                        reply: atx,
                    },
                );
                Pending::Cross(frx, arx)
            }
        };
        match pending {
            Pending::Same(rx) => rx.recv().expect("region worker alive")?,
            Pending::Cross(frx, arx) => {
                frx.recv()
                    .expect("region worker alive")
                    .expect("claims and regions agree");
                let out = arx.recv().expect("region worker alive");
                debug_assert_eq!(out.joined, 1, "peer was only live in `from`");
                self.cross_region_handovers.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.handovers.fetch_add(1, Ordering::Relaxed);
        let neighbors = self.closest_to_path(&query_path, self.meta.neighbor_count, Some(peer));
        Ok(FederatedJoin {
            region: dest,
            landmark: LandmarkId(global),
            neighbors,
        })
    }

    /// Batched departures — the actorized [`Federation::leave_batch`].
    /// Peers partition by their claimed region (unknown ids are skipped
    /// without touching any region); returns the number removed.
    pub fn leave_batch(&self, peers: &[PeerId]) -> usize {
        let mut per_region: Vec<Vec<PeerId>> = vec![Vec::new(); self.meta.servers.len()];
        let mut rxs = Vec::new();
        {
            let mut claims = self.claims.lock().expect("claims poisoned");
            for &peer in peers {
                if let Some(region) = claims.remove(&peer) {
                    per_region[region.index()].push(peer);
                }
            }
            for (r, batch) in per_region.into_iter().enumerate() {
                if batch.is_empty() {
                    continue;
                }
                let (tx, rx) = mpsc::channel();
                self.send_write(
                    RegionId(r as u32),
                    RegionOp::Leave {
                        peers: batch,
                        reply: tx,
                    },
                );
                rxs.push(rx);
            }
        }
        rxs.into_iter()
            .map(|rx| rx.recv().expect("region worker alive"))
            .sum()
    }

    /// Batched heartbeat renewal — the actorized
    /// [`Federation::renew_batch`]; returns the number renewed.
    pub fn renew_batch(&self, peers: &[PeerId]) -> usize {
        let mut per_region: Vec<Vec<PeerId>> = vec![Vec::new(); self.meta.servers.len()];
        let mut rxs = Vec::new();
        {
            let claims = self.claims.lock().expect("claims poisoned");
            for &peer in peers {
                if let Some(&region) = claims.get(&peer) {
                    per_region[region.index()].push(peer);
                }
            }
            for (r, batch) in per_region.into_iter().enumerate() {
                if batch.is_empty() {
                    continue;
                }
                let (tx, rx) = mpsc::channel();
                self.send_write(
                    RegionId(r as u32),
                    RegionOp::Renew {
                        peers: batch,
                        reply: tx,
                    },
                );
                rxs.push(rx);
            }
        }
        rxs.into_iter()
            .map(|rx| rx.recv().expect("region worker alive"))
            .sum()
    }

    /// Federated lease expiry — the actorized
    /// [`Federation::expire_stale`]. All regions sweep concurrently.
    pub fn expire_stale(&self, max_age: u64) -> FederationSweep {
        let rxs = self.broadcast(|reply| RegionOp::Expire { max_age, reply });
        let mut out = FederationSweep::default();
        let mut gone: Vec<PeerId> = Vec::new();
        for (r, rx) in rxs.into_iter().enumerate() {
            let id = RegionId(r as u32);
            let sweep = rx.recv().expect("region worker alive");
            gone.extend(sweep.expired.iter().copied());
            out.expired
                .extend(sweep.expired.into_iter().map(|p| (id, p)));
            // Tombstones retired here belong to peers now living in their
            // destination region — their claims stay.
            out.moved_swept
                .extend(sweep.moved.into_iter().map(|(p, _)| (id, p)));
        }
        let mut claims = self.claims.lock().expect("claims poisoned");
        for p in gone {
            claims.remove(&p);
        }
        out
    }

    /// Neighbors of a registered peer, through the federated query path.
    pub fn neighbors_of(&self, peer: PeerId, k: usize) -> Result<Vec<Neighbor>, CoreError> {
        let region = self
            .region_of_peer(peer)
            .ok_or(CoreError::UnknownPeer(peer))?;
        let path = {
            let srv = self.meta.servers[region.index()]
                .read()
                .expect("region server poisoned");
            srv.path_of(peer)
                .ok_or(CoreError::UnknownPeer(peer))?
                .clone()
        };
        Ok(self.closest_to_path(&path, k, Some(peer)))
    }

    /// The closest registered peers to a query path — the actorized
    /// [`Federation::closest_to_path`]. One `QueryRequest` frame fans out
    /// to every consulted region concurrently; replies merge by
    /// `(dtree, peer)`; bridge fills arrive as `FillReply` prefixes and
    /// merge with per-cursor bases, exactly like the synchronous merge.
    pub fn closest_to_path(
        &self,
        path: &PeerPath,
        k: usize,
        exclude: Option<PeerId>,
    ) -> Vec<Neighbor> {
        self.meta.queries.inc();
        let started = self
            .telemetry
            .get()
            .filter(|t| t.timing_enabled())
            .map(|_| Instant::now());
        let home = self.meta.home_of_path(path).ok();
        let consulted: Vec<RegionId> = match home {
            Some((home, _)) => self.meta.query_regions(home),
            None => (0..self.meta.servers.len() as u32).map(RegionId).collect(),
        };
        self.meta
            .remote
            .add(consulted.len().saturating_sub(1) as u64);
        let nonce = self.nonce.fetch_add(1, Ordering::Relaxed);
        let frame = codec::encode_to_bytes(&Message::QueryRequest {
            nonce,
            path: path.clone(),
            k: k.min(u16::MAX as usize) as u16,
            exclude,
        });
        let (tx, rx) = mpsc::channel();
        for &r in &consulted {
            self.query_txs[r.index()]
                .send(QueryJob {
                    frame: frame.clone(),
                    reply: tx.clone(),
                })
                .expect("query worker outlives the front door");
        }
        drop(tx);
        let mut result: Vec<Neighbor> = Vec::with_capacity(k.saturating_mul(2));
        for _ in 0..consulted.len() {
            let reply = rx.recv().expect("query worker alive");
            match decode_frame(&reply) {
                Message::QueryReply {
                    nonce: n,
                    neighbors,
                } => {
                    debug_assert_eq!(n, nonce, "reply correlates to this fan-out");
                    result.extend(neighbors.into_iter().map(|w| Neighbor {
                        peer: w.peer,
                        dtree: w.dtree,
                    }));
                }
                other => unreachable!("query worker answered {}", other.kind_name()),
            }
        }
        result.sort_unstable_by_key(|n| (n.dtree, n.peer));
        result.truncate(k);
        let exact_len = result.len();
        if result.len() < k && self.meta.fallback {
            if let Some((_, own_global)) = home {
                let missing = k - result.len();
                let excl: HashSet<PeerId> = exclude.into_iter().collect();
                let have: HashSet<PeerId> = result.iter().map(|n| n.peer).collect();
                let fill =
                    self.bridge_fill_rpc(path, own_global, missing, &consulted, &excl, &have);
                self.meta.fills.add(fill.len() as u64);
                result.extend(fill);
            }
        }
        if let (Some(start), Some(t)) = (started, self.telemetry.get()) {
            let us = start.elapsed().as_micros() as u64;
            self.meta.query_latency.record(us);
            t.slow().offer(us, || SlowQueryRecord {
                latency_us: us,
                landmark: home.map(|(_, g)| g as u64),
                path_depth: path.depth() as usize,
                fanout: result.len() - exact_len,
                answered: result.len(),
            });
        }
        result
    }

    /// Cross-region fill over `FillRequest` prefix cursors: one bounded
    /// prefix per foreign landmark in a consulted region, k-way merged by
    /// `depth(query) + bridge + depth(peer)` with per-cursor bases. The
    /// prefix bound `2·missing + |exclude| + |already|` covers the
    /// merge's worst case (each cursor can skip at most every excluded,
    /// already-answered and cross-cursor-emitted peer, and the emitted
    /// set never exceeds `missing`), so exhausting a prefix means the
    /// live cursor would have been exhausted too.
    fn bridge_fill_rpc(
        &self,
        path: &PeerPath,
        own_global: u32,
        missing: usize,
        consulted: &[RegionId],
        exclude: &HashSet<PeerId>,
        already: &HashSet<PeerId>,
    ) -> Vec<Neighbor> {
        let consulted: HashSet<RegionId> = consulted.iter().copied().collect();
        let query_depth = path.depth();
        let limit = (2 * missing + exclude.len() + already.len()).min(u16::MAX as usize) as u16;
        // Issue every eligible cursor's RPC before collecting: the
        // regions compute their prefixes concurrently.
        let (tx, rx) = mpsc::channel();
        let mut cursors: Vec<(u64, u32)> = Vec::new(); // (nonce, base), issue order
        for (li, &lrouter) in self.meta.landmark_routers.iter().enumerate() {
            if li as u32 == own_global {
                continue;
            }
            let region = self.meta.landmark_region[li];
            if !consulted.contains(&region) {
                continue;
            }
            let bridge = self.meta.landmark_dist[own_global as usize][li];
            if bridge == u32::MAX {
                continue;
            }
            let nonce = self.nonce.fetch_add(1, Ordering::Relaxed);
            let frame = codec::encode_to_bytes(&Message::FillRequest {
                nonce,
                router: lrouter,
                limit,
            });
            self.query_txs[region.index()]
                .send(QueryJob {
                    frame,
                    reply: tx.clone(),
                })
                .expect("query worker outlives the front door");
            cursors.push((nonce, query_depth + bridge));
        }
        drop(tx);
        let mut prefixes: HashMap<u64, Vec<WireNeighbor>> = HashMap::with_capacity(cursors.len());
        for _ in 0..cursors.len() {
            let reply = rx.recv().expect("query worker alive");
            match decode_frame(&reply) {
                Message::FillReply { nonce, items } => {
                    prefixes.insert(nonce, items);
                }
                other => unreachable!("fill worker answered {}", other.kind_name()),
            }
        }
        // K-way merge of the prefixes, identical to the live-cursor merge.
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u32, PeerId, usize)>> =
            std::collections::BinaryHeap::new();
        let mut iters: Vec<(u32, std::vec::IntoIter<WireNeighbor>)> = Vec::new();
        for (nonce, base) in cursors {
            let mut iter = prefixes.remove(&nonce).unwrap_or_default().into_iter();
            if let Some(item) = iter.next() {
                let idx = iters.len();
                heap.push(std::cmp::Reverse((base + item.dtree, item.peer, idx)));
                iters.push((base, iter));
            }
        }
        let mut out = Vec::with_capacity(missing);
        let mut emitted: HashSet<PeerId> = HashSet::new();
        while let Some(std::cmp::Reverse((est, peer, idx))) = heap.pop() {
            let (base, iter) = &mut iters[idx];
            if let Some(item) = iter.next() {
                heap.push(std::cmp::Reverse((*base + item.dtree, item.peer, idx)));
            }
            if exclude.contains(&peer) || already.contains(&peer) || !emitted.insert(peer) {
                continue;
            }
            out.push(Neighbor { peer, dtree: est });
            if out.len() == missing {
                break;
            }
        }
        out
    }

    fn send_write(&self, region: RegionId, op: RegionOp) {
        self.write_txs[region.index()]
            .send(op)
            .expect("region worker outlives the front door");
    }

    /// Enqueues one op (built by `make`) in every region's write mailbox
    /// under the claims lock, returning the reply receivers in region
    /// order.
    fn broadcast<T>(&self, make: impl Fn(mpsc::Sender<T>) -> RegionOp) -> Vec<mpsc::Receiver<T>> {
        let mut rxs = Vec::with_capacity(self.write_txs.len());
        let _claims = self.claims.lock().expect("claims poisoned");
        for r in 0..self.write_txs.len() {
            let (tx, rx) = mpsc::channel();
            self.send_write(RegionId(r as u32), make(tx));
            rxs.push(rx);
        }
        rxs
    }
}

impl Drop for ActorFederation {
    fn drop(&mut self) {
        self.write_txs.clear();
        self.query_txs.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ActorFederation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActorFederation")
            .field("regions", &self.meta.servers.len())
            .field("peers", &self.peer_count())
            .field("epoch", &self.epoch())
            .finish_non_exhaustive()
    }
}

fn apply_region_op(srv: &mut ManagementServer, op: RegionOp) {
    match op {
        RegionOp::Absorb { items, reply } => {
            let _ = reply.send(srv.register_batch_renewing(items));
        }
        RegionOp::Handover { peer, path, reply } => {
            let _ = reply.send(srv.handover(peer, path).map(|_| ()));
        }
        RegionOp::Forward {
            peer,
            to_region,
            reply,
        } => {
            let _ = reply.send(srv.deregister_forwarding(peer, to_region));
        }
        RegionOp::Leave { peers, reply } => {
            let _ = reply.send(srv.leave_batch(&peers));
        }
        RegionOp::Renew { peers, reply } => {
            let _ = reply.send(srv.renew_batch(&peers));
        }
        RegionOp::Advance { reply } => {
            let _ = reply.send(srv.advance_epoch());
        }
        RegionOp::Expire { max_age, reply } => {
            let _ = reply.send(srv.expire_stale_full(max_age));
        }
    }
}

/// The region-side half of the RPC: decode the request frame, answer
/// from the server's read path, encode the reply frame. `QueryRequest`
/// here asks for the region's **exact candidates** (`query_nearest`),
/// not a federated answer — the front door owns merging and fills.
fn serve_query_frame(srv: &ManagementServer, job: QueryJob) {
    let reply = match decode_frame(&job.frame) {
        Message::QueryRequest {
            nonce,
            path,
            k,
            exclude,
        } => {
            let excl: HashSet<PeerId> = exclude.into_iter().collect();
            let neighbors = srv
                .index()
                .query_nearest(&path, k as usize, &excl)
                .into_iter()
                .map(|n| WireNeighbor {
                    peer: n.peer,
                    dtree: n.dtree,
                })
                .collect();
            Message::QueryReply { nonce, neighbors }
        }
        Message::FillRequest {
            nonce,
            router,
            limit,
        } => {
            let items = srv
                .index()
                .peers_through(router)
                .take(limit as usize)
                .map(|(peer, depth)| WireNeighbor { peer, dtree: depth })
                .collect();
            Message::FillReply { nonce, items }
        }
        other => unreachable!("region worker received {}", other.kind_name()),
    };
    let _ = job.reply.send(codec::encode_to_bytes(&reply));
}

/// Decodes one well-formed internal frame (the front door and workers
/// only exchange frames they encoded themselves).
fn decode_frame(frame: &Bytes) -> Message {
    let mut buf = BytesMut::new();
    buf.extend_from_slice(frame);
    codec::decode(&mut buf).expect("internal frames are well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(ids: &[u32]) -> PeerPath {
        PeerPath::new(ids.iter().map(|&i| RouterId(i)).collect()).unwrap()
    }

    fn four_landmarks() -> (Vec<RouterId>, Vec<Vec<u32>>) {
        let routers = vec![RouterId(0), RouterId(100), RouterId(200), RouterId(300)];
        let dist = (0..4u32)
            .map(|i| (0..4u32).map(|j| i.abs_diff(j) * 5).collect())
            .collect();
        (routers, dist)
    }

    fn fed(n_regions: usize) -> ActorFederation {
        let (routers, dist) = four_landmarks();
        ActorFederation::new(
            routers,
            dist,
            n_regions,
            FederationConfig {
                fanout: None,
                server: crate::ServerConfig {
                    neighbor_count: 3,
                    ..crate::ServerConfig::default()
                },
            },
        )
        .unwrap()
    }

    #[test]
    fn frames_carry_the_federated_answer() {
        let f = fed(2);
        f.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        let out = f.register(PeerId(2), path(&[110, 105, 100])).unwrap();
        assert_eq!(out.region, RegionId(1));
        assert_eq!(out.landmark, LandmarkId(1));
        // Bridge fill through an RPC frame: depth 2 + bridge 5 + depth 3.
        assert_eq!(out.neighbors.len(), 1);
        assert_eq!(out.neighbors[0].peer, PeerId(1));
        assert_eq!(out.neighbors[0].dtree, 10);
        assert!(matches!(
            f.register(PeerId(1), path(&[111, 105, 100])),
            Err(CoreError::DuplicatePeer(_))
        ));
    }

    #[test]
    fn cross_region_handover_through_mailboxes() {
        let f = fed(2);
        f.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        f.register(PeerId(2), path(&[110, 105, 100])).unwrap();
        f.advance_epoch();
        let out = f.handover(PeerId(1), path(&[111, 105, 100])).unwrap();
        assert_eq!(out.region, RegionId(1));
        assert_eq!(out.neighbors[0].peer, PeerId(2));
        assert_eq!(f.region_of_peer(PeerId(1)), Some(RegionId(1)));
        assert_eq!(f.tombstone_count(), 1);
        for _ in 0..3 {
            f.advance_epoch();
            assert_eq!(f.renew_batch(&[PeerId(1)]), 1);
        }
        let sweep = f.expire_stale(2);
        assert_eq!(sweep.moved_swept, vec![(RegionId(0), PeerId(1))]);
        assert_eq!(sweep.expired, vec![(RegionId(1), PeerId(2))]);
        assert_eq!(f.peer_count(), 1);
        assert_eq!(f.tombstone_count(), 0);
        let stats = f.stats();
        assert_eq!((stats.handovers, stats.cross_region_handovers), (1, 1));
    }

    #[test]
    fn concurrent_federated_queries_and_writes() {
        let f = Arc::new(fed(4));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let f = Arc::clone(&f);
                scope.spawn(move || {
                    for i in 0..25u64 {
                        let id = 1 + t * 25 + i;
                        let lm = (id % 4) as u32 * 100;
                        f.register(PeerId(id), path(&[1000 + id as u32, lm + 1, lm]))
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(f.peer_count(), 100);
        for id in 1..=100u64 {
            let n = f.neighbors_of(PeerId(id), 3).unwrap();
            assert_eq!(n.len(), 3);
            assert!(n.iter().all(|x| x.peer != PeerId(id)));
        }
    }
}
