//! Standing "watch my `k` nearest" subscriptions over the directory.
//!
//! Polling inverts the paper's economics at scale: every peer re-running
//! `neighbors_of` pays the full query for answers that almost never
//! change. The churn entry points already know exactly which peers each
//! batch touched, so the [`SubscriptionRegistry`] turns that knowledge
//! into **incremental deltas**: a join, leave, expiry or handover
//! re-ranks only the subscriptions whose answer set (or watch path)
//! intersects the touched peers — never the whole population, and never
//! a full query unless an eviction makes the next-best candidate
//! genuinely unknown.
//!
//! The registry is host-agnostic: anything implementing
//! [`SubscriptionHost`] (the synchronous [`crate::ManagementServer`],
//! the actorized [`crate::ActorServer`]) feeds it `observe` calls from
//! its churn entry points and drains [`NeighborDelta`]s per client. The
//! incremental maintenance mirrors `closest_to_path` *exactly* — exact
//! section (ascending `(dtree, peer)`, `dtree` minimal over shared
//! routers) followed by the cross-landmark fill section (ascending
//! `(estimate, peer)`) — so a drained delta stream replayed over the
//! initial snapshot always equals a fresh re-poll; `tests/` pins that
//! equivalence property.
//!
//! Delivery is a per-client queue with the three storm controls the
//! serving plane needs:
//!
//! * **bounded** — one coalesced pending delta per subscription, so the
//!   queue depth can never exceed the number of active subscriptions;
//! * **priority-ordered** — handover > expiry > join when draining;
//! * **rate-limited + coalescing** — a subscription pushes at most once
//!   per `min_interval_ms`; deltas arriving inside the window merge
//!   (an add that is removed again before the push cancels out
//!   entirely), so a churn storm degrades to coarser batches instead of
//!   unbounded fanout.

use crate::error::CoreError;
use crate::ids::{LandmarkId, PeerId};
use crate::path::PeerPath;
use crate::router_index::Neighbor;
use crate::telemetry::{Counter, Gauge, TelemetryRegistry};
use nearpeer_topology::RouterId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Delivery priority of a delta, ordered `Join < Expiry < Handover`:
/// mobility updates go out first (the peer's old coordinates are
/// actively wrong), then failure evictions, then ordinary churn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum DeltaClass {
    /// Ordinary churn: a join or graceful leave touched the answer.
    Join,
    /// A lease expiry (failed peer) touched the answer.
    Expiry,
    /// A mobility handover touched the answer (or re-pathed the watch).
    Handover,
}

impl DeltaClass {
    /// Wire discriminant.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Parses a wire discriminant.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(DeltaClass::Join),
            1 => Some(DeltaClass::Expiry),
            2 => Some(DeltaClass::Handover),
            _ => None,
        }
    }
}

/// Parameters of one standing subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subscription {
    /// The subscribing peer (must be registered; the watch query is its
    /// stored path with itself excluded, exactly like `neighbors_of`).
    pub peer: PeerId,
    /// Neighbors watched.
    pub k: usize,
    /// Minimum milliseconds between pushes to this subscription; deltas
    /// inside the window coalesce. `0` = push at every drain.
    pub min_interval_ms: u64,
}

/// One incremental update to a subscription's answer. Applying `removed`
/// (drop those peers) then `added` (upsert, replacing a stale `dtree`)
/// to the previous view yields the new `k`-nearest list; re-sorting by
/// ascending `(dtree, peer)` with the fill section's estimates in place
/// reproduces the exact `closest_to_path` order.
#[derive(Debug, Clone, PartialEq)]
pub struct NeighborDelta {
    /// The subscriber.
    pub peer: PeerId,
    /// The server epoch of the last churn event merged into this delta.
    pub epoch: u64,
    /// Highest-priority class among the coalesced events.
    pub class: DeltaClass,
    /// Peers entering the answer (or whose `dtree` changed), with their
    /// fresh distances.
    pub added: Vec<Neighbor>,
    /// Peers leaving the answer.
    pub removed: Vec<PeerId>,
    /// Age of the oldest coalesced-in event at push time (delta latency).
    pub queued_ms: u64,
}

/// Observability counters, exposed like `OracleStats` through the bench
/// swarm's phase reporting.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubscriptionStats {
    /// Standing subscriptions currently registered.
    pub active: u64,
    /// Deltas drained to clients.
    pub pushed: u64,
    /// Churn events merged into an already-pending delta instead of
    /// queueing a new one (the coalescing path).
    pub coalesced: u64,
    /// Answer entries that entered *and* left inside one coalescing
    /// window — cancelled outright, never pushed.
    pub dropped_to_coalesce: u64,
    /// Full re-queries forced by evictions (the incremental path could
    /// not know the next-best candidate).
    pub refills: u64,
    /// Subscriptions with a pending (not yet drained) delta.
    pub queue_depth: u64,
    /// High-water mark of `queue_depth` (bounded by `active` by
    /// construction: one pending per subscription).
    pub peak_queue_depth: u64,
}

/// What the registry needs from the directory it watches. Every method
/// is a pure read; hosts call [`SubscriptionRegistry::observe`] *after*
/// the directory mutation completed, so these reads see final state.
pub trait SubscriptionHost {
    /// The stored path of a registered peer.
    fn path_of(&self, peer: PeerId) -> Option<PeerPath>;
    /// The landmark whose router this is, if any.
    fn landmark_at(&self, router: RouterId) -> Option<LandmarkId>;
    /// Bootstrap hop distance between two landmarks (`None` = unknown).
    fn bridge(&self, from: LandmarkId, to: LandmarkId) -> Option<u32>;
    /// Whether `closest_to_path` runs the cross-landmark fill fallback.
    fn fills_enabled(&self) -> bool;
    /// `closest_to_path(path, k, exclude)` split into the full answer
    /// and the length of its exact section (the fill section follows).
    fn query_split(&self, path: &PeerPath, k: usize, exclude: PeerId) -> (Vec<Neighbor>, usize);
}

/// One pending (not yet drained) coalesced delta.
#[derive(Debug)]
struct Pending {
    added: Vec<PendingAdd>,
    removed: Vec<PeerId>,
    class: DeltaClass,
    epoch: u64,
    /// FIFO tiebreaker inside a priority class.
    seq: u64,
    /// When the first event of this pending was observed.
    enqueued_ms: u64,
}

/// One router's watch-path postings plus a pruning bound.
#[derive(Debug)]
struct Posting {
    /// `(sub, hops from subscriber)` entries.
    watchers: Vec<(u32, u32)>,
    /// Stale-high admission bound: at least the max over watchers of
    /// `admission_bound(sub) - hops`. A candidate whose own offset at
    /// this router exceeds it cannot enter any watcher's exact section
    /// through this router, so the whole list is skipped — this is what
    /// keeps a join near a popular router (every subscriber under a
    /// landmark shares its terminal router) from fanning out to all of
    /// them. Raised eagerly wherever a sub's threshold can grow
    /// (subscribe, re-path, refill); lowered lazily on the next walk.
    bound: i64,
}

impl Posting {
    fn new() -> Self {
        Self {
            watchers: Vec::new(),
            bound: i64::MIN,
        }
    }
}

#[derive(Debug)]
struct PendingAdd {
    n: Neighbor,
    /// True when the peer was *not* in the last pushed view — its
    /// removal inside the same window cancels the entry outright.
    fresh: bool,
}

impl Pending {
    /// A peer entered the answer now.
    fn note_add(&mut self, n: Neighbor) {
        if let Some(i) = self.removed.iter().position(|&q| q == n.peer) {
            // Removed earlier in the window: the pushed view had it, so
            // the re-add must not look fresh.
            self.removed.swap_remove(i);
            self.upsert(n, false);
        } else {
            self.upsert(n, true);
        }
    }

    /// A peer stayed in the answer but its distance changed.
    fn note_update(&mut self, n: Neighbor) {
        self.upsert(n, false);
    }

    fn upsert(&mut self, n: Neighbor, fresh_if_new: bool) {
        match self.added.iter_mut().find(|e| e.n.peer == n.peer) {
            Some(e) => e.n = n,
            None => self.added.push(PendingAdd {
                n,
                fresh: fresh_if_new,
            }),
        }
    }

    /// A peer left the answer now. Returns true when the event cancelled
    /// a fresh add (nothing survives to push).
    fn note_remove(&mut self, peer: PeerId) -> bool {
        if let Some(i) = self.added.iter().position(|e| e.n.peer == peer) {
            let fresh = self.added[i].fresh;
            self.added.swap_remove(i);
            if fresh {
                return true;
            }
        }
        if !self.removed.contains(&peer) {
            self.removed.push(peer);
        }
        false
    }

    fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// One live subscription's incremental state.
#[derive(Debug)]
struct SubState {
    peer: PeerId,
    k: usize,
    min_interval_ms: u64,
    client: u64,
    /// The watch query: the subscriber's stored path (re-pathed on its
    /// own handover).
    path: PeerPath,
    /// The watch path's landmark (fill ranking needs the bridge row).
    own_lm: Option<LandmarkId>,
    /// Current answer: exact section (ascending `(dtree, peer)`) then
    /// fill section (ascending `(estimate, peer)`), `closest_to_path`
    /// order by construction.
    answer: Vec<Neighbor>,
    /// Length of the exact section.
    exact_len: usize,
    pending: Option<Pending>,
    last_push_ms: u64,
    /// Transient within one `observe`: an eviction (or re-path) made the
    /// incremental answer unknowable; a full re-query settles it before
    /// `observe` returns.
    dirty: bool,
}

impl SubState {
    /// Largest exact dtree still admissible: `i64::MAX` while the exact
    /// section is short of `k` (every exact candidate enters), the worst
    /// exact member's dtree once it is full (ties still enter on the
    /// peer-id tiebreak, so pruning compares strictly).
    fn admission_bound(&self) -> i64 {
        if self.exact_len < self.k {
            i64::MAX
        } else {
            self.answer[self.k - 1].dtree as i64
        }
    }
}

/// Internal counters, held as shared telemetry handles so a
/// [`TelemetryRegistry`] that adopts them (see
/// [`SubscriptionRegistry::bind_telemetry`]) reads the very same atomics
/// the engine mutates — the legacy [`SubscriptionStats`] snapshot and a
/// live scrape can never disagree. The queue-depth gauge saturates on
/// decrement and tracks its own peak.
#[derive(Debug, Default)]
struct Counters {
    pushed: Arc<Counter>,
    coalesced: Arc<Counter>,
    dropped_to_coalesce: Arc<Counter>,
    refills: Arc<Counter>,
    queue_depth: Arc<Gauge>,
}

/// Per-add scratch slot for the router-walk minimum (generation-stamped
/// so no per-event allocation or clearing).
#[derive(Debug, Default, Clone, Copy)]
struct SeenSlot {
    gen: u64,
    min: u32,
}

/// The standing-subscription engine: registrations, incremental answer
/// maintenance, and the per-client coalescing delivery queues.
///
/// Not a lock or a thread in sight — the registry is plain mutable
/// state; hosts decide how to serialize access (the facade's `&mut
/// self`, the actor server's mutex).
#[derive(Debug, Default)]
pub struct SubscriptionRegistry {
    subs: Vec<Option<SubState>>,
    free: Vec<u32>,
    by_peer: HashMap<PeerId, u32>,
    /// Reverse membership: answer member → subscriptions holding it.
    members: HashMap<PeerId, Vec<u32>>,
    /// Watch-path router index: router → posting list. An added peer
    /// walks its own path through this to find every subscription it
    /// could be an exact candidate for (pruned by each posting's
    /// admission bound).
    routers: HashMap<RouterId, Posting>,
    /// Subscriptions whose exact section is short of `k` — the only ones
    /// an added peer can enter through the cross-landmark fill.
    hungry: Vec<u32>,
    clients: HashMap<u64, Vec<u32>>,
    next_client: u64,
    next_seq: u64,
    counters: Counters,
    // Scratch (reused across observe calls).
    seen: Vec<SeenSlot>,
    gen: u64,
    touched: Vec<u32>,
    dirty_subs: Vec<u32>,
    scratch_ids: Vec<u32>,
}

impl SubscriptionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no subscription is active (hosts early-out their churn
    /// hooks on this).
    pub fn is_empty(&self) -> bool {
        self.by_peer.is_empty()
    }

    /// Active subscription count.
    pub fn active(&self) -> usize {
        self.by_peer.len()
    }

    /// Whether `peer` holds a standing subscription.
    pub fn is_subscribed(&self, peer: PeerId) -> bool {
        self.by_peer.contains_key(&peer)
    }

    /// The current answer view of `peer`'s subscription, if any (testing
    /// and introspection; clients maintain this from deltas).
    pub fn answer_of(&self, peer: PeerId) -> Option<&[Neighbor]> {
        let &sid = self.by_peer.get(&peer)?;
        self.subs[sid as usize].as_ref().map(|s| &s.answer[..])
    }

    /// Opens a delivery-queue client (one per connection).
    pub fn open_client(&mut self) -> u64 {
        self.next_client += 1;
        let id = self.next_client;
        self.clients.insert(id, Vec::new());
        id
    }

    /// Closes a client, dropping all its subscriptions and queued deltas.
    pub fn close_client(&mut self, client: u64) {
        let Some(sids) = self.clients.remove(&client) else {
            return;
        };
        for sid in sids {
            if self.subs[sid as usize].is_some() {
                self.drop_sub(sid);
            }
        }
    }

    /// Registers (or replaces) `sub.peer`'s standing subscription and
    /// returns the initial answer snapshot. The peer must be registered
    /// in the directory; its stored path becomes the watch query.
    pub fn subscribe<H: SubscriptionHost>(
        &mut self,
        host: &H,
        client: u64,
        sub: Subscription,
        now_ms: u64,
    ) -> Result<Vec<Neighbor>, CoreError> {
        if sub.k == 0 {
            return Err(CoreError::InvalidConfig(
                "a subscription must watch at least one neighbor".into(),
            ));
        }
        let path = host
            .path_of(sub.peer)
            .ok_or(CoreError::UnknownPeer(sub.peer))?;
        if let Some(&old) = self.by_peer.get(&sub.peer) {
            self.drop_sub(old);
        }
        let (answer, exact_len) = host.query_split(&path, sub.k, sub.peer);
        let own_lm = host.landmark_at(path.landmark_router());
        let sid = match self.free.pop() {
            Some(i) => i,
            None => {
                self.subs.push(None);
                self.seen.push(SeenSlot::default());
                (self.subs.len() - 1) as u32
            }
        };
        let thr = if exact_len < sub.k {
            i64::MAX
        } else {
            answer[sub.k - 1].dtree as i64
        };
        for (r, off) in path.with_depths() {
            let posting = self.routers.entry(r).or_insert_with(Posting::new);
            posting.watchers.push((sid, off));
            posting.bound = posting.bound.max(thr.saturating_sub(off as i64));
        }
        for n in &answer {
            self.members.entry(n.peer).or_default().push(sid);
        }
        if host.fills_enabled() && exact_len < sub.k {
            self.hungry.push(sid);
        }
        self.by_peer.insert(sub.peer, sid);
        self.clients.entry(client).or_default().push(sid);
        self.subs[sid as usize] = Some(SubState {
            peer: sub.peer,
            k: sub.k,
            min_interval_ms: sub.min_interval_ms,
            client,
            path,
            own_lm,
            answer: answer.clone(),
            exact_len,
            pending: None,
            last_push_ms: now_ms,
            dirty: false,
        });
        Ok(answer)
    }

    /// Cancels `peer`'s subscription (with any queued delta). Returns
    /// whether one existed.
    pub fn unsubscribe(&mut self, peer: PeerId) -> bool {
        match self.by_peer.get(&peer) {
            Some(&sid) => {
                self.drop_sub(sid);
                true
            }
            None => false,
        }
    }

    /// Feeds one churn event batch through the incremental engine. Hosts
    /// call this from every churn entry point *after* the directory
    /// mutation, passing the touched peers: `added` for fresh joins (and
    /// the re-added peer of a handover), `removed` for leaves, expiries
    /// and the handover teardown. A peer in both lists is a handover:
    /// its own subscription re-paths instead of dying.
    pub fn observe<H: SubscriptionHost>(
        &mut self,
        host: &H,
        class: DeltaClass,
        epoch: u64,
        now_ms: u64,
        added: &[PeerId],
        removed: &[PeerId],
    ) {
        if self.by_peer.is_empty() {
            return;
        }
        debug_assert!(self.dirty_subs.is_empty());

        // --- Removals -------------------------------------------------
        for &p in removed {
            // A departed subscriber's subscription dies with its
            // registration — unless the same observe re-adds the peer
            // (handover: the watch re-paths below instead).
            if let Some(&sid) = self.by_peer.get(&p) {
                if !added.contains(&p) {
                    self.drop_sub(sid);
                }
            }
            let Some(holders) = self.members.remove(&p) else {
                continue;
            };
            for sid in holders {
                self.member_removed(sid, p, class, epoch, now_ms);
            }
        }

        // --- Re-path subscribers that moved ---------------------------
        for &p in added {
            if let Some(&sid) = self.by_peer.get(&p) {
                if let Some(new_path) = host.path_of(p) {
                    self.rewatch(host, sid, new_path);
                }
            }
        }

        // --- Additions ------------------------------------------------
        for &p in added {
            let Some(path) = host.path_of(p) else {
                // Raced away again (actor plane) — the matching removal
                // observe keeps the answers consistent.
                continue;
            };
            self.peer_added(host, p, &path, class, epoch, now_ms);
        }

        // --- Settle evictions with full re-queries --------------------
        for i in 0..self.dirty_subs.len() {
            let sid = self.dirty_subs[i];
            self.refill(host, sid, class, epoch, now_ms);
        }
        self.dirty_subs.clear();
    }

    /// Drains up to `max` eligible pending deltas for `client`, highest
    /// priority class first (FIFO within a class), respecting each
    /// subscription's `min_interval_ms` against `now_ms`.
    pub fn drain(&mut self, client: u64, now_ms: u64, max: usize, out: &mut Vec<NeighborDelta>) {
        let Some(sids) = self.clients.get(&client) else {
            return;
        };
        // (inverted class, seq): sorts handover-first, then FIFO.
        let mut eligible: Vec<(u8, u64, u32)> = Vec::new();
        for &sid in sids {
            let Some(s) = self.subs[sid as usize].as_ref() else {
                continue;
            };
            if let Some(p) = &s.pending {
                if now_ms >= s.last_push_ms.saturating_add(s.min_interval_ms) {
                    eligible.push((u8::MAX - p.class.code(), p.seq, sid));
                }
            }
        }
        eligible.sort_unstable();
        for &(_, _, sid) in eligible.iter().take(max) {
            let s = self.subs[sid as usize].as_mut().expect("eligible sub");
            let p = s.pending.take().expect("eligible pending");
            s.last_push_ms = now_ms;
            self.counters.queue_depth.sub(1);
            self.counters.pushed.inc();
            out.push(NeighborDelta {
                peer: s.peer,
                epoch: p.epoch,
                class: p.class,
                added: p.added.into_iter().map(|e| e.n).collect(),
                removed: p.removed,
                queued_ms: now_ms.saturating_sub(p.enqueued_ms),
            });
        }
    }

    /// Counter snapshot. Safe under a concurrent scrape: every field is
    /// one atomic read, and `queue_depth` saturates rather than
    /// underflowing, so the snapshot never shows an inverted pair.
    pub fn stats(&self) -> SubscriptionStats {
        SubscriptionStats {
            active: self.by_peer.len() as u64,
            pushed: self.counters.pushed.get(),
            coalesced: self.counters.coalesced.get(),
            dropped_to_coalesce: self.counters.dropped_to_coalesce.get(),
            refills: self.counters.refills.get(),
            queue_depth: self.counters.queue_depth.get(),
            peak_queue_depth: self.counters.queue_depth.peak(),
        }
    }

    /// Adopts this registry's counters into `reg` under `sub_*` names,
    /// making the engine's own atomics scrapeable live.
    pub fn bind_telemetry(&self, reg: &TelemetryRegistry) {
        reg.adopt_counter("sub_pushed_total", "", self.counters.pushed.clone());
        reg.adopt_counter("sub_coalesced_total", "", self.counters.coalesced.clone());
        reg.adopt_counter(
            "sub_dropped_to_coalesce_total",
            "",
            self.counters.dropped_to_coalesce.clone(),
        );
        reg.adopt_counter("sub_refills_total", "", self.counters.refills.clone());
        reg.adopt_gauge("sub_queue_depth", "", self.counters.queue_depth.clone());
    }

    // --- internals ----------------------------------------------------

    /// Gets-or-creates the pending delta of `sub`, merging class/epoch.
    fn pend<'a>(
        counters: &mut Counters,
        next_seq: &mut u64,
        s: &'a mut SubState,
        class: DeltaClass,
        epoch: u64,
        now_ms: u64,
    ) -> &'a mut Pending {
        if s.pending.is_some() {
            counters.coalesced.inc();
        } else {
            *next_seq += 1;
            counters.queue_depth.add(1); // the gauge tracks its own peak
            s.pending = Some(Pending {
                added: Vec::new(),
                removed: Vec::new(),
                class,
                epoch,
                seq: *next_seq,
                enqueued_ms: now_ms,
            });
        }
        let p = s.pending.as_mut().expect("just ensured");
        p.class = p.class.max(class);
        p.epoch = epoch;
        p
    }

    /// Drops a now-empty pending (everything cancelled out).
    fn settle_pending(counters: &mut Counters, s: &mut SubState) {
        if s.pending.as_ref().is_some_and(Pending::is_empty) {
            s.pending = None;
            counters.queue_depth.sub(1);
        }
    }

    /// One subscription lost answer member `p`.
    fn member_removed(&mut self, sid: u32, p: PeerId, class: DeltaClass, epoch: u64, now_ms: u64) {
        let s = self.subs[sid as usize]
            .as_mut()
            .expect("members index is coherent");
        if s.dirty {
            return; // the refill diff will account for p too
        }
        let Some(idx) = s.answer.iter().position(|n| n.peer == p) else {
            return;
        };
        if s.answer.len() == s.k {
            // The answer was full: the evicted (k+1)-th candidate is
            // unknown to the incremental view — settle with a re-query.
            s.dirty = true;
            self.dirty_subs.push(sid);
            return;
        }
        // Short answer = every candidate is already in it; dropping the
        // departed member keeps that invariant, no refill needed.
        s.answer.remove(idx);
        if idx < s.exact_len {
            s.exact_len -= 1;
        }
        let pending = Self::pend(
            &mut self.counters,
            &mut self.next_seq,
            s,
            class,
            epoch,
            now_ms,
        );
        if pending.note_remove(p) {
            self.counters.dropped_to_coalesce.inc();
        }
        Self::settle_pending(&mut self.counters, s);
    }

    /// A peer entered the directory: offer it to every subscription it
    /// could improve — exact candidates through the watch-path router
    /// index, fill candidates through the hungry set.
    fn peer_added<H: SubscriptionHost>(
        &mut self,
        host: &H,
        p: PeerId,
        path: &PeerPath,
        class: DeltaClass,
        epoch: u64,
        now_ms: u64,
    ) {
        // Exact pass: walk the added peer's path through the watch-path
        // router index; a shared router at offsets (q, d) witnesses a
        // candidate dtree of q + d, and the minimum over shared routers
        // is exactly `PeerPath::dtree`.
        self.gen += 1;
        self.touched.clear();
        for (r, p_off) in path.with_depths() {
            let Some(posting) = self.routers.get_mut(&r) else {
                continue;
            };
            if (p_off as i64) > posting.bound {
                continue; // no watcher here can admit a candidate this deep
            }
            let mut fresh_bound = i64::MIN;
            for &(sid, q_off) in &posting.watchers {
                let thr = self.subs[sid as usize]
                    .as_ref()
                    .expect("router index is coherent")
                    .admission_bound();
                fresh_bound = fresh_bound.max(thr.saturating_sub(q_off as i64));
                let d = q_off + p_off;
                if d as i64 > thr {
                    continue; // cannot enter this watcher via this router
                }
                let slot = &mut self.seen[sid as usize];
                if slot.gen != self.gen {
                    slot.gen = self.gen;
                    slot.min = d;
                    self.touched.push(sid);
                } else if d < slot.min {
                    slot.min = d;
                }
            }
            posting.bound = fresh_bound;
        }
        for i in 0..self.touched.len() {
            let sid = self.touched[i];
            let d = self.seen[sid as usize].min;
            self.offer_exact(sid, p, d, class, epoch, now_ms);
        }

        // Fill pass: only subscriptions short of exact candidates can
        // gain a cross-landmark fill, and only from a peer whose path
        // traverses some other landmark's router.
        if self.hungry.is_empty() || !host.fills_enabled() {
            return;
        }
        let lm_hits: Vec<(LandmarkId, u32)> = path
            .with_depths()
            .filter_map(|(r, d)| host.landmark_at(r).map(|lm| (lm, d)))
            .collect();
        if lm_hits.is_empty() {
            return;
        }
        self.scratch_ids.clear();
        self.scratch_ids.extend_from_slice(&self.hungry);
        for i in 0..self.scratch_ids.len() {
            let sid = self.scratch_ids[i];
            self.offer_fill(host, sid, p, &lm_hits, class, epoch, now_ms);
        }
    }

    /// Offers exact candidate `(p, d)` to subscription `sid`.
    fn offer_exact(
        &mut self,
        sid: u32,
        p: PeerId,
        d: u32,
        class: DeltaClass,
        epoch: u64,
        now_ms: u64,
    ) {
        let s = self.subs[sid as usize]
            .as_mut()
            .expect("router index is coherent");
        if s.dirty || s.peer == p || s.answer.iter().any(|n| n.peer == p) {
            return;
        }
        let key = (d, p);
        if s.exact_len < s.k {
            // The exact section holds *every* exact candidate while it
            // is short of k — the newcomer always enters, evicting the
            // worst fill if the answer overflows.
            let pos = s.answer[..s.exact_len].partition_point(|n| (n.dtree, n.peer) < key);
            s.answer.insert(pos, Neighbor { peer: p, dtree: d });
            s.exact_len += 1;
            let evicted = (s.answer.len() > s.k).then(|| s.answer.pop().expect("overflow"));
            if s.exact_len == s.k {
                if let Some(i) = self.hungry.iter().position(|&x| x == sid) {
                    self.hungry.swap_remove(i);
                }
            }
            let pending = Self::pend(
                &mut self.counters,
                &mut self.next_seq,
                s,
                class,
                epoch,
                now_ms,
            );
            pending.note_add(Neighbor { peer: p, dtree: d });
            if let Some(ev) = evicted {
                if pending.note_remove(ev.peer) {
                    self.counters.dropped_to_coalesce.inc();
                }
            }
            Self::settle_pending(&mut self.counters, s);
            self.members.entry(p).or_default().push(sid);
            if let Some(ev) = evicted {
                if let Some(holders) = self.members.get_mut(&ev.peer) {
                    holders.retain(|&x| x != sid);
                }
            }
        } else {
            // Full exact section (no fills exist then): displace the
            // worst exact member if the newcomer beats it.
            let worst = s.answer[s.k - 1];
            if key >= (worst.dtree, worst.peer) {
                return;
            }
            s.answer.pop();
            let pos = s.answer.partition_point(|n| (n.dtree, n.peer) < key);
            s.answer.insert(pos, Neighbor { peer: p, dtree: d });
            let pending = Self::pend(
                &mut self.counters,
                &mut self.next_seq,
                s,
                class,
                epoch,
                now_ms,
            );
            pending.note_add(Neighbor { peer: p, dtree: d });
            if pending.note_remove(worst.peer) {
                self.counters.dropped_to_coalesce.inc();
            }
            Self::settle_pending(&mut self.counters, s);
            self.members.entry(p).or_default().push(sid);
            if let Some(holders) = self.members.get_mut(&worst.peer) {
                holders.retain(|&x| x != sid);
            }
        }
    }

    /// Offers fill candidate `p` (landmark traversals `lm_hits`) to the
    /// hungry subscription `sid`.
    #[allow(clippy::too_many_arguments)]
    fn offer_fill<H: SubscriptionHost>(
        &mut self,
        host: &H,
        sid: u32,
        p: PeerId,
        lm_hits: &[(LandmarkId, u32)],
        class: DeltaClass,
        epoch: u64,
        now_ms: u64,
    ) {
        let s = self.subs[sid as usize].as_mut().expect("hungry sub alive");
        if s.dirty || s.peer == p || s.answer.iter().any(|n| n.peer == p) {
            return;
        }
        let Some(own) = s.own_lm else {
            return;
        };
        // The fill merge ranks a peer by the best cursor it appears on:
        // min over traversed foreign landmark routers of
        // depth(query) + bridge + depth-below-that-router.
        let mut est: Option<u32> = None;
        for &(lm, depth) in lm_hits {
            if lm == own {
                continue;
            }
            if let Some(bridge) = host.bridge(own, lm) {
                let e = s.path.depth() + bridge + depth;
                est = Some(est.map_or(e, |cur| cur.min(e)));
            }
        }
        let Some(e) = est else {
            return;
        };
        debug_assert!(s.exact_len < s.k, "hungry set is coherent");
        let key = (e, p);
        if s.answer.len() == s.k {
            let worst = *s.answer.last().expect("full answer");
            if key >= (worst.dtree, worst.peer) {
                return;
            }
            s.answer.pop();
            let pos =
                s.exact_len + s.answer[s.exact_len..].partition_point(|n| (n.dtree, n.peer) < key);
            s.answer.insert(pos, Neighbor { peer: p, dtree: e });
            let pending = Self::pend(
                &mut self.counters,
                &mut self.next_seq,
                s,
                class,
                epoch,
                now_ms,
            );
            pending.note_add(Neighbor { peer: p, dtree: e });
            if pending.note_remove(worst.peer) {
                self.counters.dropped_to_coalesce.inc();
            }
            Self::settle_pending(&mut self.counters, s);
            self.members.entry(p).or_default().push(sid);
            if let Some(holders) = self.members.get_mut(&worst.peer) {
                holders.retain(|&x| x != sid);
            }
        } else {
            // Short answer holds every candidate: the newcomer joins the
            // fill section at its sorted slot.
            let pos =
                s.exact_len + s.answer[s.exact_len..].partition_point(|n| (n.dtree, n.peer) < key);
            s.answer.insert(pos, Neighbor { peer: p, dtree: e });
            let pending = Self::pend(
                &mut self.counters,
                &mut self.next_seq,
                s,
                class,
                epoch,
                now_ms,
            );
            pending.note_add(Neighbor { peer: p, dtree: e });
            Self::settle_pending(&mut self.counters, s);
            self.members.entry(p).or_default().push(sid);
        }
    }

    /// The subscriber itself moved: swap the watch path and settle with
    /// a refill (the whole ranking basis changed).
    fn rewatch<H: SubscriptionHost>(&mut self, host: &H, sid: u32, new_path: PeerPath) {
        let s = self.subs[sid as usize].as_mut().expect("sub alive");
        if s.path == new_path {
            return;
        }
        let thr = s.admission_bound();
        for r in s.path.routers() {
            if let Some(posting) = self.routers.get_mut(r) {
                posting.watchers.retain(|&(x, _)| x != sid);
                if posting.watchers.is_empty() {
                    self.routers.remove(r);
                }
            }
        }
        for (r, off) in new_path.with_depths() {
            let posting = self.routers.entry(r).or_insert_with(Posting::new);
            posting.watchers.push((sid, off));
            posting.bound = posting.bound.max(thr.saturating_sub(off as i64));
        }
        s.own_lm = host.landmark_at(new_path.landmark_router());
        s.path = new_path;
        if !s.dirty {
            s.dirty = true;
            self.dirty_subs.push(sid);
        }
    }

    /// Settles a dirty subscription with a full re-query, diffing old
    /// against new to emit the exact delta.
    fn refill<H: SubscriptionHost>(
        &mut self,
        host: &H,
        sid: u32,
        class: DeltaClass,
        epoch: u64,
        now_ms: u64,
    ) {
        let Some(s) = self.subs[sid as usize].as_ref() else {
            return; // dropped between marking and settling
        };
        if !s.dirty {
            return;
        }
        let (peer, k, path) = (s.peer, s.k, s.path.clone());
        let (new, new_exact) = host.query_split(&path, k, peer);
        self.counters.refills.inc();
        let s = self.subs[sid as usize].as_mut().expect("still alive");
        let mut note_removed: Vec<PeerId> = Vec::new();
        let mut note_added: Vec<Neighbor> = Vec::new();
        let mut note_updated: Vec<Neighbor> = Vec::new();
        for old in &s.answer {
            if !new.iter().any(|n| n.peer == old.peer) {
                note_removed.push(old.peer);
            }
        }
        for n in &new {
            match s.answer.iter().find(|o| o.peer == n.peer) {
                None => note_added.push(*n),
                Some(o) if o.dtree != n.dtree => note_updated.push(*n),
                Some(_) => {}
            }
        }
        if !(note_removed.is_empty() && note_added.is_empty() && note_updated.is_empty()) {
            let pending = Self::pend(
                &mut self.counters,
                &mut self.next_seq,
                s,
                class,
                epoch,
                now_ms,
            );
            for &p in &note_removed {
                if pending.note_remove(p) {
                    self.counters.dropped_to_coalesce.inc();
                }
            }
            for &n in &note_added {
                pending.note_add(n);
            }
            for &n in &note_updated {
                pending.note_update(n);
            }
            Self::settle_pending(&mut self.counters, s);
        }
        s.answer = new;
        s.exact_len = new_exact;
        s.dirty = false;
        // The re-query can *raise* the admission threshold (a nearer
        // member evicted for a farther one, or the answer going short):
        // the posting bounds along the watch path must keep up.
        let thr = s.admission_bound();
        for (r, off) in path.with_depths() {
            if let Some(posting) = self.routers.get_mut(&r) {
                posting.bound = posting.bound.max(thr.saturating_sub(off as i64));
            }
        }
        let hungry_now = host.fills_enabled() && new_exact < k;
        for &p in &note_removed {
            if let Some(holders) = self.members.get_mut(&p) {
                holders.retain(|&x| x != sid);
                if holders.is_empty() {
                    self.members.remove(&p);
                }
            }
        }
        for n in &note_added {
            self.members.entry(n.peer).or_default().push(sid);
        }
        let pos = self.hungry.iter().position(|&x| x == sid);
        match (hungry_now, pos) {
            (true, None) => self.hungry.push(sid),
            (false, Some(i)) => {
                self.hungry.swap_remove(i);
            }
            _ => {}
        }
    }

    /// Tears one subscription down completely.
    fn drop_sub(&mut self, sid: u32) {
        let s = self.subs[sid as usize].take().expect("sub alive");
        self.by_peer.remove(&s.peer);
        if let Some(sids) = self.clients.get_mut(&s.client) {
            sids.retain(|&x| x != sid);
        }
        for r in s.path.routers() {
            if let Some(posting) = self.routers.get_mut(r) {
                posting.watchers.retain(|&(x, _)| x != sid);
                if posting.watchers.is_empty() {
                    self.routers.remove(r);
                }
            }
        }
        for n in &s.answer {
            if let Some(holders) = self.members.get_mut(&n.peer) {
                holders.retain(|&x| x != sid);
                if holders.is_empty() {
                    self.members.remove(&n.peer);
                }
            }
        }
        if let Some(i) = self.hungry.iter().position(|&x| x == sid) {
            self.hungry.swap_remove(i);
        }
        if s.pending.is_some() {
            self.counters.queue_depth.sub(1);
        }
        self.free.push(sid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ManagementServer, ServerConfig};

    fn path(ids: &[u32]) -> PeerPath {
        PeerPath::new(ids.iter().map(|&i| RouterId(i)).collect()).unwrap()
    }

    /// Two landmarks (routers 0 and 100), 5 hops apart.
    fn server() -> ManagementServer {
        ManagementServer::new(
            vec![RouterId(0), RouterId(100)],
            vec![vec![0, 5], vec![5, 0]],
            ServerConfig::default(),
        )
    }

    fn watch(peer: PeerId, k: usize) -> Subscription {
        Subscription {
            peer,
            k,
            min_interval_ms: 0,
        }
    }

    /// Applies a delta stream to a client-side view (removed, then added
    /// as upserts) — the documented client contract.
    fn apply(view: &mut Vec<Neighbor>, d: &NeighborDelta) {
        view.retain(|n| !d.removed.contains(&n.peer));
        for a in &d.added {
            match view.iter_mut().find(|n| n.peer == a.peer) {
                Some(n) => n.dtree = a.dtree,
                None => view.push(*a),
            }
        }
    }

    /// Set-with-distances equality (the concatenated exact+fill answer is
    /// not globally sorted, so views compare as sets).
    fn same_view(mut a: Vec<Neighbor>, mut b: Vec<Neighbor>) -> bool {
        a.sort_unstable_by_key(|n| n.peer);
        b.sort_unstable_by_key(|n| n.peer);
        a == b
    }

    #[test]
    fn join_pushes_added_delta_matching_repoll() {
        let mut srv = server();
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        srv.register(PeerId(2), path(&[5, 2, 1, 0])).unwrap();
        let client = srv.open_sub_client();
        let mut view = srv.subscribe(client, watch(PeerId(1), 2)).unwrap();
        assert_eq!(
            view,
            vec![Neighbor {
                peer: PeerId(2),
                dtree: 2
            }]
        );

        srv.register(PeerId(3), path(&[6, 3, 1, 0])).unwrap();
        let mut deltas = Vec::new();
        srv.drain_deltas(client, 16, &mut deltas);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].class, DeltaClass::Join);
        for d in &deltas {
            apply(&mut view, d);
        }
        assert!(same_view(view, srv.neighbors_of(PeerId(1), 2).unwrap()));
    }

    #[test]
    fn add_then_remove_inside_window_cancels_out() {
        let mut srv = server();
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        srv.register(PeerId(2), path(&[5, 2, 1, 0])).unwrap();
        let client = srv.open_sub_client();
        srv.subscribe(client, watch(PeerId(1), 4)).unwrap();

        srv.register(PeerId(3), path(&[6, 2, 1, 0])).unwrap();
        srv.deregister(PeerId(3)).unwrap();
        let stats = srv.subscription_stats();
        assert_eq!(stats.queue_depth, 0, "fresh add + remove cancels");
        assert!(stats.dropped_to_coalesce >= 1);
        let mut deltas = Vec::new();
        srv.drain_deltas(client, 16, &mut deltas);
        assert!(deltas.is_empty());
    }

    #[test]
    fn eviction_forces_refill_matching_repoll() {
        let mut srv = server();
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        srv.register(PeerId(2), path(&[5, 2, 1, 0])).unwrap();
        srv.register(PeerId(3), path(&[6, 3, 1, 0])).unwrap();
        let client = srv.open_sub_client();
        // k=1: answer [2] (dtree 2); 3 (dtree 4) is the hidden runner-up.
        let mut view = srv.subscribe(client, watch(PeerId(1), 1)).unwrap();
        assert_eq!(
            view,
            vec![Neighbor {
                peer: PeerId(2),
                dtree: 2
            }]
        );

        srv.deregister(PeerId(2)).unwrap();
        assert_eq!(srv.subscription_stats().refills, 1);
        let mut deltas = Vec::new();
        srv.drain_deltas(client, 16, &mut deltas);
        for d in &deltas {
            apply(&mut view, d);
        }
        assert!(same_view(view, srv.neighbors_of(PeerId(1), 1).unwrap()));
        assert_eq!(
            deltas[0].removed,
            vec![PeerId(2)],
            "eviction surfaces as removed + the refilled runner-up"
        );
    }

    #[test]
    fn handover_outranks_join_when_draining() {
        let mut srv = server();
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        srv.register(PeerId(2), path(&[5, 2, 1, 0])).unwrap();
        srv.register(PeerId(10), path(&[104, 102, 101, 100]))
            .unwrap();
        srv.register(PeerId(11), path(&[105, 102, 101, 100]))
            .unwrap();
        let client = srv.open_sub_client();
        srv.subscribe(client, watch(PeerId(1), 1)).unwrap();
        srv.subscribe(client, watch(PeerId(10), 1)).unwrap();

        // Join-class delta for sub(1) first (peer 3 at dtree 1 displaces
        // peer 2 at dtree 2), then a handover moving peer 11 further from
        // peer 10 (dtree 2 → 4): the handover must drain first despite
        // arriving later.
        srv.register(PeerId(3), path(&[9, 4, 2, 1, 0])).unwrap();
        srv.handover(PeerId(11), path(&[106, 103, 101, 100]))
            .unwrap();
        let mut deltas = Vec::new();
        srv.drain_deltas(client, 16, &mut deltas);
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0].peer, PeerId(10));
        assert_eq!(deltas[0].class, DeltaClass::Handover);
        assert_eq!(deltas[1].peer, PeerId(1));
        assert_eq!(deltas[1].class, DeltaClass::Join);
    }

    #[test]
    fn min_interval_rate_limits_and_coalesces() {
        let mut srv = server();
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        srv.register(PeerId(2), path(&[5, 2, 1, 0])).unwrap();
        let client = srv.open_sub_client();
        let mut view = srv
            .subscribe(
                client,
                Subscription {
                    peer: PeerId(1),
                    k: 4,
                    min_interval_ms: 1000,
                },
            )
            .unwrap();

        srv.register(PeerId(3), path(&[6, 2, 1, 0])).unwrap();
        srv.register(PeerId(4), path(&[7, 2, 1, 0])).unwrap();
        let mut deltas = Vec::new();
        srv.drain_deltas(client, 16, &mut deltas);
        assert!(deltas.is_empty(), "inside the window nothing drains");
        assert!(srv.subscription_stats().coalesced >= 1);
        assert_eq!(srv.subscription_stats().queue_depth, 1);

        srv.set_sub_clock_ms(1000);
        srv.drain_deltas(client, 16, &mut deltas);
        assert_eq!(deltas.len(), 1, "one coalesced delta after the window");
        assert_eq!(deltas[0].queued_ms, 1000);
        for d in &deltas {
            apply(&mut view, d);
        }
        assert!(same_view(view, srv.neighbors_of(PeerId(1), 4).unwrap()));
    }

    #[test]
    fn churn_storm_stays_bounded() {
        let mut srv = server();
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        srv.register(PeerId(2), path(&[5, 2, 1, 0])).unwrap();
        let client = srv.open_sub_client();
        let mut view = srv.subscribe(client, watch(PeerId(1), 8)).unwrap();
        for round in 0..50u64 {
            let batch: Vec<(PeerId, PeerPath)> = (0..10)
                .map(|i| (PeerId(1000 + i), path(&[200 + i as u32, 2, 1, 0])))
                .collect();
            srv.register_batch_renewing(batch);
            let leave: Vec<PeerId> = (0..10)
                .map(PeerId)
                .map(|PeerId(i)| PeerId(1000 + i))
                .collect();
            srv.leave_batch(&leave);
            let stats = srv.subscription_stats();
            assert!(
                stats.queue_depth <= stats.active,
                "round {round}: one pending per subscription, never more"
            );
        }
        let stats = srv.subscription_stats();
        assert!(stats.coalesced > 0, "storm must coalesce");
        assert!(stats.peak_queue_depth <= 1);
        let mut deltas = Vec::new();
        srv.drain_deltas(client, 16, &mut deltas);
        for d in &deltas {
            apply(&mut view, d);
        }
        assert!(same_view(view, srv.neighbors_of(PeerId(1), 8).unwrap()));
    }

    #[test]
    fn subscriber_handover_rewatches_from_new_path() {
        let mut srv = server();
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        srv.register(PeerId(2), path(&[5, 2, 1, 0])).unwrap();
        srv.register(PeerId(10), path(&[104, 102, 101, 100]))
            .unwrap();
        let client = srv.open_sub_client();
        let mut view = srv.subscribe(client, watch(PeerId(1), 2)).unwrap();

        // The subscriber moves to the other landmark: its answer must be
        // recomputed from the new path, not patched from the old one.
        srv.handover(PeerId(1), path(&[105, 102, 101, 100]))
            .unwrap();
        let mut deltas = Vec::new();
        srv.drain_deltas(client, 16, &mut deltas);
        for d in &deltas {
            apply(&mut view, d);
        }
        assert!(same_view(view, srv.neighbors_of(PeerId(1), 2).unwrap()));
        assert!(srv.subscription_stats().active == 1);
    }

    #[test]
    fn departed_subscriber_is_auto_unsubscribed() {
        let mut srv = server();
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        srv.register(PeerId(2), path(&[5, 2, 1, 0])).unwrap();
        let client = srv.open_sub_client();
        srv.subscribe(client, watch(PeerId(1), 2)).unwrap();
        srv.subscribe(client, watch(PeerId(2), 2)).unwrap();
        assert_eq!(srv.subscription_stats().active, 2);

        srv.deregister(PeerId(2)).unwrap();
        let stats = srv.subscription_stats();
        assert_eq!(stats.active, 1, "departure cancels the subscription");
        // Peer 1's subscription saw peer 2 leave.
        let mut deltas = Vec::new();
        srv.drain_deltas(client, 16, &mut deltas);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].removed, vec![PeerId(2)]);
    }

    #[test]
    fn close_client_drops_subscriptions_and_queue() {
        let mut srv = server();
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        srv.register(PeerId(2), path(&[5, 2, 1, 0])).unwrap();
        let client = srv.open_sub_client();
        srv.subscribe(client, watch(PeerId(1), 2)).unwrap();
        srv.register(PeerId(3), path(&[6, 2, 1, 0])).unwrap();
        assert_eq!(srv.subscription_stats().queue_depth, 1);
        srv.close_sub_client(client);
        let stats = srv.subscription_stats();
        assert_eq!(stats.active, 0);
        assert_eq!(stats.queue_depth, 0);
    }

    #[test]
    fn cross_landmark_fill_tracks_foreign_joins() {
        let mut srv = server();
        // Lone peer at landmark 0: k=2 leaves the answer hungry.
        srv.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        let client = srv.open_sub_client();
        let mut view = srv.subscribe(client, watch(PeerId(1), 2)).unwrap();
        assert!(view.is_empty());

        // A foreign join fills the short answer through the bridge
        // estimate: depth(query)=3 + bridge(5) + depth of landmark router
        // in the joiner's path (3) = 11.
        srv.register(PeerId(10), path(&[104, 102, 101, 100]))
            .unwrap();
        let mut deltas = Vec::new();
        srv.drain_deltas(client, 16, &mut deltas);
        for d in &deltas {
            apply(&mut view, d);
        }
        assert!(same_view(
            view.clone(),
            srv.neighbors_of(PeerId(1), 2).unwrap()
        ));
        assert_eq!(
            view,
            vec![Neighbor {
                peer: PeerId(10),
                dtree: 11
            }]
        );
    }

    #[test]
    fn delta_class_codes_round_trip() {
        for class in [DeltaClass::Join, DeltaClass::Expiry, DeltaClass::Handover] {
            assert_eq!(DeltaClass::from_code(class.code()), Some(class));
        }
        assert_eq!(DeltaClass::from_code(3), None);
    }
}
