//! Unified telemetry plane: a process-wide registry of lock-free
//! counters, gauges, and log₂ latency histograms, with stable text
//! exposition.
//!
//! Design: metric handles ([`Counter`], [`Gauge`], [`Histogram`]) are
//! plain atomic structs wrapped in `Arc`s; subsystems keep their own
//! handles and mutate them lock-free on hot paths. The
//! [`TelemetryRegistry`] is only a *naming directory* — it maps
//! `base{labels}` names to handles so a snapshot can walk everything
//! that exists. Handles can be created through the registry
//! (get-or-create) or created by a subsystem first and adopted later
//! ([`TelemetryRegistry::adopt_counter`] and friends), which is how the
//! pre-existing stats structs (`SubscriptionStats`, `WriterStats`, shard
//! query counters) became views over the registry without changing their
//! accessors.
//!
//! Snapshots tolerate concurrent mutation: every value is a single
//! atomic read, histogram totals derive from the bucket reads, and any
//! derived subtraction in legacy stats accessors is saturating — so a
//! scrape taken mid-churn never reports `dropped > pushed`-style
//! inversions.
//!
//! The text exposition is Prometheus-style (`name{label} value`, plus
//! `_count`/`_sum`/`_max` and `quantile="…"` series per histogram) and
//! sorted by name, so diffs between scrapes are meaningful and the
//! loadgen can assert on exact lines.

mod histogram;
mod slow;

pub use histogram::{Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use slow::{
    SlowQueryLog, SlowQueryRecord, SLOW_QUERY_DISABLED, SLOW_QUERY_RATE, SLOW_QUERY_RING,
};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// A monotonically increasing counter. Relaxed atomics; lock-free.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrites the value. Counters are monotonic in steady state;
    /// this exists for restoring a persisted count at recovery time.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
}

/// An up/down instantaneous value (queue depths, occupancy). Decrements
/// saturate at zero so a racy snapshot never observes an underflowed
/// huge value.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    peak: AtomicU64,
}

impl Gauge {
    /// A fresh zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value (and folds it into the peak).
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.peak.fetch_max(v, Ordering::Relaxed);
    }

    /// Adds `n` (and folds the new value into the peak).
    #[inline]
    pub fn add(&self, n: u64) {
        let now = self.value.fetch_add(n, Ordering::Relaxed) + n;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero.
    #[inline]
    pub fn sub(&self, n: u64) {
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// High-water mark since startup.
    #[inline]
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// Records elapsed microseconds into a histogram on drop.
pub struct TimerGuard<'a> {
    hist: &'a Histogram,
    start: Instant,
}

impl<'a> TimerGuard<'a> {
    /// Starts timing against `hist`.
    pub fn start(hist: &'a Histogram) -> Self {
        Self {
            hist,
            start: Instant::now(),
        }
    }

    /// Microseconds elapsed so far.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

impl Drop for TimerGuard<'_> {
    fn drop(&mut self) {
        self.hist.record(self.elapsed_us());
    }
}

/// One named handle in the registry.
#[derive(Debug, Clone)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug, Clone)]
struct Entry {
    base: String,
    labels: String, // e.g. `kind="query-request"`, empty for none
    handle: Handle,
}

/// The naming directory (see module docs). Cheap to share via `Arc`;
/// registration takes a write lock, snapshots a read lock, and metric
/// mutation touches neither.
#[derive(Default)]
pub struct TelemetryRegistry {
    entries: RwLock<Vec<Entry>>,
    timing: AtomicBool,
    slow: SlowQueryLog,
}

impl TelemetryRegistry {
    /// A fresh registry with latency timing enabled.
    pub fn new() -> Self {
        let r = Self::default();
        r.timing.store(true, Ordering::Relaxed);
        r
    }

    fn find(&self, base: &str, labels: &str) -> Option<Handle> {
        self.entries
            .read()
            .unwrap()
            .iter()
            .find(|e| e.base == base && e.labels == labels)
            .map(|e| e.handle.clone())
    }

    fn insert(&self, base: &str, labels: &str, make: impl FnOnce() -> Handle) -> Handle {
        let mut entries = self.entries.write().unwrap();
        if let Some(e) = entries
            .iter()
            .find(|e| e.base == base && e.labels == labels)
        {
            return e.handle.clone();
        }
        let handle = make();
        entries.push(Entry {
            base: base.to_string(),
            labels: labels.to_string(),
            handle: handle.clone(),
        });
        handle
    }

    /// Get-or-create an unlabeled counter.
    pub fn counter(&self, base: &str) -> Arc<Counter> {
        self.counter_labeled(base, "")
    }

    /// Get-or-create a labeled counter (`labels` like `kind="query"`).
    pub fn counter_labeled(&self, base: &str, labels: &str) -> Arc<Counter> {
        if let Some(Handle::Counter(c)) = self.find(base, labels) {
            return c;
        }
        match self.insert(base, labels, || Handle::Counter(Arc::new(Counter::new()))) {
            Handle::Counter(c) => c,
            _ => panic!("metric {base}{{{labels}}} registered with a different type"),
        }
    }

    /// Get-or-create an unlabeled gauge.
    pub fn gauge(&self, base: &str) -> Arc<Gauge> {
        self.gauge_labeled(base, "")
    }

    /// Get-or-create a labeled gauge.
    pub fn gauge_labeled(&self, base: &str, labels: &str) -> Arc<Gauge> {
        if let Some(Handle::Gauge(g)) = self.find(base, labels) {
            return g;
        }
        match self.insert(base, labels, || Handle::Gauge(Arc::new(Gauge::new()))) {
            Handle::Gauge(g) => g,
            _ => panic!("metric {base}{{{labels}}} registered with a different type"),
        }
    }

    /// Get-or-create an unlabeled histogram.
    pub fn histogram(&self, base: &str) -> Arc<Histogram> {
        self.histogram_labeled(base, "")
    }

    /// Get-or-create a labeled histogram.
    pub fn histogram_labeled(&self, base: &str, labels: &str) -> Arc<Histogram> {
        if let Some(Handle::Histogram(h)) = self.find(base, labels) {
            return h;
        }
        match self.insert(base, labels, || {
            Handle::Histogram(Arc::new(Histogram::new()))
        }) {
            Handle::Histogram(h) => h,
            _ => panic!("metric {base}{{{labels}}} registered with a different type"),
        }
    }

    /// Adopts a counter a subsystem already owns, so the legacy accessor
    /// and the registry read the very same atomic.
    pub fn adopt_counter(&self, base: &str, labels: &str, c: Arc<Counter>) {
        self.insert(base, labels, || Handle::Counter(c));
    }

    /// Adopts a subsystem-owned gauge.
    pub fn adopt_gauge(&self, base: &str, labels: &str, g: Arc<Gauge>) {
        self.insert(base, labels, || Handle::Gauge(g));
    }

    /// Adopts a subsystem-owned histogram.
    pub fn adopt_histogram(&self, base: &str, labels: &str, h: Arc<Histogram>) {
        self.insert(base, labels, || Handle::Histogram(h));
    }

    /// Whether latency timers should run (the on/off A/B switch).
    #[inline]
    pub fn timing_enabled(&self) -> bool {
        self.timing.load(Ordering::Relaxed)
    }

    /// Flips latency timing; counters and gauges are unaffected.
    pub fn set_timing(&self, on: bool) {
        self.timing.store(on, Ordering::Relaxed);
    }

    /// Starts a timer guard against `hist` iff timing is enabled.
    pub fn maybe_time<'a>(&self, hist: &'a Histogram) -> Option<TimerGuard<'a>> {
        self.timing_enabled().then(|| TimerGuard::start(hist))
    }

    /// The slow-query trace log.
    pub fn slow(&self) -> &SlowQueryLog {
        &self.slow
    }

    /// Point-in-time copy of every registered metric, sorted by name.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut entries: Vec<SnapshotEntry> = self
            .entries
            .read()
            .unwrap()
            .iter()
            .map(|e| SnapshotEntry {
                base: e.base.clone(),
                labels: e.labels.clone(),
                value: match &e.handle {
                    Handle::Counter(c) => SnapshotValue::Counter(c.get()),
                    Handle::Gauge(g) => SnapshotValue::Gauge {
                        value: g.get(),
                        peak: g.peak(),
                    },
                    Handle::Histogram(h) => SnapshotValue::Histogram(Box::new(h.snapshot())),
                },
            })
            .collect();
        entries.sort_by(|a, b| a.base.cmp(&b.base).then_with(|| a.labels.cmp(&b.labels)));
        TelemetrySnapshot { entries }
    }

    /// Full text exposition: the sorted snapshot plus the slow-query
    /// ring as trailing comment lines.
    pub fn render_text(&self) -> String {
        let mut out = self.snapshot().render();
        self.slow.render(&mut out);
        out
    }
}

/// One metric's value in a [`TelemetrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading with its high-water mark.
    Gauge {
        /// Instantaneous value.
        value: u64,
        /// High-water mark since startup.
        peak: u64,
    },
    /// Histogram copy (boxed: 64 buckets dwarf the scalar variants).
    Histogram(Box<HistogramSnapshot>),
}

/// One named metric in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotEntry {
    /// Metric base name.
    pub base: String,
    /// Label string (may be empty).
    pub labels: String,
    /// The reading.
    pub value: SnapshotValue,
}

fn write_line(out: &mut String, base: &str, labels: &str, suffix: &str, extra: &str, v: u64) {
    out.push_str(base);
    out.push_str(suffix);
    match (labels.is_empty(), extra.is_empty()) {
        (true, true) => {}
        (true, false) => {
            out.push('{');
            out.push_str(extra);
            out.push('}');
        }
        (false, true) => {
            out.push('{');
            out.push_str(labels);
            out.push('}');
        }
        (false, false) => {
            out.push('{');
            out.push_str(labels);
            out.push(',');
            out.push_str(extra);
            out.push('}');
        }
    }
    out.push(' ');
    out.push_str(&v.to_string());
    out.push('\n');
}

impl TelemetrySnapshot {
    /// Renders the stable text exposition (see module docs).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            match &e.value {
                SnapshotValue::Counter(v) => write_line(&mut out, &e.base, &e.labels, "", "", *v),
                SnapshotValue::Gauge { value, peak } => {
                    write_line(&mut out, &e.base, &e.labels, "", "", *value);
                    write_line(&mut out, &e.base, &e.labels, "_peak", "", *peak);
                }
                SnapshotValue::Histogram(h) => {
                    write_line(&mut out, &e.base, &e.labels, "_count", "", h.count());
                    write_line(&mut out, &e.base, &e.labels, "_sum", "", h.sum);
                    write_line(&mut out, &e.base, &e.labels, "_max", "", h.max);
                    for (q, name) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                        let extra = format!("quantile=\"{name}\"");
                        write_line(&mut out, &e.base, &e.labels, "", &extra, h.quantile(q));
                    }
                }
            }
        }
        out
    }

    /// One-line human summary for bench bins: `k=v` pairs; histograms
    /// collapse to `base=count/p50/p99us`. Zero-valued counters and
    /// gauges are elided to keep the line scannable.
    pub fn compact_line(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        for e in &self.entries {
            let name = if e.labels.is_empty() {
                e.base.clone()
            } else {
                format!("{}{{{}}}", e.base, e.labels)
            };
            match &e.value {
                SnapshotValue::Counter(0) => {}
                SnapshotValue::Counter(v) => parts.push(format!("{name}={v}")),
                SnapshotValue::Gauge { value: 0, peak: 0 } => {}
                SnapshotValue::Gauge { value, peak } => {
                    parts.push(format!("{name}={value}(peak {peak})"))
                }
                SnapshotValue::Histogram(h) if h.count() == 0 => {}
                SnapshotValue::Histogram(h) => parts.push(format!(
                    "{name}={}/{}/{}us",
                    h.count(),
                    h.quantile(0.5),
                    h.quantile(0.99)
                )),
            }
        }
        parts.join(" ")
    }

    /// Looks up a counter/gauge reading by exact `base{labels}` name.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|e| {
            let full = if e.labels.is_empty() {
                e.base.clone()
            } else {
                format!("{}{{{}}}", e.base, e.labels)
            };
            if full != name {
                return None;
            }
            match &e.value {
                SnapshotValue::Counter(v) => Some(*v),
                SnapshotValue::Gauge { value, .. } => Some(*value),
                SnapshotValue::Histogram(h) => Some(h.count()),
            }
        })
    }
}

/// Sorted point-in-time copy of a registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySnapshot {
    /// All metrics, sorted by `(base, labels)`.
    pub entries: Vec<SnapshotEntry>,
}

/// Parses one metric value out of a text exposition — the scrape-side
/// mirror of [`TelemetrySnapshot::render`]. `name` must be the full
/// series name including labels and any suffix, e.g.
/// `wire_served_total{kind="query-request"}` or
/// `wire_serve_latency_us{kind="query-request",quantile="0.99"}`.
pub fn find_metric(text: &str, name: &str) -> Option<u64> {
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        if let Some((n, v)) = line.rsplit_once(' ') {
            if n == name {
                return v.trim().parse().ok();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn get_or_create_returns_same_handle() {
        let r = TelemetryRegistry::new();
        let a = r.counter("x_total");
        let b = r.counter("x_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert!(Arc::ptr_eq(&a, &b));
        // Distinct labels are distinct series.
        let c = r.counter_labeled("x_total", "kind=\"a\"");
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn adopted_counter_is_the_same_atomic() {
        let r = TelemetryRegistry::new();
        let owned = Arc::new(Counter::new());
        r.adopt_counter("sub_pushed_total", "", owned.clone());
        owned.add(7);
        assert_eq!(r.snapshot().counter_value("sub_pushed_total"), Some(7));
        // Re-adoption is a no-op: first registration wins.
        r.adopt_counter("sub_pushed_total", "", Arc::new(Counter::new()));
        assert_eq!(r.snapshot().counter_value("sub_pushed_total"), Some(7));
    }

    #[test]
    fn gauge_saturates_and_tracks_peak() {
        let g = Gauge::new();
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 3);
        g.sub(100);
        assert_eq!(g.get(), 0, "saturating, not underflowing");
        assert_eq!(g.peak(), 5);
        g.set(4);
        assert_eq!(g.peak(), 5);
        g.set(9);
        assert_eq!(g.peak(), 9);
    }

    #[test]
    fn render_is_sorted_and_parseable() {
        let r = TelemetryRegistry::new();
        r.counter_labeled("wire_served_total", "kind=\"query-request\"")
            .add(41);
        r.counter("dir_queries_total").add(5);
        r.gauge("writer_queue_depth").set(3);
        let h = r.histogram_labeled("wire_serve_latency_us", "kind=\"query-request\"");
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        let text = r.render_text();
        // Sorted: dir_… before wire_…
        let first = text.lines().next().unwrap();
        assert!(first.starts_with("dir_queries_total"), "got {first}");
        assert_eq!(find_metric(&text, "dir_queries_total"), Some(5));
        assert_eq!(
            find_metric(&text, "wire_served_total{kind=\"query-request\"}"),
            Some(41)
        );
        assert_eq!(
            find_metric(&text, "wire_serve_latency_us_count{kind=\"query-request\"}"),
            Some(5)
        );
        assert_eq!(
            find_metric(&text, "wire_serve_latency_us_max{kind=\"query-request\"}"),
            Some(1000)
        );
        let p99 = find_metric(
            &text,
            "wire_serve_latency_us{kind=\"query-request\",quantile=\"0.99\"}",
        )
        .unwrap();
        assert!(p99 > 0 && p99 <= 1000);
        assert_eq!(find_metric(&text, "writer_queue_depth"), Some(3));
        assert_eq!(find_metric(&text, "no_such_metric"), None);
        // Same input renders byte-identically (stable exposition).
        assert_eq!(text, r.render_text());
    }

    #[test]
    fn compact_line_elides_zeros() {
        let r = TelemetryRegistry::new();
        r.counter("a_total");
        r.counter("b_total").add(2);
        let line = r.snapshot().compact_line();
        assert_eq!(line, "b_total=2");
    }

    #[test]
    fn snapshot_tolerates_concurrent_mutation() {
        // The "read two atomics non-atomically" regression test: hammer
        // paired counters (pushed ≥ dropped invariant at rest) while
        // snapshotting. A snapshot reads the two counters at different
        // instants, so the inversion between them is UNBOUNDED mid-flight
        // — consumers deriving differences must clamp (saturating_sub),
        // which is exactly what the stats() accessors do. Here we require
        // the clamped derivation to stay sane, every histogram snapshot
        // to be internally consistent, and exact conservation at rest.
        let r = Arc::new(TelemetryRegistry::new());
        let pushed = r.counter("pushed_total");
        let dropped = r.counter("dropped_total");
        let hist = r.histogram("lat_us");
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let (p, d, h) = (pushed.clone(), dropped.clone(), hist.clone());
                thread::spawn(move || {
                    for i in 0..5_000u64 {
                        p.inc(); // push always precedes a possible drop
                        if i % 3 == 0 {
                            d.inc();
                        }
                        h.record(t * 100 + i % 97);
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            let s = r.snapshot();
            let p = s.counter_value("pushed_total").unwrap();
            let d = s.counter_value("dropped_total").unwrap();
            // The clamped difference never underflows and never exceeds
            // what was pushed — the contract stats() relies on.
            let in_flight = p.saturating_sub(d);
            assert!(in_flight <= p, "clamp holds: {p} pushed, {d} dropped");
            assert!(p <= 20_000 && d <= 20_000, "no phantom increments");
            if let SnapshotValue::Histogram(h) =
                &s.entries.iter().find(|e| e.base == "lat_us").unwrap().value
            {
                let (p50, p99) = (h.quantile(0.5), h.quantile(0.99));
                assert!(p50 <= p99 && p99 <= h.max.max(p99));
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        let s = r.snapshot();
        assert_eq!(s.counter_value("pushed_total"), Some(20_000));
        assert_eq!(
            s.counter_value("lat_us"),
            Some(20_000),
            "histogram conserves count"
        );
    }

    #[test]
    fn timing_gate_disables_timers() {
        let r = TelemetryRegistry::new();
        let h = r.histogram("t_us");
        assert!(r.timing_enabled());
        {
            let _g = r.maybe_time(&h);
        }
        assert_eq!(h.count(), 1);
        r.set_timing(false);
        {
            let _g = r.maybe_time(&h);
        }
        assert_eq!(h.count(), 1, "no record while timing is off");
    }
}
