//! Lock-free log₂-bucketed histograms for hot-path latency recording.
//!
//! A [`Histogram`] is a fixed array of 64 atomic buckets: value `v` lands
//! in bucket `bit_length(v)` (bucket 0 holds exactly the zeros, bucket
//! `b ≥ 1` holds `[2^(b-1), 2^b)`, the last bucket is open-ended), so
//! recording is two relaxed `fetch_add`s and a `fetch_max` — no locks, no
//! allocation, safe to call from any number of threads at once. Snapshots
//! are mergeable (bucket-wise addition, proven associative in tests) and
//! yield p50/p90/p99/max by linear interpolation inside the crossing
//! bucket.
//!
//! Concurrency contract: a snapshot taken while writers are recording is
//! a *consistent-enough* view — each bucket is read atomically, and the
//! snapshot's total is derived from the bucket reads themselves (never
//! from a separately-read count that could disagree), so quantiles are
//! always computed over an internally consistent distribution. The `sum`
//! and `max` fields may trail the buckets by in-flight records; quantiles
//! clamp to `max` only when `max` is ahead, so `p50 ≤ p90 ≤ p99 ≤ max`
//! holds on every snapshot that recorded at least one value.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ buckets. Bucket 0 = zeros; bucket `b` covers
/// `[2^(b-1), 2^b)` for `1 ≤ b < 63`; bucket 63 is open-ended.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// The bucket a value lands in.
#[inline]
fn bucket_of(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive lower bound of a bucket.
#[inline]
fn bucket_lo(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

/// Inclusive upper bound of a bucket.
#[inline]
fn bucket_hi(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// A lock-free latency histogram (see module docs). Units are the
/// caller's business — the serving plane records microseconds.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value. Lock-free; any thread.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Values recorded so far (derived from the buckets).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Consistent-enough point-in-time copy (see module docs).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A plain-value copy of a [`Histogram`], mergeable and queryable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of recorded values (may trail the buckets under concurrency).
    pub sum: u64,
    /// Largest recorded value (may trail the buckets under concurrency).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total recorded values — always the bucket sum, never a separately
    /// tracked counter, so it cannot disagree with the distribution the
    /// quantiles are computed over.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Folds `other` into `self`. Bucket-wise addition: associative and
    /// commutative, so shard-merging order never changes the result. The
    /// sum wraps on overflow — the same mod-2⁶⁴ arithmetic as the atomic
    /// `fetch_add` in [`Histogram::record`], so a merged sum always equals
    /// the sum a single histogram would have accumulated.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`) by linear interpolation inside
    /// the crossing bucket, clamped to the recorded `max`. Returns 0 on
    /// an empty histogram. Monotone in `q` by construction.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the answering sample.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cum + n >= rank {
                let lo = bucket_lo(b);
                // Interpolation span: the bucket's real upper bound, but
                // never past the recorded max (the open-ended last bucket
                // would otherwise explode the estimate).
                let hi = bucket_hi(b).min(self.max.max(lo));
                let into = rank - cum; // 1..=n
                let est = lo + ((hi - lo) as f64 * into as f64 / n as f64) as u64;
                return est.min(self.max.max(lo));
            }
            cum += n;
        }
        self.max
    }

    /// Mean of recorded values (0 on empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        for b in 1..HISTOGRAM_BUCKETS - 1 {
            // Every bucket's bounds map back to the bucket itself.
            assert_eq!(bucket_of(bucket_lo(b)), b, "lower bound of {b}");
            assert_eq!(bucket_of(bucket_hi(b)), b, "upper bound of {b}");
            // And the bounds tile without gaps or overlap.
            assert_eq!(bucket_hi(b).wrapping_add(1), bucket_lo(b + 1));
        }
    }

    #[test]
    fn count_and_sum_track_records() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 5, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 6);
        assert_eq!(s.sum, 1_001_007);
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.buckets[0], 1, "one zero");
        assert_eq!(s.buckets[1], 2, "two ones");
    }

    #[test]
    fn quantiles_on_known_uniform_distribution() {
        let h = Histogram::new();
        // 1..=1000: true p50 = 500, p90 = 900, p99 = 990, max = 1000.
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // Log buckets quantize; the estimate must land in the right
        // power-of-two neighbourhood and stay monotone.
        let (p50, p90, p99) = (s.quantile(0.5), s.quantile(0.9), s.quantile(0.99));
        assert!((256..=1000).contains(&p50), "p50 = {p50}");
        assert!((512..=1000).contains(&p90), "p90 = {p90}");
        assert!((512..=1000).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p90 && p90 <= p99 && p99 <= s.max);
        assert_eq!(s.quantile(1.0), 1000);
        assert_eq!(s.quantile(0.0), 1);
    }

    #[test]
    fn quantiles_on_point_mass() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(42);
        }
        let s = h.snapshot();
        // Log buckets can't pinpoint a value inside a bucket, but every
        // estimate must stay inside [bucket_lo, max] and be monotone.
        let mut prev = 0;
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let v = s.quantile(q);
            assert!((32..=42).contains(&v), "q = {q}, got {v}");
            assert!(v >= prev, "monotone at q = {q}");
            prev = v;
        }
        assert_eq!(s.quantile(1.0), 42, "top quantile hits the exact max");
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let parts: Vec<HistogramSnapshot> = (0..3)
            .map(|i| {
                let h = Histogram::new();
                for v in 0..50u64 {
                    h.record(v * (i + 1) * 37 % 10_000);
                }
                h.snapshot()
            })
            .collect();
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = parts[0];
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        let mut bc = parts[1];
        bc.merge(&parts[2]);
        let mut right = parts[0];
        right.merge(&bc);
        assert_eq!(left, right);
        // a ⊕ b == b ⊕ a
        let mut ab = parts[0];
        ab.merge(&parts[1]);
        let mut ba = parts[1];
        ba.merge(&parts[0]);
        assert_eq!(ab, ba);
        // Totals conserve.
        assert_eq!(left.count(), parts.iter().map(|p| p.count()).sum::<u64>());
    }

    #[test]
    fn merged_equals_recording_into_one() {
        let (a, b, one) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in 0..200u64 {
            let h = if v % 2 == 0 { &a } else { &b };
            h.record(v * 13 % 777);
            one.record(v * 13 % 777);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, one.snapshot());
    }
}
