//! Rate-limited slow-query trace log.
//!
//! The serving plane calls [`SlowQueryLog::offer`] with each query's
//! latency; anything at or above the configured threshold is recorded
//! into a bounded ring (newest wins) with per-query context — landmark,
//! path depth, fan-out — so a slow p99 in the histogram can be traced to
//! *which kind* of query was slow. A token-bucket rate limit caps how
//! many records land per second so a latency storm cannot turn the log
//! itself into overhead; suppressed records are still counted.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Threshold value meaning "never record".
pub const SLOW_QUERY_DISABLED: u64 = u64::MAX;

/// How many trace records the ring retains.
pub const SLOW_QUERY_RING: usize = 64;

/// Default records-per-second cap.
pub const SLOW_QUERY_RATE: u64 = 32;

/// One traced slow query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQueryRecord {
    /// End-to-end serve latency in microseconds.
    pub latency_us: u64,
    /// Landmark the query was routed through, if any.
    pub landmark: Option<u64>,
    /// Depth of the queried path (coordinate length).
    pub path_depth: usize,
    /// Cross-landmark fan-out: extra landmark trees consulted.
    pub fanout: usize,
    /// Answers returned to the client.
    pub answered: usize,
}

struct Ring {
    records: VecDeque<SlowQueryRecord>,
    window_start: Option<Instant>,
    in_window: u64,
}

/// See module docs. Cheap when disabled: `offer` is one relaxed load.
pub struct SlowQueryLog {
    threshold_us: AtomicU64,
    max_per_sec: AtomicU64,
    recorded: AtomicU64,
    suppressed: AtomicU64,
    ring: Mutex<Ring>,
}

impl Default for SlowQueryLog {
    fn default() -> Self {
        Self {
            threshold_us: AtomicU64::new(SLOW_QUERY_DISABLED),
            max_per_sec: AtomicU64::new(SLOW_QUERY_RATE),
            recorded: AtomicU64::new(0),
            suppressed: AtomicU64::new(0),
            ring: Mutex::new(Ring {
                records: VecDeque::with_capacity(SLOW_QUERY_RING),
                window_start: None,
                in_window: 0,
            }),
        }
    }
}

impl SlowQueryLog {
    /// Sets the slow threshold in microseconds; [`SLOW_QUERY_DISABLED`]
    /// turns tracing off. Takes effect on the next `offer`.
    pub fn set_threshold_us(&self, us: u64) {
        self.threshold_us.store(us, Ordering::Relaxed);
    }

    /// Current threshold ([`SLOW_QUERY_DISABLED`] when off).
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us.load(Ordering::Relaxed)
    }

    /// Caps records landed per second (0 suppresses everything).
    pub fn set_max_per_sec(&self, n: u64) {
        self.max_per_sec.store(n, Ordering::Relaxed);
    }

    /// Offers one query observation. `make` builds the record only when
    /// the latency crosses the threshold, so the fast path never touches
    /// the lock or the context. Returns true when the record landed.
    pub fn offer(&self, latency_us: u64, make: impl FnOnce() -> SlowQueryRecord) -> bool {
        if latency_us < self.threshold_us.load(Ordering::Relaxed) {
            return false;
        }
        let cap = self.max_per_sec.load(Ordering::Relaxed);
        let mut ring = self.ring.lock().unwrap();
        let now = Instant::now();
        match ring.window_start {
            Some(start) if now.duration_since(start).as_secs() < 1 => {}
            _ => {
                ring.window_start = Some(now);
                ring.in_window = 0;
            }
        }
        if ring.in_window >= cap {
            drop(ring);
            self.suppressed.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        ring.in_window += 1;
        if ring.records.len() == SLOW_QUERY_RING {
            ring.records.pop_front();
        }
        ring.records.push_back(make());
        drop(ring);
        self.recorded.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Records landed since startup.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Records dropped by the rate limiter since startup.
    pub fn suppressed(&self) -> u64 {
        self.suppressed.load(Ordering::Relaxed)
    }

    /// Copies out the retained ring, oldest first.
    pub fn recent(&self) -> Vec<SlowQueryRecord> {
        self.ring.lock().unwrap().records.iter().cloned().collect()
    }

    /// Renders the ring as `#`-prefixed comment lines for the text
    /// exposition (comments keep metric parsers happy).
    pub fn render(&self, out: &mut String) {
        for r in self.recent() {
            out.push_str(&format!(
                "# slow_query latency_us={} landmark={} depth={} fanout={} answered={}\n",
                r.latency_us,
                r.landmark
                    .map_or_else(|| "-".to_string(), |l| l.to_string()),
                r.path_depth,
                r.fanout,
                r.answered,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(latency_us: u64) -> SlowQueryRecord {
        SlowQueryRecord {
            latency_us,
            landmark: Some(3),
            path_depth: 4,
            fanout: 2,
            answered: 8,
        }
    }

    #[test]
    fn disabled_by_default_and_fast_path_skips() {
        let log = SlowQueryLog::default();
        assert!(!log.offer(u64::MAX - 1, || rec(1)));
        assert_eq!(log.recorded(), 0);
        assert!(log.recent().is_empty());
    }

    #[test]
    fn threshold_gates_recording() {
        let log = SlowQueryLog::default();
        log.set_threshold_us(100);
        assert!(!log.offer(99, || rec(99)));
        assert!(log.offer(100, || rec(100)));
        assert!(log.offer(5000, || rec(5000)));
        assert_eq!(log.recorded(), 2);
        let recent = log.recent();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].latency_us, 100);
        assert_eq!(recent[1].latency_us, 5000);
    }

    #[test]
    fn rate_limit_suppresses_but_counts() {
        let log = SlowQueryLog::default();
        log.set_threshold_us(1);
        log.set_max_per_sec(3);
        let landed = (0..10).filter(|i| log.offer(10 + i, || rec(10))).count();
        assert_eq!(landed, 3);
        assert_eq!(log.recorded(), 3);
        assert_eq!(log.suppressed(), 7);
    }

    #[test]
    fn ring_keeps_newest() {
        let log = SlowQueryLog::default();
        log.set_threshold_us(1);
        log.set_max_per_sec(u64::MAX);
        for i in 0..(SLOW_QUERY_RING as u64 + 10) {
            log.offer(1000 + i, || rec(1000 + i));
        }
        let recent = log.recent();
        assert_eq!(recent.len(), SLOW_QUERY_RING);
        assert_eq!(
            recent.last().unwrap().latency_us,
            1000 + SLOW_QUERY_RING as u64 + 9
        );
    }

    #[test]
    fn render_emits_comment_lines() {
        let log = SlowQueryLog::default();
        log.set_threshold_us(1);
        log.offer(123, || rec(123));
        let mut out = String::new();
        log.render(&mut out);
        assert!(out.starts_with("# slow_query latency_us=123 landmark=3"));
    }
}
