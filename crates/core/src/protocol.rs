//! The join-protocol messages.
//!
//! The protocol is deliberately small — it is a short paper's protocol:
//!
//! 1. newcomer → landmark: [`Message::ProbePing`] (RTT estimation to pick
//!    the closest landmark); landmark → newcomer: [`Message::ProbePong`];
//! 2. newcomer runs its traceroute (outside the message plane — it talks to
//!    routers, not peers), then newcomer → server: [`Message::JoinRequest`]
//!    carrying the discovered [`PeerPath`];
//! 3. server → newcomer: [`Message::JoinReply`] with the closest peers.
//!
//! Churn and mobility add [`Message::Leave`] and
//! [`Message::HandoverRequest`] (answered by another [`Message::JoinReply`]).

use crate::ids::PeerId;
use crate::path::PeerPath;
use nearpeer_topology::RouterId;
use serde::{Deserialize, Serialize};

/// One inferred neighbor as carried on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireNeighbor {
    /// The neighbor's peer id.
    pub peer: PeerId,
    /// The server's `dtree` estimate in hops.
    pub dtree: u32,
}

/// Every message of the discovery protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Message {
    /// RTT probe towards a landmark (round 1 preliminary).
    ProbePing {
        /// Echo token correlating ping and pong.
        nonce: u64,
    },
    /// The landmark's answer.
    ProbePong {
        /// The echoed token.
        nonce: u64,
    },
    /// Round 1 → 2 transition: the newcomer ships its router path.
    JoinRequest {
        /// The joining peer.
        peer: PeerId,
        /// The traceroute-discovered path to its closest landmark.
        path: PeerPath,
    },
    /// Round 2 answer: the server's "short list of peers that are the
    /// closest".
    JoinReply {
        /// The peer being answered.
        peer: PeerId,
        /// Closest peers, nearest first.
        neighbors: Vec<WireNeighbor>,
        /// A regional super-peer the newcomer may query next time (W2).
        delegate: Option<PeerId>,
    },
    /// Join refusal (unknown landmark, malformed path, duplicate id).
    JoinError {
        /// The peer being refused.
        peer: PeerId,
        /// Human-readable reason.
        reason: String,
    },
    /// Graceful departure.
    Leave {
        /// The departing peer.
        peer: PeerId,
    },
    /// Mobility: the peer re-attached and re-traced (W3).
    HandoverRequest {
        /// The moving peer.
        peer: PeerId,
        /// Its fresh path from the new attachment point.
        path: PeerPath,
    },
    /// Soft-state refresh: "still alive" (faulty-peer management, W3).
    Heartbeat {
        /// The live peer.
        peer: PeerId,
    },
    /// Closest-peer query for an arbitrary path — the serving plane's hot
    /// read. Carried both client→server (a registered peer refreshing its
    /// neighbor list with its own stored path and `exclude = itself`) and
    /// server→server (the federation front door fanning the same query out
    /// to its region actors as RPC frames).
    QueryRequest {
        /// Correlates the reply when requests are pipelined or fanned out.
        nonce: u64,
        /// The query path (a stored peer path or an arbitrary probe path).
        path: PeerPath,
        /// Neighbors wanted.
        k: u16,
        /// A peer to leave out of the answer (usually the asker).
        exclude: Option<PeerId>,
    },
    /// The answer to a [`Message::QueryRequest`].
    QueryReply {
        /// The echoed request nonce.
        nonce: u64,
        /// Closest peers, nearest first.
        neighbors: Vec<WireNeighbor>,
    },
    /// Bridge-fill RPC (server→server): the first `limit` peers of the
    /// ordered peers-through-router cursor at `router`, nearest first.
    /// The federation front door merges these prefixes exactly like the
    /// in-process k-way fill merges live cursors.
    FillRequest {
        /// Correlates the reply.
        nonce: u64,
        /// The landmark router whose cursor is requested.
        router: RouterId,
        /// Cursor prefix length wanted.
        limit: u16,
    },
    /// The answer to a [`Message::FillRequest`]: `(peer, depth)` pairs in
    /// cursor order ([`WireNeighbor::dtree`] carries the depth below the
    /// requested router, not a full tree distance).
    FillReply {
        /// The echoed request nonce.
        nonce: u64,
        /// Cursor prefix, nearest first.
        items: Vec<WireNeighbor>,
    },
    /// Administrative: ask the server to drain and exit (answered with a
    /// [`Message::ProbePong`] echoing the nonce before the socket closes).
    /// Servers may refuse it from untrusted peers by dropping it.
    Shutdown {
        /// Echo token for the acknowledging pong.
        nonce: u64,
    },
    /// Standing subscription: "push me deltas of my `k` nearest" for a
    /// registered peer (answered with a [`Message::SubAck`] carrying the
    /// initial snapshot, then server-initiated [`Message::DeltaPush`]es on
    /// the same connection as churn touches the answer).
    Subscribe {
        /// Correlates the acknowledging [`Message::SubAck`].
        nonce: u64,
        /// The subscribing peer (must be registered on this server).
        peer: PeerId,
        /// Neighbors watched.
        k: u16,
        /// Minimum milliseconds between pushes; deltas inside the window
        /// coalesce server-side.
        min_interval_ms: u32,
    },
    /// Cancels a standing subscription (answered with an empty
    /// [`Message::SubAck`]).
    Unsubscribe {
        /// Correlates the acknowledging [`Message::SubAck`].
        nonce: u64,
        /// The unsubscribing peer.
        peer: PeerId,
    },
    /// Server-initiated incremental update to a subscription's answer:
    /// drop `removed`, then upsert `added` (an entry for a peer already in
    /// the view replaces its stale `dtree`).
    DeltaPush {
        /// The subscriber this delta belongs to.
        peer: PeerId,
        /// Server epoch of the last churn event merged into this delta.
        epoch: u64,
        /// Delivery class ([`crate::subscription::DeltaClass`] code):
        /// 0 join, 1 expiry, 2 handover.
        class: u8,
        /// Peers entering the answer (or with a changed `dtree`).
        added: Vec<WireNeighbor>,
        /// Peers leaving the answer.
        removed: Vec<PeerId>,
    },
    /// Acknowledges a [`Message::Subscribe`] (with the initial answer
    /// snapshot) or an [`Message::Unsubscribe`] (empty).
    SubAck {
        /// The echoed request nonce.
        nonce: u64,
        /// The subscriber.
        peer: PeerId,
        /// Initial answer snapshot, nearest first (empty on unsubscribe).
        neighbors: Vec<WireNeighbor>,
    },
    /// Administrative: pull the server's live telemetry (answered with a
    /// [`Message::StatsReply`]). Read-only and side-effect-free, so safe
    /// to serve to any connected peer.
    StatsRequest {
        /// Correlates the reply.
        nonce: u64,
    },
    /// The answer to a [`Message::StatsRequest`]: the full registry in
    /// the stable text exposition (one `name{labels} value` per line,
    /// histograms as `_count`/`_sum`/`_max`/quantile series, slow-query
    /// ring as trailing `# slow_query …` comments).
    StatsReply {
        /// The echoed request nonce.
        nonce: u64,
        /// Rendered telemetry snapshot.
        text: String,
    },
}

impl Message {
    /// Discriminant used by the wire codec.
    pub fn kind(&self) -> u8 {
        match self {
            Message::ProbePing { .. } => 1,
            Message::ProbePong { .. } => 2,
            Message::JoinRequest { .. } => 3,
            Message::JoinReply { .. } => 4,
            Message::JoinError { .. } => 5,
            Message::Leave { .. } => 6,
            Message::HandoverRequest { .. } => 7,
            Message::Heartbeat { .. } => 8,
            Message::QueryRequest { .. } => 9,
            Message::QueryReply { .. } => 10,
            Message::FillRequest { .. } => 11,
            Message::FillReply { .. } => 12,
            Message::Shutdown { .. } => 13,
            Message::Subscribe { .. } => 14,
            Message::Unsubscribe { .. } => 15,
            Message::DeltaPush { .. } => 16,
            Message::SubAck { .. } => 17,
            Message::StatsRequest { .. } => 18,
            Message::StatsReply { .. } => 19,
        }
    }

    /// Short name for logs.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Message::ProbePing { .. } => "probe-ping",
            Message::ProbePong { .. } => "probe-pong",
            Message::JoinRequest { .. } => "join-request",
            Message::JoinReply { .. } => "join-reply",
            Message::JoinError { .. } => "join-error",
            Message::Leave { .. } => "leave",
            Message::HandoverRequest { .. } => "handover-request",
            Message::Heartbeat { .. } => "heartbeat",
            Message::QueryRequest { .. } => "query-request",
            Message::QueryReply { .. } => "query-reply",
            Message::FillRequest { .. } => "fill-request",
            Message::FillReply { .. } => "fill-reply",
            Message::Shutdown { .. } => "shutdown",
            Message::Subscribe { .. } => "subscribe",
            Message::Unsubscribe { .. } => "unsubscribe",
            Message::DeltaPush { .. } => "delta-push",
            Message::SubAck { .. } => "sub-ack",
            Message::StatsRequest { .. } => "stats-request",
            Message::StatsReply { .. } => "stats-reply",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct() {
        let path = PeerPath::new(vec![RouterId(1), RouterId(0)]).unwrap();
        let msgs = vec![
            Message::ProbePing { nonce: 1 },
            Message::ProbePong { nonce: 1 },
            Message::JoinRequest {
                peer: PeerId(1),
                path: path.clone(),
            },
            Message::JoinReply {
                peer: PeerId(1),
                neighbors: vec![],
                delegate: None,
            },
            Message::JoinError {
                peer: PeerId(1),
                reason: "r".into(),
            },
            Message::Leave { peer: PeerId(1) },
            Message::HandoverRequest {
                peer: PeerId(1),
                path: path.clone(),
            },
            Message::Heartbeat { peer: PeerId(1) },
            Message::QueryRequest {
                nonce: 1,
                path,
                k: 5,
                exclude: Some(PeerId(1)),
            },
            Message::QueryReply {
                nonce: 1,
                neighbors: vec![],
            },
            Message::FillRequest {
                nonce: 2,
                router: RouterId(1),
                limit: 8,
            },
            Message::FillReply {
                nonce: 2,
                items: vec![],
            },
            Message::Shutdown { nonce: 3 },
            Message::Subscribe {
                nonce: 4,
                peer: PeerId(1),
                k: 8,
                min_interval_ms: 250,
            },
            Message::Unsubscribe {
                nonce: 5,
                peer: PeerId(1),
            },
            Message::DeltaPush {
                peer: PeerId(1),
                epoch: 9,
                class: 2,
                added: vec![],
                removed: vec![PeerId(2)],
            },
            Message::SubAck {
                nonce: 4,
                peer: PeerId(1),
                neighbors: vec![],
            },
            Message::StatsRequest { nonce: 6 },
            Message::StatsReply {
                nonce: 6,
                text: "queries_total 1\n".into(),
            },
        ];
        let mut kinds: Vec<u8> = msgs.iter().map(Message::kind).collect();
        kinds.sort();
        kinds.dedup();
        assert_eq!(kinds.len(), msgs.len());
        for m in &msgs {
            assert!(!m.kind_name().is_empty());
        }
    }
}
