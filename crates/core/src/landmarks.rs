//! Landmark placement policies (future-work study W1).
//!
//! The paper attaches its "few landmarks" to routers with "medium-size
//! degree" and lists the number and placement of landmarks as an open
//! question. This module implements the candidate policies the W1
//! experiment sweeps.

use nearpeer_routing::bfs_distances;
use nearpeer_topology::{analysis, RouterId, Topology};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// How to choose landmark routers on a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PlacementPolicy {
    /// Uniformly random among non-access routers.
    Random,
    /// The paper's choice: routers in the middle degree band
    /// (40th–80th percentile of non-access degrees).
    DegreeMedium,
    /// The highest-degree routers (hubs).
    DegreeHigh,
    /// The highest (pivot-sampled) betweenness-centrality routers.
    Betweenness,
    /// Greedy k-center spread: each landmark maximises its hop distance to
    /// the ones already placed.
    Spread,
}

impl PlacementPolicy {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            PlacementPolicy::Random => "random",
            PlacementPolicy::DegreeMedium => "degree-medium",
            PlacementPolicy::DegreeHigh => "degree-high",
            PlacementPolicy::Betweenness => "betweenness",
            PlacementPolicy::Spread => "spread",
        }
    }

    /// All policies, for sweeps.
    pub fn all() -> [PlacementPolicy; 5] {
        [
            PlacementPolicy::Random,
            PlacementPolicy::DegreeMedium,
            PlacementPolicy::DegreeHigh,
            PlacementPolicy::Betweenness,
            PlacementPolicy::Spread,
        ]
    }
}

/// Places `n` landmarks on the topology according to the policy
/// (deterministic per seed). Returns fewer than `n` if the topology has
/// fewer eligible routers. Landmark routers are distinct.
pub fn place_landmarks(
    topo: &Topology,
    n: usize,
    policy: PlacementPolicy,
    seed: u64,
) -> Vec<RouterId> {
    if n == 0 || topo.n_routers() == 0 {
        return Vec::new();
    }
    // Landmarks are infrastructure nodes: never degree-1 access routers
    // (those are where peers live).
    let eligible: Vec<RouterId> = topo.routers().filter(|&r| topo.degree(r) >= 2).collect();
    let eligible = if eligible.is_empty() {
        topo.routers().collect::<Vec<_>>()
    } else {
        eligible
    };
    let n = n.min(eligible.len());
    let mut rng = StdRng::seed_from_u64(seed);

    match policy {
        PlacementPolicy::Random => {
            let mut pool = eligible;
            pool.shuffle(&mut rng);
            pool.truncate(n);
            pool.sort();
            pool
        }
        PlacementPolicy::DegreeMedium => {
            let mut by_degree = eligible;
            by_degree.sort_by_key(|&r| (topo.degree(r), r));
            let lo = by_degree.len() * 40 / 100;
            let hi = (by_degree.len() * 80 / 100)
                .max(lo + 1)
                .min(by_degree.len());
            let mut band: Vec<RouterId> = by_degree[lo..hi].to_vec();
            band.shuffle(&mut rng);
            band.truncate(n);
            // Top up from the full list if the band was too narrow.
            if band.len() < n {
                for r in by_degree {
                    if band.len() == n {
                        break;
                    }
                    if !band.contains(&r) {
                        band.push(r);
                    }
                }
            }
            band.sort();
            band
        }
        PlacementPolicy::DegreeHigh => {
            let mut by_degree = eligible;
            by_degree.sort_by_key(|&r| (std::cmp::Reverse(topo.degree(r)), r));
            by_degree.truncate(n);
            by_degree.sort();
            by_degree
        }
        PlacementPolicy::Betweenness => {
            let pivots = (topo.n_routers() / 20).clamp(8, 64);
            let scores = analysis::betweenness_centrality_sampled(topo, pivots);
            let mut ranked = eligible;
            ranked.sort_by(|&a, &b| {
                scores[b.index()]
                    .partial_cmp(&scores[a.index()])
                    .expect("finite scores")
                    .then(a.cmp(&b))
            });
            ranked.truncate(n);
            ranked.sort();
            ranked
        }
        PlacementPolicy::Spread => {
            let mut chosen: Vec<RouterId> = Vec::with_capacity(n);
            let first = *eligible.choose(&mut rng).expect("eligible non-empty");
            chosen.push(first);
            let mut min_dist = bfs_distances(topo, first);
            while chosen.len() < n {
                // Farthest eligible router from the chosen set.
                let next = eligible
                    .iter()
                    .copied()
                    .filter(|r| !chosen.contains(r))
                    .max_by_key(|r| {
                        let d = min_dist[r.index()];
                        (if d == u32::MAX { 0 } else { d }, std::cmp::Reverse(r.0))
                    });
                let Some(next) = next else { break };
                chosen.push(next);
                let d2 = bfs_distances(topo, next);
                for (m, d) in min_dist.iter_mut().zip(d2) {
                    *m = (*m).min(d);
                }
            }
            chosen.sort();
            chosen
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nearpeer_topology::generators::{mapper, regular, MapperConfig};

    fn map() -> Topology {
        mapper(&MapperConfig::tiny(), 11).unwrap()
    }

    #[test]
    fn never_places_on_access_routers() {
        let t = map();
        for policy in PlacementPolicy::all() {
            let lms = place_landmarks(&t, 6, policy, 3);
            assert_eq!(lms.len(), 6, "{}", policy.name());
            for lm in &lms {
                assert!(
                    t.degree(*lm) >= 2,
                    "{}: landmark {lm} has degree {}",
                    policy.name(),
                    t.degree(*lm)
                );
            }
            // Distinct.
            let mut dedup = lms.clone();
            dedup.dedup();
            assert_eq!(dedup.len(), lms.len());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let t = map();
        for policy in PlacementPolicy::all() {
            let a = place_landmarks(&t, 4, policy, 7);
            let b = place_landmarks(&t, 4, policy, 7);
            assert_eq!(a, b, "{}", policy.name());
        }
    }

    #[test]
    fn degree_high_picks_hubs() {
        let t = regular::star(10); // center has degree 10
        let lms = place_landmarks(&t, 1, PlacementPolicy::DegreeHigh, 1);
        assert_eq!(lms, vec![RouterId(0)]);
    }

    #[test]
    fn degree_medium_avoids_extremes_on_mapper() {
        let t = map();
        let lms = place_landmarks(&t, 4, PlacementPolicy::DegreeMedium, 5);
        let max_degree = t.max_degree();
        for lm in lms {
            let d = t.degree(lm);
            assert!(d < max_degree, "medium policy picked the top hub");
        }
    }

    #[test]
    fn spread_separates_landmarks() {
        let t = regular::line(30);
        // On a line, two spread landmarks must land far apart.
        let lms = place_landmarks(&t, 2, PlacementPolicy::Spread, 2);
        assert_eq!(lms.len(), 2);
        let dist = nearpeer_routing::hop_distance(&t, lms[0], lms[1]).unwrap();
        assert!(dist >= 14, "spread landmarks only {dist} hops apart");
    }

    #[test]
    fn handles_more_landmarks_than_routers() {
        let t = regular::ring(5);
        let lms = place_landmarks(&t, 50, PlacementPolicy::Random, 1);
        assert_eq!(lms.len(), 5);
        assert!(place_landmarks(&t, 0, PlacementPolicy::Random, 1).is_empty());
    }

    #[test]
    fn betweenness_prefers_bridge() {
        // Two rings joined by one bridge router.
        let mut b = nearpeer_topology::TopologyBuilder::with_routers(11);
        for i in 0..5u32 {
            b.link(RouterId(i), RouterId((i + 1) % 5), 1).unwrap();
        }
        for i in 6..11u32 {
            let next = if i == 10 { 6 } else { i + 1 };
            b.link(RouterId(i), RouterId(next), 1).unwrap();
        }
        b.link(RouterId(0), RouterId(5), 1).unwrap();
        b.link(RouterId(5), RouterId(6), 1).unwrap();
        let t = b.build();
        // Pivot sampling under-credits routers that are pivots themselves,
        // so accept any router of the bridge area (the bridge and its two
        // ring attachments) as the top pick.
        let lms = place_landmarks(&t, 1, PlacementPolicy::Betweenness, 1);
        let bridge_area = [RouterId(0), RouterId(5), RouterId(6)];
        assert!(
            bridge_area.contains(&lms[0]),
            "betweenness picked {} outside the bridge area",
            lms[0]
        );
    }
}
