//! Multi-region federation of management servers.
//!
//! The paper's single management server is the scaling bottleneck once
//! the directory serves planet-scale populations: every join, query and
//! heartbeat funnels through one process. The data already partitions
//! along landmarks (PR 2's shards exploit that within one server); this
//! module lifts the same split one level up — **one [`crate::ManagementServer`]
//! per region**, each owning a subset of the landmarks, stitched together
//! by a thin routing layer.
//!
//! The key observation (cf. Kademlia-style parallel routing state and
//! gossip overlays answering proximity queries from local summaries) is
//! that the **landmark distance matrix is already the required bridge**:
//! the cross-landmark fill ranks foreign candidates by
//! `depth(q) + hops(L_q, L_p) + depth(p)`, and those hop counts work just
//! as well when `L_p` lives in another region's server. A federation
//! therefore needs no global directory — only the landmark→region map and
//! the region×region reduction of `landmark_dist` (the *bridge matrix*).
//!
//! * [`Region`] wraps one management server plus its landmark partition;
//! * [`Federation`] is the routing front door: [`Federation::register`]
//!   routes a newcomer to its home region, [`Federation::closest_to_path`]
//!   answers locally and fans out to the bridge-closest foreign regions
//!   (bounded by [`FederationConfig::fanout`]), merging candidate sets by
//!   predicted hop distance;
//! * peer mobility is first class: [`Federation::handover`] moves a lease
//!   across regions and leaves a **forwarding tombstone** in the old
//!   region's lease arena, so federation-aware expiry
//!   ([`Federation::expire_stale`]) distinguishes "peer silent" from
//!   "peer moved" — tombstones ride the existing epoch-bucket sweeps.
//!
//! With `fanout = None` (consult every region) a federation answers
//! `neighbors_of`/`closest_to_path` **identically** to one big server
//! holding all landmarks, as long as peers' paths do not traverse another
//! *region's* landmark router mid-path —
//! `crates/core/tests/federation_equivalence.rs` pins this against the
//! single-server reference.

#[allow(clippy::module_inception)]
mod federation;
mod region;

pub(crate) use federation::RuntimeParts;
pub use federation::{
    FederatedBatchOutcome, FederatedJoin, Federation, FederationConfig, FederationStats,
    FederationSweep,
};
pub use region::{Region, RegionId};
