//! One region of a federated directory: a management server plus its
//! partition of the landmark set.

use crate::ids::LandmarkId;
use crate::server::ManagementServer;
use std::fmt;

/// Identifier of a federation region (dense index into
/// [`super::Federation`]'s region table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub u32);

impl RegionId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region{}", self.0)
    }
}

/// One region: a full [`ManagementServer`] over a subset of the global
/// landmarks. The server is oblivious to the federation — it validates,
/// stores and answers exactly as a standalone deployment would, against
/// its own landmark sub-matrix; everything cross-region (bridge ranking,
/// fan-out, handover bookkeeping) lives in [`super::Federation`].
#[derive(Debug)]
pub struct Region {
    id: RegionId,
    server: ManagementServer,
    /// Global landmark indices owned by this region, in **local id
    /// order**: the server's `LandmarkId(i)` is the federation's
    /// `LandmarkId(landmark_globals[i])`.
    landmark_globals: Vec<u32>,
}

impl Region {
    pub(super) fn new(id: RegionId, server: ManagementServer, landmark_globals: Vec<u32>) -> Self {
        debug_assert_eq!(server.landmarks().len(), landmark_globals.len());
        Self {
            id,
            server,
            landmark_globals,
        }
    }

    /// This region's id.
    pub fn id(&self) -> RegionId {
        self.id
    }

    /// The region's management server (reads).
    pub fn server(&self) -> &ManagementServer {
        &self.server
    }

    /// Mutable access to the region's server, for **region-parallel
    /// construction and replay** (the `shards_mut` idiom one level up):
    /// distinct regions share nothing, so builders may feed each region's
    /// batch directly. Callers take over the federation's cross-region
    /// invariant — a peer id registered in at most one region — for the
    /// peers they insert.
    pub fn server_mut(&mut self) -> &mut ManagementServer {
        &mut self.server
    }

    /// Consumes the region, yielding its server and landmark partition —
    /// the actorized runtime distributes these across worker threads.
    pub(crate) fn into_server(self) -> (ManagementServer, Vec<u32>) {
        (self.server, self.landmark_globals)
    }

    /// Swaps this region's server for another (crash/rejoin bookkeeping in
    /// [`super::Federation`]), returning the previous one. The caller
    /// guarantees the replacement serves the same landmark partition.
    pub(crate) fn replace_server(&mut self, server: ManagementServer) -> ManagementServer {
        debug_assert_eq!(server.landmarks().len(), self.landmark_globals.len());
        std::mem::replace(&mut self.server, server)
    }

    /// Global landmark indices owned by this region, in local-id order.
    pub fn landmark_globals(&self) -> &[u32] {
        &self.landmark_globals
    }

    /// Maps one of this region's local landmark ids to the federation's
    /// global id.
    pub fn to_global(&self, local: LandmarkId) -> LandmarkId {
        LandmarkId(self.landmark_globals[local.index()])
    }

    /// Registered peers in this region.
    pub fn peer_count(&self) -> usize {
        self.server.peer_count()
    }
}
