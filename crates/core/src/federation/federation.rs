//! The federation front door: cross-region routing over per-region
//! management servers.

use super::region::{Region, RegionId};
use crate::directory::persist::RecoveryReport;
use crate::error::CoreError;
use crate::ids::{LandmarkId, PeerId};
use crate::path::PeerPath;
use crate::router_index::Neighbor;
use crate::server::{ManagementServer, ServerConfig};
use nearpeer_routing::RouteOracle;
use nearpeer_topology::{RouterId, Topology};
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Federation tuning.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FederationConfig {
    /// Foreign regions consulted per query, ranked by bridge distance
    /// from the query's home region (`None` = all of them — required for
    /// answers identical to a single global server; small values trade
    /// recall for fan-out). `Some(0)` answers purely from the home
    /// region.
    pub fanout: Option<usize>,
    /// Per-region server configuration. Super-peers must be disabled —
    /// regional promotion under cross-region mobility is future work.
    pub server: ServerConfig,
}

/// What a newcomer (or a handed-over peer) receives from the federation.
/// The landmark id is **global** (an index into
/// [`Federation::landmarks`]), unlike the region-local ids the underlying
/// servers speak.
#[derive(Debug, Clone, PartialEq)]
pub struct FederatedJoin {
    /// The region the peer registered in.
    pub region: RegionId,
    /// The (global) landmark the peer registered under.
    pub landmark: LandmarkId,
    /// The closest peers across the consulted regions, nearest first.
    pub neighbors: Vec<Neighbor>,
}

/// Dispositions of a write-only federated batch
/// ([`Federation::register_batch`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FederatedBatchOutcome {
    /// Fresh peers registered.
    pub joined: usize,
    /// Same-region rejoins whose lease was renewed instead.
    pub renewed: usize,
    /// Items dropped: unknown landmark, or a peer currently registered in
    /// a *different* region (that move is a [`Federation::handover`]).
    pub rejected: usize,
}

/// Aggregate federation counters (the cross-region view; each region's
/// server keeps its own [`crate::ServerStats`] underneath).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FederationStats {
    /// Federated queries answered ([`Federation::closest_to_path`]).
    pub queries: u64,
    /// Foreign regions consulted across all queries (fan-out volume).
    pub remote_regions_consulted: u64,
    /// Neighbors served through cross-region bridge fills.
    pub cross_region_fills: u64,
    /// Handovers processed (intra- and cross-region).
    pub handovers: u64,
    /// The subset of handovers that crossed regions (these leave
    /// forwarding tombstones behind).
    pub cross_region_handovers: u64,
}

/// Everything one federated expiry sweep retired, split by disposition —
/// the distinction the forwarding tombstones exist for.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FederationSweep {
    /// Leases that lapsed silently: `(region, peer)` — these peers failed.
    pub expired: Vec<(RegionId, PeerId)>,
    /// Forwarding tombstones retired: `(old region, peer)` — these peers
    /// handed over to another region and their grace record aged out.
    pub moved_swept: Vec<(RegionId, PeerId)>,
}

impl FederationSweep {
    /// The expired peer ids across all regions, ascending.
    pub fn expired_ids(&self) -> Vec<PeerId> {
        let mut ids: Vec<PeerId> = self.expired.iter().map(|&(_, p)| p).collect();
        ids.sort_unstable();
        ids
    }
}

/// A [`Federation`] taken apart for the actorized runtime: the routing
/// metadata the front door keeps, plus the per-region servers that move
/// behind worker threads (crate-internal).
pub(crate) struct RuntimeParts {
    pub landmark_routers: Vec<RouterId>,
    pub landmark_dist: Vec<Vec<u32>>,
    pub landmark_region: Vec<RegionId>,
    pub router_landmark: HashMap<RouterId, u32>,
    pub bridge: Vec<Vec<u32>>,
    pub fanout: Option<usize>,
    pub fallback: bool,
    pub neighbor_count: usize,
    pub servers: Vec<ManagementServer>,
}

/// Read-path counters (interior-mutable, so federated queries stay
/// `&self` like the underlying servers').
#[derive(Debug, Default)]
struct QueryCounters {
    queries: AtomicU64,
    remote: AtomicU64,
    fills: AtomicU64,
}

/// A federation of per-region management servers behind one routing front
/// door.
///
/// The federation owns the **global** landmark list and distance matrix;
/// each [`Region`]'s server sees only its own landmark subset (and the
/// corresponding sub-matrix), so regional writes validate exactly as a
/// standalone deployment would. Queries answer from the home region and
/// fan out to the bridge-closest foreign regions; peers moving between
/// regions are handed over atomically, leaving a forwarding tombstone in
/// the old region's lease arena.
///
/// Concurrency contract: reads (`closest_to_path`, `neighbors_of`,
/// `locate`, `stats`) take `&self` — the per-region servers' read paths
/// are already concurrent, and the federation's own counters are atomic.
/// Writes take `&mut self` and touch at most two regions.
#[derive(Debug)]
pub struct Federation {
    regions: Vec<Region>,
    landmark_routers: Vec<RouterId>,
    landmark_dist: Vec<Vec<u32>>,
    /// Global landmark index → owning region.
    landmark_region: Vec<RegionId>,
    /// Landmark router → global landmark index.
    router_landmark: HashMap<RouterId, u32>,
    /// Region × region bridge matrix: the minimum landmark-to-landmark
    /// hop distance across the pair (`u32::MAX` = no measured bridge).
    bridge: Vec<Vec<u32>>,
    fanout: Option<usize>,
    fallback: bool,
    neighbor_count: usize,
    counters: QueryCounters,
    handovers: u64,
    cross_region_handovers: u64,
    epoch: u64,
    /// Regions currently crashed ([`Self::crash_region`]): their server
    /// slot holds an empty stand-in, writes to them are refused with
    /// [`CoreError::RegionUnavailable`], and queries route around them
    /// until [`Self::rejoin_region`] restores the recovered server.
    down: Vec<bool>,
}

impl Federation {
    /// Builds a federation over `n_regions` regions by partitioning the
    /// landmarks **round-robin** (global landmark `i` → region
    /// `i % n_regions`), deriving each region's distance sub-matrix and
    /// the cross-region bridge matrix from the global `landmark_dist`
    /// (row-major square, `u32::MAX` = unknown).
    pub fn new(
        landmark_routers: Vec<RouterId>,
        landmark_dist: Vec<Vec<u32>>,
        n_regions: usize,
        config: FederationConfig,
    ) -> Result<Self, CoreError> {
        let n = landmark_routers.len();
        if n_regions == 0 {
            return Err(CoreError::InvalidFederation("zero regions".into()));
        }
        if n_regions > n {
            return Err(CoreError::InvalidFederation(format!(
                "{n_regions} regions over {n} landmarks: every region needs at least one"
            )));
        }
        if landmark_dist.len() != n || landmark_dist.iter().any(|row| row.len() != n) {
            return Err(CoreError::InvalidFederation(format!(
                "landmark distance matrix must be {n}x{n}"
            )));
        }
        if config.server.super_peers.is_some() {
            return Err(CoreError::InvalidFederation(
                "super-peers are not supported per region yet".into(),
            ));
        }
        if config.fanout == Some(0) && n_regions > 1 {
            return Err(CoreError::InvalidFederation(format!(
                "fanout 0 over {n_regions} regions: cross-region peers would be \
                 permanently invisible (use fanout >= 1, or a single region)"
            )));
        }
        config.server.validate()?;
        let mut partitions: Vec<Vec<u32>> = vec![Vec::new(); n_regions];
        for i in 0..n {
            partitions[i % n_regions].push(i as u32);
        }
        let mut landmark_region = vec![RegionId(0); n];
        let mut regions = Vec::with_capacity(n_regions);
        for (r, globals) in partitions.into_iter().enumerate() {
            let id = RegionId(r as u32);
            for &g in &globals {
                landmark_region[g as usize] = id;
            }
            let routers: Vec<RouterId> = globals
                .iter()
                .map(|&g| landmark_routers[g as usize])
                .collect();
            let dist: Vec<Vec<u32>> = globals
                .iter()
                .map(|&a| {
                    globals
                        .iter()
                        .map(|&b| landmark_dist[a as usize][b as usize])
                        .collect()
                })
                .collect();
            let server = ManagementServer::new(routers, dist, config.server);
            regions.push(Region::new(id, server, globals));
        }
        let bridge = Self::compute_bridge(&landmark_region, &landmark_dist, n_regions);
        let router_landmark = landmark_routers
            .iter()
            .enumerate()
            .map(|(i, &r)| (r, i as u32))
            .collect();
        Ok(Self {
            regions,
            landmark_routers,
            landmark_dist,
            landmark_region,
            router_landmark,
            bridge,
            fanout: config.fanout,
            fallback: config.server.cross_landmark_fallback,
            neighbor_count: config.server.neighbor_count,
            counters: QueryCounters::default(),
            handovers: 0,
            cross_region_handovers: 0,
            epoch: 0,
            down: vec![false; n_regions],
        })
    }

    /// Derives the region×region bridge matrix — the minimum
    /// landmark-to-landmark hop distance across each pair — from the
    /// global distance matrix and the landmark→region assignment. Run at
    /// construction and re-run when a restarted region rejoins.
    fn compute_bridge(
        landmark_region: &[RegionId],
        landmark_dist: &[Vec<u32>],
        n_regions: usize,
    ) -> Vec<Vec<u32>> {
        let mut bridge = vec![vec![u32::MAX; n_regions]; n_regions];
        for (a, row) in bridge.iter_mut().enumerate() {
            row[a] = 0;
            for (la, &ra) in landmark_region.iter().enumerate() {
                if ra.index() != a {
                    continue;
                }
                for (lb, &rb) in landmark_region.iter().enumerate() {
                    if rb.index() == a {
                        continue;
                    }
                    row[rb.index()] = row[rb.index()].min(landmark_dist[la][lb]);
                }
            }
        }
        bridge
    }

    /// Convenience constructor measuring the landmark distance matrix
    /// over the topology (one set of landmark-to-landmark traceroutes at
    /// startup, exactly like [`ManagementServer::bootstrap`]).
    pub fn bootstrap(
        topo: &Topology,
        landmark_routers: Vec<RouterId>,
        n_regions: usize,
        config: FederationConfig,
    ) -> Result<Self, CoreError> {
        let oracle = RouteOracle::with_destinations(topo, &landmark_routers);
        let n = landmark_routers.len();
        let mut dist = vec![vec![u32::MAX; n]; n];
        for (i, &a) in landmark_routers.iter().enumerate() {
            dist[i][i] = 0;
            for (j, &b) in landmark_routers.iter().enumerate().skip(i + 1) {
                if let Some(h) = oracle.hops(a, b) {
                    dist[i][j] = h;
                    dist[j][i] = h;
                }
            }
        }
        Self::new(landmark_routers, dist, n_regions, config)
    }

    /// The regions, indexed by [`RegionId`].
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// One region.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.index()]
    }

    /// Mutable access to one region (the `shards_mut` idiom one level up;
    /// see [`Region::server_mut`] for the caller contract).
    pub fn region_mut(&mut self, id: RegionId) -> &mut Region {
        &mut self.regions[id.index()]
    }

    /// Number of regions.
    pub fn n_regions(&self) -> usize {
        self.regions.len()
    }

    /// The global landmark routers, indexed by global [`LandmarkId`].
    pub fn landmarks(&self) -> &[RouterId] {
        &self.landmark_routers
    }

    /// The global landmark distance matrix.
    pub fn landmark_distances(&self) -> &[Vec<u32>] {
        &self.landmark_dist
    }

    /// The region owning a global landmark.
    pub fn region_of_landmark(&self, landmark: LandmarkId) -> RegionId {
        self.landmark_region[landmark.index()]
    }

    /// The bridge distance between two regions: the minimum
    /// landmark-to-landmark hop count across the pair.
    pub fn bridge(&self, a: RegionId, b: RegionId) -> u32 {
        self.bridge[a.index()][b.index()]
    }

    /// The federation-wide heartbeat epoch (regions advance in lockstep).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Registered peers across all regions.
    pub fn peer_count(&self) -> usize {
        self.regions.iter().map(|r| r.peer_count()).sum()
    }

    /// Forwarding tombstones currently held across all regions. Drains to
    /// zero once every handover's grace record has been swept — the "no
    /// leaked leases" invariant the federation soak asserts.
    pub fn tombstone_count(&self) -> usize {
        self.regions
            .iter()
            .map(|r| r.server().tombstone_count())
            .sum()
    }

    /// Aggregate federation counters.
    pub fn stats(&self) -> FederationStats {
        FederationStats {
            queries: self.counters.queries.load(Ordering::Relaxed),
            remote_regions_consulted: self.counters.remote.load(Ordering::Relaxed),
            cross_region_fills: self.counters.fills.load(Ordering::Relaxed),
            handovers: self.handovers,
            cross_region_handovers: self.cross_region_handovers,
        }
    }

    /// The home `(region, global landmark)` of a path, by its terminal
    /// router.
    fn home_of_path(&self, path: &PeerPath) -> Result<(RegionId, u32), CoreError> {
        self.router_landmark
            .get(&path.landmark_router())
            .map(|&g| (self.landmark_region[g as usize], g))
            .ok_or_else(|| {
                CoreError::UnknownLandmark(format!(
                    "path terminates at {} which is no federation landmark",
                    path.landmark_router()
                ))
            })
    }

    /// The region a peer is currently registered in, if any.
    pub fn region_of_peer(&self, peer: PeerId) -> Option<RegionId> {
        self.regions
            .iter()
            .find(|r| r.server().landmark_of(peer).is_some())
            .map(|r| r.id())
    }

    /// The peer's current region and stored path, if registered.
    pub fn locate(&self, peer: PeerId) -> Option<(RegionId, &PeerPath)> {
        self.regions
            .iter()
            .find_map(|r| r.server().path_of(peer).map(|p| (r.id(), p)))
    }

    /// Resolves a peer starting from a (possibly stale) region hint by
    /// **following forwarding tombstones**: a client that cached "peer p
    /// is in region 2" before p moved asks region 2, reads the tombstone,
    /// and lands on the current region in one extra hop per move — no
    /// global scan. Returns the region currently holding the peer, or
    /// `None` if the trail goes cold (tombstone swept, peer gone).
    pub fn resolve(&self, hint: RegionId, peer: PeerId) -> Option<RegionId> {
        let mut at = hint;
        for _ in 0..=self.regions.len() {
            let server = self.regions.get(at.index())?.server();
            if server.landmark_of(peer).is_some() {
                return Some(at);
            }
            match server.forwarded_to(peer) {
                Some(next) => at = RegionId(next),
                None => return None,
            }
        }
        None
    }

    /// Advances every region's heartbeat epoch in lockstep and returns
    /// the new federation epoch.
    pub fn advance_epoch(&mut self) -> u64 {
        self.epoch += 1;
        for region in &mut self.regions {
            if self.down[region.id().index()] {
                // A crashed region's stand-in does not tick; the recovered
                // server fast-forwards to the federation epoch at rejoin.
                continue;
            }
            let e = region.server_mut().advance_epoch();
            debug_assert_eq!(e, self.epoch, "regions advance in lockstep");
        }
        self.epoch
    }

    /// Registers a newcomer: the path routes it to its home region
    /// (write-only insert there), and the answer is computed through the
    /// federated query path — so the neighbor list reflects every
    /// consulted region, not just the home one. A peer already registered
    /// anywhere in the federation is rejected as a duplicate.
    pub fn register(&mut self, peer: PeerId, path: PeerPath) -> Result<FederatedJoin, CoreError> {
        let (region, global) = self.home_of_path(&path)?;
        if self.down[region.index()] {
            return Err(CoreError::RegionUnavailable(region.0));
        }
        if self.region_of_peer(peer).is_some() {
            return Err(CoreError::DuplicatePeer(peer));
        }
        let out = self.regions[region.index()]
            .server_mut()
            .register_batch_renewing(vec![(peer, path)]);
        debug_assert_eq!(out.joined, 1, "validated fresh insert");
        let k = self.neighbor_count;
        let stored = self.regions[region.index()]
            .server()
            .path_of(peer)
            .expect("just inserted");
        let neighbors = self.closest_to_path(stored, k, Some(peer));
        Ok(FederatedJoin {
            region,
            landmark: LandmarkId(global),
            neighbors,
        })
    }

    /// Write-only batched registration (the churn/soak path — no
    /// neighbor answers): items group by home region, fresh peers insert,
    /// same-region rejoins renew their lease. A peer currently registered
    /// in a *different* region is rejected — that move is a
    /// [`Self::handover`].
    pub fn register_batch(&mut self, batch: Vec<(PeerId, PeerPath)>) -> FederatedBatchOutcome {
        let mut out = FederatedBatchOutcome::default();
        let mut per_region: Vec<Vec<(PeerId, PeerPath)>> =
            (0..self.regions.len()).map(|_| Vec::new()).collect();
        // Within-batch assignments: a later item may renew in the same
        // region but must not register the peer into a second one.
        let mut pending: HashMap<PeerId, RegionId> = HashMap::new();
        for (peer, path) in batch {
            let Ok((region, _)) = self.home_of_path(&path) else {
                out.rejected += 1;
                continue;
            };
            if self.down[region.index()] {
                out.rejected += 1;
                continue;
            }
            match self
                .region_of_peer(peer)
                .or_else(|| pending.get(&peer).copied())
            {
                Some(at) if at != region => out.rejected += 1,
                // Registered here (renew) or brand new (join): both are
                // what register_batch_renewing absorbs; duplicates within
                // one region's batch resolve exactly as one by one.
                _ => {
                    pending.insert(peer, region);
                    per_region[region.index()].push((peer, path));
                }
            }
        }
        for (region, items) in self.regions.iter_mut().zip(per_region) {
            if items.is_empty() {
                continue;
            }
            let absorbed = region.server_mut().register_batch_renewing(items);
            out.joined += absorbed.joined;
            out.renewed += absorbed.renewed;
            out.rejected += absorbed.rejected;
        }
        out
    }

    /// Batched departures across all live regions; returns the number
    /// removed. Peers whose region is crashed are untouched (their leases
    /// expire or are re-resolved after the region rejoins).
    pub fn leave_batch(&mut self, peers: &[PeerId]) -> usize {
        let down = &self.down;
        self.regions
            .iter_mut()
            .filter(|r| !down[r.id().index()])
            .map(|r| r.server_mut().leave_batch(peers))
            .sum()
    }

    /// Batched heartbeat renewal across all regions; returns the number
    /// renewed. (Replay drivers that track each peer's region can renew
    /// through [`Self::region_mut`] instead and skip the foreign-region
    /// probes.)
    pub fn renew_batch(&mut self, peers: &[PeerId]) -> usize {
        let down = &self.down;
        self.regions
            .iter_mut()
            .filter(|r| !down[r.id().index()])
            .map(|r| r.server_mut().renew_batch(peers))
            .sum()
    }

    /// Mobility handover: the peer re-traceroutes from its new attachment
    /// and the federation moves its registration to the new path's home
    /// region. The new path is validated before anything is torn down.
    /// Cross-region moves leave a **forwarding tombstone** in the old
    /// region (see [`ManagementServer::deregister_forwarding`]); the
    /// answer is federated either way.
    pub fn handover(
        &mut self,
        peer: PeerId,
        new_path: PeerPath,
    ) -> Result<FederatedJoin, CoreError> {
        let Some(from) = self.region_of_peer(peer) else {
            return Err(CoreError::UnknownPeer(peer));
        };
        let (dest, global) = self.home_of_path(&new_path)?;
        if self.down[dest.index()] {
            // Validation precedes teardown: the peer stays where it is.
            return Err(CoreError::RegionUnavailable(dest.0));
        }
        if from == dest {
            // Same region: the server's own atomic handover applies (its
            // region-local answer is discarded for the federated one).
            self.regions[dest.index()]
                .server_mut()
                .handover(peer, new_path)?;
        } else {
            self.regions[from.index()]
                .server_mut()
                .deregister_forwarding(peer, dest.0)?;
            let out = self.regions[dest.index()]
                .server_mut()
                .register_batch_renewing(vec![(peer, new_path)]);
            debug_assert_eq!(out.joined, 1, "peer was only live in `from`");
            self.cross_region_handovers += 1;
        }
        self.handovers += 1;
        let k = self.neighbor_count;
        let stored = self.regions[dest.index()]
            .server()
            .path_of(peer)
            .expect("just moved here");
        let neighbors = self.closest_to_path(stored, k, Some(peer));
        Ok(FederatedJoin {
            region: dest,
            landmark: LandmarkId(global),
            neighbors,
        })
    }

    /// Neighbors of a registered peer, through the federated query path.
    pub fn neighbors_of(&self, peer: PeerId, k: usize) -> Result<Vec<Neighbor>, CoreError> {
        let (_, path) = self.locate(peer).ok_or(CoreError::UnknownPeer(peer))?;
        Ok(self.closest_to_path(path, k, Some(peer)))
    }

    /// The regions a query from `home` consults: the home region first,
    /// then foreign regions ascending by `(bridge, id)`, bounded by the
    /// configured fanout.
    fn query_regions(&self, home: RegionId) -> Vec<RegionId> {
        let mut foreign: Vec<RegionId> = (0..self.regions.len() as u32)
            .map(RegionId)
            .filter(|&r| r != home && !self.down[r.index()])
            .collect();
        foreign.sort_unstable_by_key(|&r| (self.bridge(home, r), r.0));
        if self.down[home.index()] {
            // The home region is crashed: rather than erroring (or
            // answering from its empty stand-in plus a capped fan-out),
            // degrade to full fan-out over every live region — the best
            // answer available until the region rejoins.
            return foreign;
        }
        let take = self.fanout.unwrap_or(foreign.len()).min(foreign.len());
        let mut out = Vec::with_capacity(take + 1);
        out.push(home);
        out.extend(foreign.into_iter().take(take));
        out
    }

    /// The closest registered peers to a query path across the consulted
    /// regions — the federation's routing front door. Exact candidates
    /// (peers sharing a router with the query path) merge by `(dtree,
    /// peer)` from every consulted region; if the list stays short and
    /// the fallback is enabled, it is topped up with **cross-region
    /// bridge fills** ranked by
    /// `depth(query) + hops(L_query, L_other) + depth(peer)` over the
    /// global landmark distance matrix. With `fanout = None` this is the
    /// answer one big server over all landmarks would give. `&self`, like
    /// the underlying servers' read paths.
    pub fn closest_to_path(
        &self,
        path: &PeerPath,
        k: usize,
        exclude: Option<PeerId>,
    ) -> Vec<Neighbor> {
        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        let excl: HashSet<PeerId> = exclude.into_iter().collect();
        let home = self.home_of_path(path).ok();
        let consulted: Vec<RegionId> = match home {
            Some((home, _)) => self.query_regions(home),
            // No home landmark: exact answers only, from every live region.
            None => (0..self.regions.len() as u32)
                .map(RegionId)
                .filter(|&r| !self.down[r.index()])
                .collect(),
        };
        self.counters
            .remote
            .fetch_add(consulted.len().saturating_sub(1) as u64, Ordering::Relaxed);
        let mut result: Vec<Neighbor> = Vec::with_capacity(k.saturating_mul(2));
        for &r in &consulted {
            result.extend(
                self.regions[r.index()]
                    .server()
                    .index()
                    .query_nearest(path, k, &excl),
            );
        }
        result.sort_unstable_by_key(|n| (n.dtree, n.peer));
        result.truncate(k);
        if result.len() < k && self.fallback {
            if let Some((_, own_global)) = home {
                let missing = k - result.len();
                let have: HashSet<PeerId> = result.iter().map(|n| n.peer).collect();
                let fill = self.bridge_fill(path, own_global, missing, &consulted, &excl, &have);
                self.counters
                    .fills
                    .fetch_add(fill.len() as u64, Ordering::Relaxed);
                result.extend(fill);
            }
        }
        result
    }

    /// Cross-region fill: one ordered cursor per foreign landmark in a
    /// consulted region (`region(L).peers_through(L's router)`, ascending
    /// by depth below the landmark), k-way merged by the bridge estimate.
    /// Mirrors the single server's cross-landmark fill with the global
    /// distance matrix supplying the bridges.
    fn bridge_fill(
        &self,
        path: &PeerPath,
        own_global: u32,
        k: usize,
        consulted: &[RegionId],
        exclude: &HashSet<PeerId>,
        already: &HashSet<PeerId>,
    ) -> Vec<Neighbor> {
        let consulted: HashSet<RegionId> = consulted.iter().copied().collect();
        let query_depth = path.depth();
        type Cursor<'a> = (u32, Box<dyn Iterator<Item = (PeerId, u32)> + 'a>);
        let mut heap: BinaryHeap<std::cmp::Reverse<(u32, PeerId, usize)>> = BinaryHeap::new();
        let mut iters: Vec<Cursor<'_>> = Vec::new();
        for (li, &lrouter) in self.landmark_routers.iter().enumerate() {
            if li as u32 == own_global {
                continue;
            }
            let region = self.landmark_region[li];
            if !consulted.contains(&region) {
                continue;
            }
            let bridge = self.landmark_dist[own_global as usize][li];
            if bridge == u32::MAX {
                continue;
            }
            let base = query_depth + bridge;
            let mut iter = self.regions[region.index()]
                .server()
                .index()
                .peers_through(lrouter);
            if let Some((peer, depth)) = iter.next() {
                let idx = iters.len();
                heap.push(std::cmp::Reverse((base + depth, peer, idx)));
                iters.push((base, Box::new(iter)));
            }
        }
        let mut out = Vec::with_capacity(k);
        let mut emitted: HashSet<PeerId> = HashSet::new();
        while let Some(std::cmp::Reverse((est, peer, idx))) = heap.pop() {
            let (base, iter) = &mut iters[idx];
            if let Some((next_peer, depth)) = iter.next() {
                heap.push(std::cmp::Reverse((*base + depth, next_peer, idx)));
            }
            if exclude.contains(&peer) || already.contains(&peer) || !emitted.insert(peer) {
                continue;
            }
            out.push(Neighbor { peer, dtree: est });
            if out.len() == k {
                break;
            }
        }
        out
    }

    /// Consumes the federation, yielding the routing metadata and the
    /// owned per-region servers — everything the actorized runtime
    /// ([`crate::runtime::ActorFederation`]) distributes across its
    /// workers. Construction-time validation has already run, so the
    /// runtime inherits a well-formed partition and bridge matrix.
    pub(crate) fn into_runtime_parts(self) -> RuntimeParts {
        let mut servers = Vec::with_capacity(self.regions.len());
        for region in self.regions {
            let (server, _globals) = region.into_server();
            servers.push(server);
        }
        RuntimeParts {
            landmark_routers: self.landmark_routers,
            landmark_dist: self.landmark_dist,
            landmark_region: self.landmark_region,
            router_landmark: self.router_landmark,
            bridge: self.bridge,
            fanout: self.fanout,
            fallback: self.fallback,
            neighbor_count: self.neighbor_count,
            servers,
        }
    }

    /// Federated lease expiry: every region sweeps its epoch-bucketed
    /// arenas once, and the results keep the distinction the forwarding
    /// tombstones encode — a lease that lapsed **silently** (the peer
    /// failed) versus a tombstone that aged out (the peer **moved** and
    /// its grace record is done). Handover must never leak leases:
    /// sweeping until [`Self::tombstone_count`] reaches zero retires
    /// every grace record.
    pub fn expire_stale(&mut self, max_age: u64) -> FederationSweep {
        let mut out = FederationSweep::default();
        for region in &mut self.regions {
            let id = region.id();
            if self.down[id.index()] {
                continue;
            }
            let sweep = region.server_mut().expire_stale_full(max_age);
            out.expired
                .extend(sweep.expired.into_iter().map(|p| (id, p)));
            out.moved_swept
                .extend(sweep.moved.into_iter().map(|(p, _)| (id, p)));
        }
        out
    }

    // ---- crash / restart ------------------------------------------------

    /// Whether a region is currently crashed.
    pub fn region_down(&self, id: RegionId) -> bool {
        self.down[id.index()]
    }

    /// Serializes one region's directory into the versioned snapshot
    /// format ([`ManagementServer::snapshot_bytes`]). Refused while the
    /// region is down — its state lives in the snapshot/journal pair that
    /// will rejoin it, not in the empty stand-in.
    pub fn snapshot_region(&self, id: RegionId) -> Result<Vec<u8>, CoreError> {
        if self.down[id.index()] {
            return Err(CoreError::RegionUnavailable(id.0));
        }
        self.regions[id.index()].server().snapshot_bytes()
    }

    /// Simulates a region crash: the region's server is torn out and
    /// returned (the test harness's view of what died with the process),
    /// an empty stand-in takes its slot, and the region is marked down —
    /// writes to it are refused, queries route around it
    /// ([`Self::query_regions`]). Crashing an already-down region fails.
    pub fn crash_region(&mut self, id: RegionId) -> Result<ManagementServer, CoreError> {
        if self.down[id.index()] {
            return Err(CoreError::RegionUnavailable(id.0));
        }
        let region = &mut self.regions[id.index()];
        let routers = region.server().landmarks().to_vec();
        let dist = region.server().landmark_distances().to_vec();
        let config = *region.server().config();
        let stand_in = ManagementServer::new(routers, dist, config);
        self.down[id.index()] = true;
        Ok(region.replace_server(stand_in))
    }

    /// Rejoins a crashed region from its durable state: the snapshot plus
    /// the journal of operations since it was taken. The recovered server
    /// must serve the exact landmark partition the region owned (anything
    /// else fails closed), its epoch is fast-forwarded to the federation
    /// epoch the cluster reached while the region was down, and the
    /// bridge matrix is re-derived before the region resumes serving.
    pub fn rejoin_region(
        &mut self,
        id: RegionId,
        snapshot: &[u8],
        journal: &[u8],
    ) -> Result<RecoveryReport, CoreError> {
        if !self.down[id.index()] {
            return Err(CoreError::InvalidFederation(format!(
                "{id} is live; rejoin only applies to a crashed region"
            )));
        }
        let (mut server, report) = ManagementServer::recover(snapshot, journal)?;
        let region = &self.regions[id.index()];
        if server.landmarks() != region.server().landmarks() {
            return Err(CoreError::InvalidFederation(format!(
                "recovered snapshot serves landmarks {:?}, {id} owns {:?}",
                server.landmarks(),
                region.server().landmarks()
            )));
        }
        if server.landmark_distances() != region.server().landmark_distances() {
            return Err(CoreError::InvalidFederation(format!(
                "recovered snapshot's landmark sub-matrix does not match {id}'s"
            )));
        }
        if server.epoch() > self.epoch {
            return Err(CoreError::InvalidFederation(format!(
                "recovered {id} is at epoch {} but the federation is at {} — \
                 the snapshot/journal pair is from a different run",
                server.epoch(),
                self.epoch
            )));
        }
        // The cluster kept ticking while the region was down; catch the
        // recovered server up so leases age consistently (a peer that
        // could not renew during the outage expires on schedule).
        while server.epoch() < self.epoch {
            server.advance_epoch();
        }
        self.regions[id.index()].replace_server(server);
        self.down[id.index()] = false;
        self.bridge = Self::compute_bridge(
            &self.landmark_region,
            &self.landmark_dist,
            self.regions.len(),
        );
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(ids: &[u32]) -> PeerPath {
        PeerPath::new(ids.iter().map(|&i| RouterId(i)).collect()).unwrap()
    }

    /// Four landmarks at routers 0/100/200/300. Distances: neighbors on a
    /// line, 5 hops apart each (0-100: 5, 0-200: 10, ...).
    fn four_landmarks() -> (Vec<RouterId>, Vec<Vec<u32>>) {
        let routers = vec![RouterId(0), RouterId(100), RouterId(200), RouterId(300)];
        let dist = (0..4u32)
            .map(|i| (0..4u32).map(|j| i.abs_diff(j) * 5).collect())
            .collect();
        (routers, dist)
    }

    fn federation(n_regions: usize, fanout: Option<usize>) -> Federation {
        let (routers, dist) = four_landmarks();
        Federation::new(
            routers,
            dist,
            n_regions,
            FederationConfig {
                fanout,
                server: ServerConfig {
                    neighbor_count: 3,
                    ..ServerConfig::default()
                },
            },
        )
        .unwrap()
    }

    #[test]
    fn partition_and_bridge_matrix() {
        let fed = federation(2, None);
        // Round-robin: landmarks 0,2 → region 0; 1,3 → region 1.
        assert_eq!(fed.n_regions(), 2);
        assert_eq!(fed.region(RegionId(0)).landmark_globals(), &[0, 2]);
        assert_eq!(fed.region(RegionId(1)).landmark_globals(), &[1, 3]);
        assert_eq!(fed.region_of_landmark(LandmarkId(3)), RegionId(1));
        // Bridge = min cross-pair distance: landmarks 0↔1 are 5 apart.
        assert_eq!(fed.bridge(RegionId(0), RegionId(1)), 5);
        assert_eq!(fed.bridge(RegionId(1), RegionId(0)), 5);
        assert_eq!(fed.bridge(RegionId(0), RegionId(0)), 0);
        // Each region's server got the matching sub-matrix.
        let r0 = fed.region(RegionId(0)).server();
        assert_eq!(r0.landmarks(), &[RouterId(0), RouterId(200)]);
        assert_eq!(r0.landmark_distances()[0][1], 10);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let (routers, dist) = four_landmarks();
        assert!(matches!(
            Federation::new(
                routers.clone(),
                dist.clone(),
                0,
                FederationConfig::default()
            ),
            Err(CoreError::InvalidFederation(_))
        ));
        assert!(matches!(
            Federation::new(
                routers.clone(),
                dist.clone(),
                5,
                FederationConfig::default()
            ),
            Err(CoreError::InvalidFederation(_))
        ));
        let cfg = FederationConfig {
            server: ServerConfig {
                super_peers: Some(crate::SuperPeerConfig {
                    region_depth: 2,
                    promote_threshold: 2,
                }),
                ..ServerConfig::default()
            },
            ..FederationConfig::default()
        };
        assert!(matches!(
            Federation::new(routers.clone(), dist.clone(), 2, cfg),
            Err(CoreError::InvalidFederation(_))
        ));
        // Per-region server configs are validated at the front door too.
        let cfg = FederationConfig {
            server: ServerConfig {
                neighbor_count: 0,
                ..ServerConfig::default()
            },
            ..FederationConfig::default()
        };
        assert!(matches!(
            Federation::new(routers.clone(), dist.clone(), 2, cfg),
            Err(CoreError::InvalidConfig(_))
        ));
        let cfg = FederationConfig {
            server: ServerConfig {
                adaptive_leases: Some(crate::AdaptiveLeaseConfig {
                    min_age: 9,
                    max_age: 3,
                    ..crate::AdaptiveLeaseConfig::default()
                }),
                ..ServerConfig::default()
            },
            ..FederationConfig::default()
        };
        assert!(matches!(
            Federation::new(routers, dist, 2, cfg),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn register_routes_to_home_region_and_answers_across_regions() {
        let mut fed = federation(2, None);
        fed.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        // Peer 2 under landmark 1 (region 1), sharing no routers with 1.
        let out = fed.register(PeerId(2), path(&[110, 105, 100])).unwrap();
        assert_eq!(out.region, RegionId(1));
        assert_eq!(out.landmark, LandmarkId(1), "global landmark id");
        // The federated answer reaches across regions through the bridge:
        // query depth 2 + bridge(L1→L0) 5 + peer 1's depth 3 = 10.
        assert_eq!(out.neighbors.len(), 1);
        assert_eq!(out.neighbors[0].peer, PeerId(1));
        assert_eq!(out.neighbors[0].dtree, 2 + 5 + 3);
        assert_eq!(fed.peer_count(), 2);
        assert_eq!(fed.region_of_peer(PeerId(1)), Some(RegionId(0)));
        // Duplicates are caught across regions.
        assert!(matches!(
            fed.register(PeerId(1), path(&[111, 105, 100])),
            Err(CoreError::DuplicatePeer(_))
        ));
        assert!(matches!(
            fed.register(PeerId(3), path(&[7, 8, 999])),
            Err(CoreError::UnknownLandmark(_))
        ));
        let stats = fed.stats();
        assert_eq!(stats.queries, 2, "one federated answer per join");
        assert!(stats.remote_regions_consulted >= 2);
        assert_eq!(stats.cross_region_fills, 1);
    }

    #[test]
    fn fanout_zero_with_multiple_regions_is_rejected() {
        // Historically legal (answers came purely from the home region),
        // but it silently made every cross-region peer invisible — now a
        // typed construction error. A single region still accepts it:
        // there is no foreign region to consult anyway.
        let (routers, dist) = four_landmarks();
        let cfg = FederationConfig {
            fanout: Some(0),
            ..FederationConfig::default()
        };
        assert!(matches!(
            Federation::new(routers.clone(), dist.clone(), 2, cfg),
            Err(CoreError::InvalidFederation(_))
        ));
        let mut fed = Federation::new(routers, dist, 1, cfg).unwrap();
        fed.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        assert_eq!(fed.stats().remote_regions_consulted, 0);
    }

    #[test]
    fn cross_region_handover_leaves_a_resolvable_tombstone() {
        let mut fed = federation(2, None);
        fed.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        fed.register(PeerId(2), path(&[110, 105, 100])).unwrap();
        fed.advance_epoch();
        // Peer 1 moves from landmark 0 (region 0) to landmark 1 (region 1).
        let out = fed.handover(PeerId(1), path(&[111, 105, 100])).unwrap();
        assert_eq!(out.region, RegionId(1));
        assert_eq!(out.landmark, LandmarkId(1));
        assert_eq!(out.neighbors[0].peer, PeerId(2), "now a same-region peer");
        assert_eq!(fed.region_of_peer(PeerId(1)), Some(RegionId(1)));
        assert_eq!(fed.peer_count(), 2, "moved, not duplicated");
        // The old region forwards stale lookups.
        assert_eq!(fed.tombstone_count(), 1);
        assert_eq!(fed.resolve(RegionId(0), PeerId(1)), Some(RegionId(1)));
        assert_eq!(fed.resolve(RegionId(1), PeerId(1)), Some(RegionId(1)));
        let stats = fed.stats();
        assert_eq!(stats.handovers, 1);
        assert_eq!(stats.cross_region_handovers, 1);
        // Expiry distinguishes "moved" from "silent": advance far enough
        // for both the tombstone and peer 2's untouched lease to lapse,
        // while peer 1 keeps heartbeating in its new region.
        for _ in 0..3 {
            fed.advance_epoch();
            assert_eq!(fed.renew_batch(&[PeerId(1)]), 1);
        }
        let sweep = fed.expire_stale(2);
        assert_eq!(sweep.moved_swept, vec![(RegionId(0), PeerId(1))]);
        assert_eq!(
            sweep.expired,
            vec![(RegionId(1), PeerId(2))],
            "only the silent peer counts as expired"
        );
        assert_eq!(fed.region_of_peer(PeerId(1)), Some(RegionId(1)));
        assert_eq!(fed.tombstone_count(), 0, "no leaked leases");
        assert_eq!(fed.resolve(RegionId(0), PeerId(1)), None, "trail swept");
    }

    #[test]
    fn intra_region_handover_keeps_the_region() {
        let mut fed = federation(2, None);
        fed.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        // Landmark 2 is also region 0 (round-robin): same-region move.
        let out = fed.handover(PeerId(1), path(&[210, 205, 200])).unwrap();
        assert_eq!(out.region, RegionId(0));
        assert_eq!(out.landmark, LandmarkId(2));
        assert_eq!(fed.tombstone_count(), 0, "no tombstone within a region");
        let stats = fed.stats();
        assert_eq!((stats.handovers, stats.cross_region_handovers), (1, 0));
        assert!(matches!(
            fed.handover(PeerId(9), path(&[4, 2, 1, 0])),
            Err(CoreError::UnknownPeer(_))
        ));
        // Validation precedes teardown: a bad destination changes nothing.
        let err = fed.handover(PeerId(1), path(&[7, 8, 999])).unwrap_err();
        assert!(matches!(err, CoreError::UnknownLandmark(_)));
        assert_eq!(fed.region_of_peer(PeerId(1)), Some(RegionId(0)));
    }

    #[test]
    fn batch_register_renews_and_rejects_cross_region_moves() {
        let mut fed = federation(4, None);
        let out = fed.register_batch(vec![
            (PeerId(1), path(&[4, 2, 1, 0])),
            (PeerId(2), path(&[110, 105, 100])),
            (PeerId(3), path(&[7, 8, 999])), // unknown landmark
        ]);
        assert_eq!((out.joined, out.renewed, out.rejected), (2, 0, 1));
        fed.advance_epoch();
        let out = fed.register_batch(vec![
            (PeerId(1), path(&[4, 2, 1, 0])),    // rejoin: renew
            (PeerId(2), path(&[210, 205, 200])), // different region: handover material
        ]);
        assert_eq!((out.joined, out.renewed, out.rejected), (0, 1, 1));
        assert_eq!(fed.peer_count(), 2);
        assert_eq!(fed.leave_batch(&[PeerId(1), PeerId(2), PeerId(9)]), 2);
        assert_eq!(fed.peer_count(), 0);
    }

    #[test]
    fn single_region_federation_is_one_big_server() {
        let mut fed = federation(1, None);
        assert_eq!(fed.region(RegionId(0)).landmark_globals(), &[0, 1, 2, 3]);
        fed.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        let out = fed.register(PeerId(2), path(&[5, 2, 1, 0])).unwrap();
        assert_eq!(
            out.neighbors[0],
            Neighbor {
                peer: PeerId(1),
                dtree: 2
            }
        );
        assert_eq!(fed.renew_batch(&[PeerId(1)]), 1);
    }

    #[test]
    fn crashed_region_refuses_writes_and_queries_route_around_it() {
        let mut fed = federation(2, None);
        fed.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        fed.register(PeerId(2), path(&[110, 105, 100])).unwrap();
        let dead = fed.crash_region(RegionId(0)).unwrap();
        assert_eq!(dead.peer_count(), 1, "the crash took peer 1 with it");
        assert!(fed.region_down(RegionId(0)));
        assert_eq!(fed.peer_count(), 1, "only the live region counts");
        // Writes to the crashed region fail typed; double-crash too.
        assert!(matches!(
            fed.register(PeerId(3), path(&[5, 2, 1, 0])),
            Err(CoreError::RegionUnavailable(0))
        ));
        assert!(matches!(
            fed.handover(PeerId(2), path(&[5, 2, 1, 0])),
            Err(CoreError::RegionUnavailable(0))
        ));
        assert_eq!(fed.region_of_peer(PeerId(2)), Some(RegionId(1)));
        assert!(matches!(
            fed.crash_region(RegionId(0)),
            Err(CoreError::RegionUnavailable(0))
        ));
        assert!(matches!(
            fed.snapshot_region(RegionId(0)),
            Err(CoreError::RegionUnavailable(0))
        ));
        let batch = fed.register_batch(vec![
            (PeerId(4), path(&[6, 2, 1, 0])),    // home region crashed
            (PeerId(5), path(&[120, 105, 100])), // live region
        ]);
        assert_eq!((batch.joined, batch.rejected), (1, 1));
        // A query homed in the crashed region degrades to full fan-out
        // over the live regions instead of erroring.
        let answer = fed.closest_to_path(&path(&[9, 2, 1, 0]), 3, None);
        let peers: Vec<PeerId> = answer.iter().map(|n| n.peer).collect();
        assert_eq!(peers, vec![PeerId(2), PeerId(5)]);
    }

    #[test]
    fn rejoin_restores_the_region_exactly_and_resumes_serving() {
        use crate::directory::persist::journal::{append_op, JournalOp};
        let mut fed = federation(2, None);
        fed.register(PeerId(1), path(&[4, 2, 1, 0])).unwrap();
        fed.register(PeerId(2), path(&[110, 105, 100])).unwrap();
        fed.advance_epoch();
        // Durable state: a snapshot, then journaled ops applied after it.
        let snapshot = fed.snapshot_region(RegionId(0)).unwrap();
        let mut journal = Vec::new();
        let op = JournalOp::RegisterBatch(vec![(PeerId(3), path(&[210, 205, 200]))]);
        append_op(&mut journal, &op);
        fed.region_mut(RegionId(0))
            .server_mut()
            .apply_journal_op(op);
        fed.crash_region(RegionId(0)).unwrap();
        // The cluster keeps ticking while the region is down.
        fed.advance_epoch();
        fed.advance_epoch();
        // Rejoining a live region is refused.
        assert!(matches!(
            fed.rejoin_region(RegionId(1), &snapshot, &journal),
            Err(CoreError::InvalidFederation(_))
        ));
        // A damaged snapshot fails closed and the region stays down.
        let mut bad = snapshot.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x10;
        assert!(matches!(
            fed.rejoin_region(RegionId(0), &bad, &journal),
            Err(CoreError::Persist(_))
        ));
        assert!(fed.region_down(RegionId(0)));
        // The real pair rejoins: both peers are back, epochs caught up,
        // and the region serves again.
        let report = fed.rejoin_region(RegionId(0), &snapshot, &journal).unwrap();
        assert_eq!(report.journal_records, 1);
        assert!(!fed.region_down(RegionId(0)));
        assert_eq!(fed.peer_count(), 3);
        assert_eq!(fed.region_of_peer(PeerId(1)), Some(RegionId(0)));
        assert_eq!(fed.region_of_peer(PeerId(3)), Some(RegionId(0)));
        assert_eq!(fed.region(RegionId(0)).server().epoch(), fed.epoch());
        fed.register(PeerId(4), path(&[5, 2, 1, 0])).unwrap();
        let answer = fed.neighbors_of(PeerId(4), 3).unwrap();
        assert_eq!(answer[0].peer, PeerId(1), "shares router 2, dtree 2");
        // A snapshot from the wrong region cannot rejoin.
        let foreign = fed.snapshot_region(RegionId(1)).unwrap();
        fed.crash_region(RegionId(0)).unwrap();
        assert!(matches!(
            fed.rejoin_region(RegionId(0), &foreign, &[]),
            Err(CoreError::InvalidFederation(_))
        ));
        assert!(fed.region_down(RegionId(0)));
    }
}
