//! Property tests for the durability layer: under arbitrary
//! register/renew/leave/handover/expire interleavings, snapshot→restore
//! and snapshot+journal-replay rebuild a directory **observationally
//! identical** to the live one — same registered set and paths, same
//! answers, same conservation counters, same future expiry behavior —
//! and every damaged-file case (flipped bytes, truncation, torn journal
//! tails) either recovers to the last consistent point or fails closed
//! with a typed error. A partial directory is never produced.

use nearpeer_core::directory::persist::journal::append_op;
use nearpeer_core::{
    AdaptiveLeaseConfig, CoreError, JournalOp, ManagementServer, PeerId, PeerPath, ServerConfig,
};
use nearpeer_topology::RouterId;
use proptest::prelude::*;

const LM_ROUTERS: [u32; 3] = [0, 1_000, 2_000];
const LM_DIST: [[u32; 3]; 3] = [[0, 3, 7], [3, 0, 4], [7, 4, 0]];

#[derive(Debug, Clone, Copy)]
struct JoinSpec {
    peer: u8,
    landmark: u8,
    access: u16,
    mids: u64,
    depth: u8,
}

/// Deterministic path synthesis (same scheme as the directory-equivalence
/// suite): a unique-ish access router, up to four mid routers sampled
/// from a shared pool, terminating at the chosen landmark.
fn spec_path(s: JoinSpec) -> PeerPath {
    let lm_router = LM_ROUTERS[(s.landmark as usize) % LM_ROUTERS.len()];
    let mut routers = vec![RouterId(50_000 + (s.access % 64) as u32)];
    let depth = (s.depth % 5) as usize;
    let mut pool: Vec<u32> = (100..140).collect();
    let mut state = s.mids | 1;
    for _ in 0..depth {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let pick = (state >> 33) as usize % pool.len();
        routers.push(RouterId(pool.swap_remove(pick)));
    }
    routers.push(RouterId(lm_router));
    PeerPath::new(routers).expect("disjoint id ranges are loop-free")
}

/// The journal-able operation alphabet — everything the batch writer
/// records between snapshots.
#[derive(Debug, Clone)]
enum Op {
    RegisterBatch(Vec<JoinSpec>),
    RenewBatch(Vec<u8>),
    LeaveBatch(Vec<u8>),
    Handover(JoinSpec),
    DeregisterForwarding { peer: u8, region: u8 },
    Deregister(u8),
    AdvanceEpoch,
    ExpireStale(u8),
}

fn to_journal(op: &Op) -> JournalOp {
    match op {
        Op::RegisterBatch(specs) => JournalOp::RegisterBatch(
            specs
                .iter()
                .map(|&s| (PeerId(s.peer as u64), spec_path(s)))
                .collect(),
        ),
        Op::RenewBatch(peers) => {
            JournalOp::RenewBatch(peers.iter().map(|&p| PeerId(p as u64)).collect())
        }
        Op::LeaveBatch(peers) => {
            JournalOp::LeaveBatch(peers.iter().map(|&p| PeerId(p as u64)).collect())
        }
        Op::Handover(spec) => JournalOp::Handover {
            peer: PeerId(spec.peer as u64),
            path: spec_path(*spec),
        },
        Op::DeregisterForwarding { peer, region } => JournalOp::DeregisterForwarding {
            peer: PeerId(*peer as u64),
            to_region: (*region % 4) as u32,
        },
        Op::Deregister(peer) => JournalOp::Deregister(PeerId(*peer as u64)),
        Op::AdvanceEpoch => JournalOp::AdvanceEpoch,
        Op::ExpireStale(max_age) => JournalOp::ExpireStale {
            max_age: (*max_age % 6) as u64,
        },
    }
}

fn arb_spec() -> impl Strategy<Value = JoinSpec> {
    (
        any::<u8>(),
        any::<u8>(),
        any::<u16>(),
        any::<u64>(),
        any::<u8>(),
    )
        .prop_map(|(peer, landmark, access, mids, depth)| JoinSpec {
            peer: peer % 24,
            landmark,
            access,
            mids,
            depth,
        })
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        prop::collection::vec(arb_spec(), 1..6).prop_map(Op::RegisterBatch),
        prop::collection::vec(any::<u8>(), 1..6)
            .prop_map(|ps| Op::RenewBatch(ps.into_iter().map(|p| p % 24).collect())),
        prop::collection::vec(any::<u8>(), 1..6)
            .prop_map(|ps| Op::LeaveBatch(ps.into_iter().map(|p| p % 24).collect())),
        arb_spec().prop_map(Op::Handover),
        (any::<u8>(), any::<u8>()).prop_map(|(peer, region)| Op::DeregisterForwarding {
            peer: peer % 24,
            region
        }),
        any::<u8>().prop_map(|p| Op::Deregister(p % 24)),
        Just(Op::AdvanceEpoch),
        any::<u8>().prop_map(Op::ExpireStale),
    ]
}

fn build_server(adaptive: bool) -> ManagementServer {
    ManagementServer::new(
        LM_ROUTERS.iter().map(|&r| RouterId(r)).collect(),
        LM_DIST.iter().map(|row| row.to_vec()).collect(),
        ServerConfig {
            neighbor_count: 4,
            adaptive_leases: adaptive.then(|| AdaptiveLeaseConfig {
                min_age: 2,
                max_age: 10,
                ..AdaptiveLeaseConfig::default()
            }),
            ..ServerConfig::default()
        },
    )
}

/// Every externally observable facet of the directory must agree.
fn assert_same_directory(a: &ManagementServer, b: &ManagementServer) {
    assert_eq!(a.epoch(), b.epoch(), "epoch");
    assert_eq!(a.peer_count(), b.peer_count(), "population");
    assert_eq!(a.stats(), b.stats(), "conservation counters");
    assert_eq!(a.tombstone_count(), b.tombstone_count(), "tombstones");
    let mut peers: Vec<PeerId> = a.index().peers().collect();
    peers.sort_unstable();
    let mut b_peers: Vec<PeerId> = b.index().peers().collect();
    b_peers.sort_unstable();
    assert_eq!(peers, b_peers, "registered set");
    for &p in &peers {
        assert_eq!(a.path_of(p), b.path_of(p), "path of {p:?}");
        assert_eq!(a.landmark_of(p), b.landmark_of(p), "landmark of {p:?}");
        assert_eq!(
            a.neighbors_of(p, 4).unwrap(),
            b.neighbors_of(p, 4).unwrap(),
            "answer for {p:?}"
        );
    }
    for p in 0..24u64 {
        assert_eq!(
            a.forwarded_to(PeerId(p)),
            b.forwarded_to(PeerId(p)),
            "forwarding of peer {p}"
        );
    }
}

/// Applies `ops`, snapshotting at `cut` and journaling everything after
/// it. Returns the live server, the snapshot, and the journal bytes.
fn run_with_cut(ops: &[Op], cut: usize, adaptive: bool) -> (ManagementServer, Vec<u8>, Vec<u8>) {
    let mut live = build_server(adaptive);
    let mut snapshot = None;
    let mut journal = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        if i == cut {
            snapshot = Some(live.snapshot_bytes().unwrap());
        }
        let jop = to_journal(op);
        if i >= cut {
            append_op(&mut journal, &jop);
        }
        live.apply_journal_op(jop);
    }
    let snapshot = snapshot.unwrap_or_else(|| live.snapshot_bytes().unwrap());
    (live, snapshot, journal)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Snapshot at an arbitrary cut point + journal replay of everything
    /// after it lands exactly on the live directory — including identical
    /// *future* behavior (sweeps after recovery expire the same peers,
    /// because lease ages, epoch buckets and adaptive EWMA state all
    /// survived the round trip).
    #[test]
    fn snapshot_plus_journal_replay_equals_live(
        ops in prop::collection::vec(arb_op(), 1..60),
        cut_seed in any::<u16>(),
        adaptive in any::<bool>(),
    ) {
        let cut = cut_seed as usize % (ops.len() + 1);
        let (live, snapshot, journal) = run_with_cut(&ops, cut, adaptive);
        let (recovered, report) = ManagementServer::recover(&snapshot, &journal).unwrap();
        prop_assert_eq!(report.journal_records as usize, ops.len() - cut);
        prop_assert!(!report.journal_torn_tail);
        assert_same_directory(&live, &recovered);
        // The futures coincide too.
        let mut live = live;
        let mut recovered = recovered;
        for _ in 0..8 {
            live.advance_epoch();
            recovered.advance_epoch();
            prop_assert_eq!(live.expire_stale(2), recovered.expire_stale(2));
        }
        assert_same_directory(&live, &recovered);
    }

    /// Any single flipped byte in the snapshot fails recovery closed with
    /// a typed persistence error — the checksum (or the header checks in
    /// front of it) rejects the file before any state is parsed.
    #[test]
    fn corrupt_snapshot_fails_closed(
        ops in prop::collection::vec(arb_op(), 1..30),
        pos_seed in any::<u32>(),
        mask in 1u8..=255,
    ) {
        let (_, snapshot, _) = run_with_cut(&ops, ops.len(), false);
        let mut bad = snapshot;
        let pos = pos_seed as usize % bad.len();
        bad[pos] ^= mask;
        let err = ManagementServer::recover(&bad, &[]).unwrap_err();
        prop_assert!(
            matches!(err, CoreError::Persist(_)),
            "expected a typed persistence error, got {err}"
        );
    }

    /// Truncating the snapshot anywhere fails closed the same way.
    #[test]
    fn truncated_snapshot_fails_closed(
        ops in prop::collection::vec(arb_op(), 1..30),
        keep_seed in any::<u32>(),
    ) {
        let (_, snapshot, _) = run_with_cut(&ops, ops.len(), false);
        let keep = keep_seed as usize % snapshot.len();
        let err = ManagementServer::recover(&snapshot[..keep], &[]).unwrap_err();
        prop_assert!(
            matches!(err, CoreError::Persist(_)),
            "expected a typed persistence error, got {err}"
        );
    }

    /// A journal cut anywhere (the crash-mid-append case) replays exactly
    /// the records that remained intact — the recovered directory equals a
    /// control that applied precisely that prefix of the op stream, never
    /// a half-applied record.
    #[test]
    fn torn_journal_recovers_to_last_consistent_point(
        ops in prop::collection::vec(arb_op(), 1..40),
        cut_seed in any::<u16>(),
        tear_seed in any::<u32>(),
    ) {
        let cut = cut_seed as usize % (ops.len() + 1);
        let (_, snapshot, journal) = run_with_cut(&ops, cut, false);
        let tear = tear_seed as usize % (journal.len() + 1);
        let torn = &journal[..tear];
        match ManagementServer::recover(&snapshot, torn) {
            Ok((recovered, report)) => {
                // Replay stopped on a record boundary: a control applying
                // exactly that many ops beyond the cut must agree.
                let survived = report.journal_records as usize;
                prop_assert!(survived <= ops.len() - cut);
                let (mut control, _) = ManagementServer::recover(&snapshot, &[]).unwrap();
                for op in &ops[cut..cut + survived] {
                    control.apply_journal_op(to_journal(op));
                }
                assert_same_directory(&control, &recovered);
            }
            // Only a damaged *header* may refuse outright (the file no
            // longer identifies as a journal); body tears must replay.
            Err(e) => {
                prop_assert!(tear < 6 && tear > 0, "body tear at {tear} refused: {e}");
                prop_assert!(matches!(e, CoreError::Persist(_)));
            }
        }
    }
}
