//! Property tests for the telemetry plane: histogram conservation under
//! arbitrary inputs and under concurrent recording.
//!
//! The histogram's contract is that the distribution is *conserved*: no
//! record is lost, duplicated, or moved between buckets, whether values
//! arrive from one thread or many, and whether they are read through one
//! histogram or merged from per-shard snapshots. Quantiles are estimates
//! (log₂ buckets quantize), so the properties pin what is exact — count,
//! sum, max, bucket membership — and bound what is estimated.

use nearpeer_core::{Histogram, HistogramSnapshot};
use proptest::prelude::*;
use std::sync::Arc;
use std::thread;

/// The log₂ bucket a value lands in (mirrors the implementation's
/// `bit_length` rule: bucket 0 holds exactly the zeros).
fn expected_bucket(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(63)
}

fn record_all(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sequential conservation: count, sum, max and per-bucket membership
    /// all match a straight fold over the inputs.
    #[test]
    fn records_are_conserved(values in prop::collection::vec(any::<u64>(), 0..200)) {
        let s = record_all(&values);
        prop_assert_eq!(s.count(), values.len() as u64);
        prop_assert_eq!(s.sum, values.iter().fold(0u64, |a, &v| a.wrapping_add(v)));
        prop_assert_eq!(s.max, values.iter().copied().max().unwrap_or(0));
        let mut expected = [0u64; 64];
        for &v in &values {
            expected[expected_bucket(v)] += 1;
        }
        prop_assert_eq!(s.buckets, expected);
    }

    /// Quantiles are monotone in `q`, bounded by the recorded max, and at
    /// least the crossing bucket's lower bound — for any input.
    #[test]
    fn quantiles_are_monotone_and_bounded(
        values in prop::collection::vec(0u64..2_000_000, 1..200),
    ) {
        let s = record_all(&values);
        let mut prev = 0;
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let est = s.quantile(q);
            prop_assert!(est >= prev, "monotone at q={q}: {est} < {prev}");
            prop_assert!(est <= s.max, "q={q} estimate {est} above max {}", s.max);
            prev = est;
        }
        prop_assert_eq!(s.quantile(1.0), s.max, "top quantile is the exact max");
    }

    /// Sharded recording merges to exactly the single-histogram snapshot,
    /// for any assignment of values to shards.
    #[test]
    fn arbitrary_sharding_merges_to_the_whole(
        tagged in prop::collection::vec((0usize..5, any::<u64>()), 0..200),
    ) {
        let shards: Vec<Histogram> = (0..5).map(|_| Histogram::new()).collect();
        let one = Histogram::new();
        for &(shard, v) in &tagged {
            shards[shard].record(v);
            one.record(v);
        }
        let mut merged = HistogramSnapshot::default();
        for s in &shards {
            merged.merge(&s.snapshot());
        }
        prop_assert_eq!(merged, one.snapshot());
    }

    /// Concurrent conservation: the same multiset of values recorded from
    /// several threads at once yields the same snapshot as a sequential
    /// fold — nothing lost, duplicated, or re-bucketed by contention.
    #[test]
    fn concurrent_recording_conserves_the_distribution(
        per_thread in prop::collection::vec(
            prop::collection::vec(0u64..1_000_000, 0..50),
            1..5,
        ),
    ) {
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = per_thread
            .iter()
            .cloned()
            .map(|chunk| {
                let h = Arc::clone(&h);
                thread::spawn(move || {
                    for v in chunk {
                        h.record(v);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().expect("recorder thread panicked");
        }
        let all: Vec<u64> = per_thread.into_iter().flatten().collect();
        prop_assert_eq!(h.snapshot(), record_all(&all));
    }
}
