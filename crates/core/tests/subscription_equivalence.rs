//! Property test: a standing subscription's **pushed delta stream is
//! observationally identical to polling**. For random topologies and
//! arbitrary interleavings of churn (registers, renewing batches,
//! leaves, handovers, expiries) with subscribe/unsubscribe calls, a
//! client that applies every drained [`NeighborDelta`] to its initial
//! snapshot always holds exactly what a fresh `neighbors_of` re-poll
//! would answer — and the delivery queue drains to empty each round.
//!
//! Views compare as `(peer, dtree)` sets: the concatenated exact+fill
//! answer is not globally sorted, and deltas deliberately do not encode
//! ordering.
//!
//! [`NeighborDelta`]: nearpeer_core::subscription::NeighborDelta

use nearpeer_core::subscription::{NeighborDelta, Subscription};
use nearpeer_core::{CoreError, ManagementServer, Neighbor, PeerId, PeerPath, ServerConfig};
use nearpeer_topology::RouterId;
use proptest::prelude::*;
use std::collections::HashMap;

const LM_ROUTERS: [u32; 3] = [0, 1_000, 2_000];
const LM_DIST: [[u32; 3]; 3] = [[0, 3, 7], [3, 0, 4], [7, 4, 0]];

/// A join payload drawn by the fuzzer — same shape as the directory
/// equivalence suite: disjoint id ranges keep paths loop-free, a shared
/// mid pool makes paths cross, and `landmark % 4 == 3` draws an unknown
/// landmark (error-path parity).
#[derive(Debug, Clone, Copy)]
struct JoinSpec {
    peer: u8,
    landmark: u8,
    access: u16,
    mids: u64,
    depth: u8,
}

fn spec_path(s: JoinSpec) -> PeerPath {
    let lm_router = match s.landmark % 4 {
        0 => LM_ROUTERS[0],
        1 => LM_ROUTERS[1],
        2 => LM_ROUTERS[2],
        _ => 9_999,
    };
    let mut routers = vec![RouterId(50_000 + (s.access % 64) as u32)];
    let depth = (s.depth % 5) as usize;
    let mut pool: Vec<u32> = (100..140).collect();
    if s.mids % 3 == 0 {
        pool.extend(LM_ROUTERS.iter().copied().filter(|&r| r != lm_router));
    }
    let mut state = s.mids | 1;
    for _ in 0..depth {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let pick = (state >> 33) as usize % pool.len();
        routers.push(RouterId(pool.swap_remove(pick)));
    }
    routers.push(RouterId(lm_router));
    PeerPath::new(routers).expect("disjoint id ranges are loop-free")
}

#[derive(Debug, Clone)]
enum Op {
    Register(JoinSpec),
    RegisterBatchRenewing(Vec<JoinSpec>),
    Deregister {
        peer: u8,
    },
    LeaveBatch(Vec<u8>),
    Handover(JoinSpec),
    AdvanceEpoch,
    ExpireStaleBatch {
        max_age: u8,
    },
    Subscribe {
        peer: u8,
        k: u8,
    },
    Unsubscribe {
        peer: u8,
    },
    /// Close the delivery client (dropping every subscription and queued
    /// delta) and start over with a fresh one.
    ClientReset,
}

fn arb_spec() -> impl Strategy<Value = JoinSpec> {
    (
        any::<u8>(),
        any::<u8>(),
        any::<u16>(),
        any::<u64>(),
        any::<u8>(),
    )
        .prop_map(|(peer, landmark, access, mids, depth)| JoinSpec {
            peer: peer % 24,
            landmark,
            access,
            mids,
            depth,
        })
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_spec().prop_map(Op::Register),
        prop::collection::vec(arb_spec(), 1..7).prop_map(Op::RegisterBatchRenewing),
        any::<u8>().prop_map(|peer| Op::Deregister { peer: peer % 24 }),
        prop::collection::vec(any::<u8>(), 1..7)
            .prop_map(|ps| Op::LeaveBatch(ps.into_iter().map(|p| p % 24).collect())),
        arb_spec().prop_map(Op::Handover),
        Just(Op::AdvanceEpoch),
        any::<u8>().prop_map(|max_age| Op::ExpireStaleBatch {
            max_age: max_age % 4
        }),
        (any::<u8>(), 1u8..6).prop_map(|(peer, k)| Op::Subscribe { peer: peer % 24, k }),
        (any::<u8>(), 1u8..6).prop_map(|(peer, k)| Op::Subscribe { peer: peer % 24, k }),
        any::<u8>().prop_map(|peer| Op::Unsubscribe { peer: peer % 24 }),
        Just(Op::ClientReset),
    ]
}

/// The documented client contract: drop `removed`, then upsert `added`.
fn apply(view: &mut Vec<Neighbor>, d: &NeighborDelta) {
    view.retain(|n| !d.removed.contains(&n.peer));
    for a in &d.added {
        match view.iter_mut().find(|n| n.peer == a.peer) {
            Some(n) => n.dtree = a.dtree,
            None => view.push(*a),
        }
    }
}

fn as_set(mut v: Vec<Neighbor>) -> Vec<Neighbor> {
    v.sort_unstable_by_key(|n| n.peer);
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn delta_stream_equals_repolling(
        ops in prop::collection::vec(arb_op(), 1..70)
    ) {
        let mut server = ManagementServer::new(
            LM_ROUTERS.iter().map(|&r| RouterId(r)).collect(),
            LM_DIST.iter().map(|row| row.to_vec()).collect(),
            ServerConfig {
                neighbor_count: 4,
                cross_landmark_fallback: true,
                super_peers: None,
                adaptive_leases: None,
            },
        );
        let mut client = server.open_sub_client();
        // Tracked client state: subscription k + the delta-applied view.
        let mut views: HashMap<PeerId, (usize, Vec<Neighbor>)> = HashMap::new();
        let mut deltas: Vec<NeighborDelta> = Vec::new();

        for op in ops {
            match op {
                Op::Register(spec) => {
                    let _ = server.register(PeerId(spec.peer as u64), spec_path(spec));
                }
                Op::RegisterBatchRenewing(specs) => {
                    let batch: Vec<(PeerId, PeerPath)> = specs
                        .iter()
                        .map(|&s| (PeerId(s.peer as u64), spec_path(s)))
                        .collect();
                    server.register_batch_renewing(batch);
                }
                Op::Deregister { peer } => {
                    let _ = server.deregister(PeerId(peer as u64));
                }
                Op::LeaveBatch(peers) => {
                    let ids: Vec<PeerId> = peers.iter().map(|&p| PeerId(p as u64)).collect();
                    server.leave_batch(&ids);
                }
                Op::Handover(spec) => {
                    let _ = server.handover(PeerId(spec.peer as u64), spec_path(spec));
                }
                Op::AdvanceEpoch => {
                    server.advance_epoch();
                }
                Op::ExpireStaleBatch { max_age } => {
                    server.expire_stale_batch(max_age as u64);
                }
                Op::Subscribe { peer, k } => {
                    let peer = PeerId(peer as u64);
                    match server.subscribe(
                        client,
                        Subscription { peer, k: k as usize, min_interval_ms: 0 },
                    ) {
                        Ok(initial) => {
                            views.insert(peer, (k as usize, initial));
                        }
                        Err(CoreError::UnknownPeer(p)) => {
                            prop_assert_eq!(p, peer);
                            prop_assert!(
                                server.path_of(peer).is_none(),
                                "subscribe refused a registered peer"
                            );
                        }
                        Err(e) => prop_assert!(false, "unexpected subscribe error: {}", e),
                    }
                }
                Op::Unsubscribe { peer } => {
                    let peer = PeerId(peer as u64);
                    let existed = server.unsubscribe(peer);
                    prop_assert_eq!(existed, views.remove(&peer).is_some());
                }
                Op::ClientReset => {
                    server.close_sub_client(client);
                    views.clear();
                    client = server.open_sub_client();
                }
            }

            // A subscription dies with its peer's registration (handover
            // keeps both alive; the re-path is pushed as a delta).
            views.retain(|&p, _| server.path_of(p).is_some());
            prop_assert_eq!(
                server.subscription_stats().active,
                views.len() as u64,
                "registry and client disagree on live subscriptions"
            );

            // Drain everything (interval 0 = always eligible), apply, and
            // compare every live view against a fresh re-poll.
            deltas.clear();
            server.drain_deltas(client, usize::MAX, &mut deltas);
            for d in &deltas {
                let (_, view) = views
                    .get_mut(&d.peer)
                    .expect("deltas only reach live subscriptions");
                apply(view, d);
            }
            prop_assert_eq!(server.subscription_stats().queue_depth, 0);
            for (&peer, (k, view)) in &views {
                let want = server.neighbors_of(peer, *k).expect("subscriber is registered");
                prop_assert_eq!(
                    as_set(view.clone()),
                    as_set(want),
                    "view of {:?} diverged from re-poll",
                    peer
                );
            }
        }
    }
}
