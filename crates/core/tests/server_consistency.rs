//! Property test: the management server stays internally consistent under
//! arbitrary interleavings of register / deregister / handover / heartbeat
//! / expiry operations.

use nearpeer_core::{
    CoreError, LandmarkId, ManagementServer, PeerId, PeerPath, ServerConfig, SuperPeerConfig,
};
use nearpeer_topology::RouterId;
use proptest::prelude::*;
use std::collections::HashMap;

/// The operations the fuzzer interleaves.
#[derive(Debug, Clone)]
enum Op {
    Register { peer: u8, leaf: u64 },
    Deregister { peer: u8 },
    Handover { peer: u8, leaf: u64 },
    Heartbeat { peer: u8 },
    AdvanceEpoch,
    ExpireStale { max_age: u8 },
    Query { peer: u8, k: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u64>()).prop_map(|(peer, leaf)| Op::Register { peer, leaf }),
        any::<u8>().prop_map(|peer| Op::Deregister { peer }),
        (any::<u8>(), any::<u64>()).prop_map(|(peer, leaf)| Op::Handover { peer, leaf }),
        any::<u8>().prop_map(|peer| Op::Heartbeat { peer }),
        Just(Op::AdvanceEpoch),
        any::<u8>().prop_map(|max_age| Op::ExpireStale {
            max_age: max_age % 8
        }),
        (any::<u8>(), 1u8..8).prop_map(|(peer, k)| Op::Query { peer, k }),
    ]
}

/// Tree-consistent path towards landmark router 0 (two landmark system:
/// roots 0 and 1_000_000), derived from a leaf id.
fn path_for(peer: u8, leaf: u64) -> PeerPath {
    let landmark = if leaf % 3 == 0 { 1_000_000u32 } else { 0 };
    let mut routers = vec![RouterId(2_000_000 + peer as u32)]; // unique access
    for level in (0..5u32).rev() {
        let prefix = (leaf % 3u64.pow(level)) as u32;
        routers.push(RouterId(landmark + 10 + level * 100_000 + prefix));
    }
    routers.push(RouterId(landmark));
    PeerPath::new(routers).expect("distinct by construction")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn server_never_desyncs(ops in prop::collection::vec(arb_op(), 1..120)) {
        let mut server = ManagementServer::new(
            vec![RouterId(0), RouterId(1_000_000)],
            vec![vec![0, 7], vec![7, 0]],
            ServerConfig {
                neighbor_count: 4,
                cross_landmark_fallback: true,
                super_peers: Some(SuperPeerConfig {
                    region_depth: 2,
                    promote_threshold: 3,
                }),
                adaptive_leases: None,
            },
        );
        // Reference model: the set of currently registered peers.
        let mut model: HashMap<PeerId, PeerPath> = HashMap::new();

        for op in ops {
            match op {
                Op::Register { peer, leaf } => {
                    let peer = PeerId(peer as u64);
                    let path = path_for(peer.0 as u8, leaf);
                    match server.register(peer, path.clone()) {
                        Ok(out) => {
                            prop_assert!(!model.contains_key(&peer));
                            prop_assert!(out.neighbors.iter().all(|n| n.peer != peer));
                            prop_assert!(out
                                .neighbors
                                .iter()
                                .all(|n| model.contains_key(&n.peer)));
                            model.insert(peer, path);
                        }
                        Err(CoreError::DuplicatePeer(_)) => {
                            prop_assert!(model.contains_key(&peer));
                        }
                        Err(e) => prop_assert!(false, "unexpected error {}", e),
                    }
                }
                Op::Deregister { peer } => {
                    let peer = PeerId(peer as u64);
                    match server.deregister(peer) {
                        Ok(()) => {
                            prop_assert!(model.remove(&peer).is_some());
                        }
                        Err(CoreError::UnknownPeer(_)) => {
                            prop_assert!(!model.contains_key(&peer));
                        }
                        Err(e) => prop_assert!(false, "unexpected error {}", e),
                    }
                }
                Op::Handover { peer, leaf } => {
                    let peer = PeerId(peer as u64);
                    let path = path_for(peer.0 as u8, leaf);
                    match server.handover(peer, path.clone()) {
                        Ok(_) => {
                            prop_assert!(model.contains_key(&peer));
                            model.insert(peer, path);
                        }
                        Err(CoreError::UnknownPeer(_)) => {
                            prop_assert!(!model.contains_key(&peer));
                        }
                        Err(e) => prop_assert!(false, "unexpected error {}", e),
                    }
                }
                Op::Heartbeat { peer } => {
                    let peer = PeerId(peer as u64);
                    let res = server.heartbeat(peer);
                    prop_assert_eq!(res.is_ok(), model.contains_key(&peer));
                }
                Op::AdvanceEpoch => {
                    server.advance_epoch();
                }
                Op::ExpireStale { max_age } => {
                    for peer in server.expire_stale(max_age as u64) {
                        prop_assert!(model.remove(&peer).is_some());
                    }
                }
                Op::Query { peer, k } => {
                    let peer = PeerId(peer as u64);
                    match server.neighbors_of(peer, k as usize) {
                        Ok(neighbors) => {
                            prop_assert!(model.contains_key(&peer));
                            prop_assert!(neighbors.len() <= k as usize);
                            // Every answer is a live registered peer.
                            for n in &neighbors {
                                prop_assert!(n.peer != peer);
                                prop_assert!(model.contains_key(&n.peer));
                            }
                            // dtree values are non-decreasing within the
                            // same-landmark prefix of the answer.
                            let own = server.landmark_of(peer);
                            let same_lm: Vec<u32> = neighbors
                                .iter()
                                .filter(|n| server.landmark_of(n.peer) == own)
                                .map(|n| n.dtree)
                                .collect();
                            prop_assert!(
                                same_lm.windows(2).all(|w| w[0] <= w[1]),
                                "unsorted dtree {:?}",
                                same_lm
                            );
                        }
                        Err(CoreError::UnknownPeer(_)) => {
                            prop_assert!(!model.contains_key(&peer));
                        }
                        Err(e) => prop_assert!(false, "unexpected error {}", e),
                    }
                }
            }

            // Global invariants after every operation.
            prop_assert_eq!(server.peer_count(), model.len());
            let tree_total: usize = (0..2)
                .map(|i| server.tree(LandmarkId(i)).unwrap().n_peers())
                .sum();
            prop_assert_eq!(tree_total, model.len());
            for (&peer, path) in &model {
                prop_assert_eq!(server.path_of(peer), Some(path));
                let lm = server.landmark_of(peer).expect("registered");
                prop_assert_eq!(
                    server.landmarks()[lm.index()],
                    path.landmark_router()
                );
            }
        }
    }
}
