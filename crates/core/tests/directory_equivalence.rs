//! Property test: the sharded directory behind [`ManagementServer`] is
//! observationally identical to a reference **single-shard** build — one
//! global [`RouterIndex`] plus per-landmark [`PathTree`]s, the pre-refactor
//! layout — for random topologies, arrival orders and operation
//! interleavings: `register`, `register_batch`, `deregister`, `handover`,
//! heartbeats and lease expiry all produce the same [`JoinOutcome`]s,
//! errors, neighbor answers and counters.

use nearpeer_core::{
    ChurnBatchOutcome, CoreError, JoinOutcome, LandmarkId, ManagementServer, Neighbor, PathTree,
    PeerId, PeerPath, RouterIndex, ServerConfig, SuperPeerConfig, SuperPeerDirectory,
};
use nearpeer_topology::RouterId;
use proptest::prelude::*;
use std::collections::{BinaryHeap, HashMap, HashSet};

const K: usize = 4;
const LM_ROUTERS: [u32; 3] = [0, 1_000, 2_000];
const LM_DIST: [[u32; 3]; 3] = [[0, 3, 7], [3, 0, 4], [7, 4, 0]];

/// The reference: the pre-refactor server layout — one global index over
/// every landmark's peers — re-implemented on the public data structures.
struct ReferenceServer {
    index: RouterIndex,
    trees: Vec<PathTree>,
    peer_landmark: HashMap<PeerId, LandmarkId>,
    super_peers: SuperPeerDirectory,
    last_seen: HashMap<PeerId, u64>,
    epoch: u64,
    joins: u64,
    leaves: u64,
    handovers: u64,
}

impl ReferenceServer {
    fn new(sp: SuperPeerConfig) -> Self {
        Self {
            index: RouterIndex::new(),
            trees: LM_ROUTERS
                .iter()
                .map(|&r| PathTree::new(RouterId(r)))
                .collect(),
            peer_landmark: HashMap::new(),
            super_peers: SuperPeerDirectory::new(sp),
            last_seen: HashMap::new(),
            epoch: 0,
            joins: 0,
            leaves: 0,
            handovers: 0,
        }
    }

    fn landmark_for(&self, path: &PeerPath) -> Result<LandmarkId, CoreError> {
        LM_ROUTERS
            .iter()
            .position(|&r| RouterId(r) == path.landmark_router())
            .map(|i| LandmarkId(i as u32))
            .ok_or_else(|| CoreError::UnknownLandmark(String::new()))
    }

    /// Seed-style query over the single global index, including the
    /// cross-landmark bridge fill.
    fn closest(&self, path: &PeerPath, k: usize, exclude: Option<PeerId>) -> Vec<Neighbor> {
        let excl: HashSet<PeerId> = exclude.into_iter().collect();
        let mut result = self.index.query_nearest(path, k, &excl);
        if result.len() < k {
            let Ok(own) = self.landmark_for(path) else {
                return result;
            };
            let missing = k - result.len();
            let have: HashSet<PeerId> = result.iter().map(|n| n.peer).collect();
            let query_depth = path.depth();
            let mut heap: BinaryHeap<std::cmp::Reverse<(u32, PeerId, usize)>> = BinaryHeap::new();
            // (base, cursor) per foreign landmark, like the facade: every
            // cursor entry shares base = query depth + bridge.
            type Cursor<'a> = (u32, Box<dyn Iterator<Item = (PeerId, u32)> + 'a>);
            let mut iters: Vec<Cursor<'_>> = Vec::new();
            for (li, &lrouter) in LM_ROUTERS.iter().enumerate() {
                if LandmarkId(li as u32) == own {
                    continue;
                }
                let base = query_depth + LM_DIST[own.index()][li];
                let mut iter = self.index.peers_through(RouterId(lrouter));
                if let Some((peer, depth)) = iter.next() {
                    let idx = iters.len();
                    heap.push(std::cmp::Reverse((base + depth, peer, idx)));
                    iters.push((base, Box::new(iter)));
                }
            }
            let mut emitted: HashSet<PeerId> = HashSet::new();
            let mut fill = Vec::with_capacity(missing);
            while let Some(std::cmp::Reverse((est, peer, idx))) = heap.pop() {
                let (base, iter) = &mut iters[idx];
                if let Some((next_peer, depth)) = iter.next() {
                    heap.push(std::cmp::Reverse((*base + depth, next_peer, idx)));
                }
                if excl.contains(&peer) || have.contains(&peer) || !emitted.insert(peer) {
                    continue;
                }
                fill.push(Neighbor { peer, dtree: est });
                if fill.len() == missing {
                    break;
                }
            }
            result.extend(fill);
        }
        result
    }

    fn register(&mut self, peer: PeerId, path: PeerPath) -> Result<JoinOutcome, CoreError> {
        let landmark = self.landmark_for(&path)?;
        self.index.insert(peer, path.clone())?;
        self.trees[landmark.index()].insert(peer, &path);
        self.peer_landmark.insert(peer, landmark);
        let delegate = self.super_peers.super_peer_for(&path);
        self.super_peers.on_register(peer, &path);
        self.last_seen.insert(peer, self.epoch);
        self.joins += 1;
        let neighbors = self.closest(&path, K, Some(peer));
        Ok(JoinOutcome {
            landmark,
            neighbors,
            delegate,
        })
    }

    /// Mirrors the documented two-phase batch semantics: validate and
    /// insert everything, then answer against the complete batch.
    fn register_batch(
        &mut self,
        batch: Vec<(PeerId, PeerPath)>,
    ) -> Vec<Result<JoinOutcome, CoreError>> {
        let mut results: Vec<Option<Result<JoinOutcome, CoreError>>> =
            (0..batch.len()).map(|_| None).collect();
        let mut accepted: Vec<(usize, PeerId, PeerPath, LandmarkId)> = Vec::new();
        let mut in_batch: HashSet<PeerId> = HashSet::new();
        for (i, (peer, path)) in batch.into_iter().enumerate() {
            match self.landmark_for(&path) {
                Err(e) => results[i] = Some(Err(e)),
                Ok(lm) => {
                    if self.index.contains(peer) || !in_batch.insert(peer) {
                        results[i] = Some(Err(CoreError::DuplicatePeer(peer)));
                    } else {
                        accepted.push((i, peer, path, lm));
                    }
                }
            }
        }
        for (_, peer, path, lm) in &accepted {
            self.index.insert(*peer, path.clone()).expect("validated");
            self.trees[lm.index()].insert(*peer, path);
            self.peer_landmark.insert(*peer, *lm);
            self.last_seen.insert(*peer, self.epoch);
            self.joins += 1;
        }
        for (_, peer, path, _) in &accepted {
            self.super_peers.on_register(*peer, path);
        }
        for (i, peer, path, landmark) in accepted {
            let delegate = self
                .super_peers
                .super_peer_for(&path)
                .filter(|&d| d != peer);
            let neighbors = self.closest(&path, K, Some(peer));
            results[i] = Some(Ok(JoinOutcome {
                landmark,
                neighbors,
                delegate,
            }));
        }
        results.into_iter().map(|r| r.expect("decided")).collect()
    }

    fn deregister(&mut self, peer: PeerId) -> Result<(), CoreError> {
        if self.index.remove(peer).is_none() {
            return Err(CoreError::UnknownPeer(peer));
        }
        if let Some(lm) = self.peer_landmark.remove(&peer) {
            self.trees[lm.index()].remove(peer);
        }
        self.super_peers.on_deregister(peer);
        self.last_seen.remove(&peer);
        self.leaves += 1;
        Ok(())
    }

    fn handover(&mut self, peer: PeerId, new_path: PeerPath) -> Result<JoinOutcome, CoreError> {
        if !self.index.contains(peer) {
            return Err(CoreError::UnknownPeer(peer));
        }
        self.landmark_for(&new_path)?;
        self.deregister(peer)?;
        let out = self.register(peer, new_path)?;
        self.joins -= 1;
        self.leaves -= 1;
        self.handovers += 1;
        Ok(out)
    }

    fn heartbeat(&mut self, peer: PeerId) -> Result<(), CoreError> {
        if !self.index.contains(peer) {
            return Err(CoreError::UnknownPeer(peer));
        }
        self.last_seen.insert(peer, self.epoch);
        Ok(())
    }

    /// Mirrors the facade's batched churn absorption: renew same-landmark
    /// rejoins, reject cross-landmark moves and unknown landmarks, insert
    /// the fresh remainder (no neighbor answers).
    fn register_batch_renewing(&mut self, batch: Vec<(PeerId, PeerPath)>) -> ChurnBatchOutcome {
        let mut out = ChurnBatchOutcome::default();
        let mut fresh: Vec<(PeerId, PeerPath)> = Vec::new();
        let mut fresh_landmark: HashMap<PeerId, LandmarkId> = HashMap::new();
        for (peer, path) in batch {
            let Ok(lm) = self.landmark_for(&path) else {
                out.rejected += 1;
                continue;
            };
            let registered = self.peer_landmark.get(&peer).copied();
            let pending = fresh_landmark.get(&peer).copied();
            match registered.or(pending) {
                Some(existing) if existing == lm => {
                    if registered.is_some() {
                        self.last_seen.insert(peer, self.epoch);
                    }
                    out.renewed += 1;
                }
                Some(_) => out.rejected += 1,
                None => {
                    fresh_landmark.insert(peer, lm);
                    fresh.push((peer, path));
                }
            }
        }
        for (peer, path) in &fresh {
            let lm = fresh_landmark[peer];
            self.index.insert(*peer, path.clone()).expect("validated");
            self.trees[lm.index()].insert(*peer, path);
            self.peer_landmark.insert(*peer, lm);
            self.last_seen.insert(*peer, self.epoch);
            self.joins += 1;
            out.joined += 1;
        }
        for (peer, path) in &fresh {
            self.super_peers.on_register(*peer, path);
        }
        out
    }

    fn renew_batch(&mut self, peers: &[PeerId]) -> usize {
        peers.iter().filter(|&&p| self.heartbeat(p).is_ok()).count()
    }

    fn leave_batch(&mut self, peers: &[PeerId]) -> usize {
        peers
            .iter()
            .filter(|&&p| self.deregister(p).is_ok())
            .count()
    }

    fn expire_stale(&mut self, max_age: u64) -> Vec<PeerId> {
        let cutoff = self.epoch.saturating_sub(max_age);
        let mut stale: Vec<PeerId> = self
            .last_seen
            .iter()
            .filter(|&(_, &seen)| seen < cutoff)
            .map(|(&p, _)| p)
            .collect();
        stale.sort_unstable();
        for &p in &stale {
            let _ = self.deregister(p);
        }
        stale
    }
}

/// A join payload drawn by the fuzzer. Paths are built from three disjoint
/// id ranges (access 50k+, mids 100..140, landmarks) so they are loop-free
/// by construction; the shared mid pool makes paths from *different*
/// landmarks cross at common routers, exercising cross-shard meetings and
/// bridge fills hard.
#[derive(Debug, Clone, Copy)]
struct JoinSpec {
    peer: u8,
    landmark: u8,
    access: u16,
    mids: u64,
    depth: u8,
}

fn spec_path(s: JoinSpec) -> PeerPath {
    // landmark % 4 == 3 → unknown landmark router (error-path parity).
    let lm_router = match s.landmark % 4 {
        0 => LM_ROUTERS[0],
        1 => LM_ROUTERS[1],
        2 => LM_ROUTERS[2],
        _ => 9_999,
    };
    let mut routers = vec![RouterId(50_000 + (s.access % 64) as u32)];
    let depth = (s.depth % 5) as usize;
    // Sample `depth` distinct mids from the shared pool, seeded by `mids`.
    // Some of the time the pool also offers *foreign landmark routers*, so
    // paths legally traverse another landmark mid-way — the case the
    // bridge-fill cursors must estimate with the depth below that router,
    // not the peer's full path depth.
    let mut pool: Vec<u32> = (100..140).collect();
    if s.mids % 3 == 0 {
        pool.extend(LM_ROUTERS.iter().copied().filter(|&r| r != lm_router));
    }
    let mut state = s.mids | 1;
    for _ in 0..depth {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let pick = (state >> 33) as usize % pool.len();
        routers.push(RouterId(pool.swap_remove(pick)));
    }
    routers.push(RouterId(lm_router));
    PeerPath::new(routers).expect("disjoint id ranges are loop-free")
}

#[derive(Debug, Clone)]
enum Op {
    Register(JoinSpec),
    RegisterBatch(Vec<JoinSpec>),
    RegisterBatchRenewing(Vec<JoinSpec>),
    Deregister { peer: u8 },
    LeaveBatch(Vec<u8>),
    Handover(JoinSpec),
    Heartbeat { peer: u8 },
    RenewBatch(Vec<u8>),
    AdvanceEpoch,
    ExpireStale { max_age: u8 },
    ExpireStaleBatch { max_age: u8 },
    Query { peer: u8, k: u8 },
}

fn arb_spec() -> impl Strategy<Value = JoinSpec> {
    (
        any::<u8>(),
        any::<u8>(),
        any::<u16>(),
        any::<u64>(),
        any::<u8>(),
    )
        .prop_map(|(peer, landmark, access, mids, depth)| JoinSpec {
            peer: peer % 24,
            landmark,
            access,
            mids,
            depth,
        })
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_spec().prop_map(Op::Register),
        prop::collection::vec(arb_spec(), 1..7).prop_map(Op::RegisterBatch),
        prop::collection::vec(arb_spec(), 1..7).prop_map(Op::RegisterBatchRenewing),
        any::<u8>().prop_map(|peer| Op::Deregister { peer: peer % 24 }),
        prop::collection::vec(any::<u8>(), 1..7)
            .prop_map(|ps| Op::LeaveBatch(ps.into_iter().map(|p| p % 24).collect())),
        arb_spec().prop_map(Op::Handover),
        any::<u8>().prop_map(|peer| Op::Heartbeat { peer: peer % 24 }),
        prop::collection::vec(any::<u8>(), 1..7)
            .prop_map(|ps| Op::RenewBatch(ps.into_iter().map(|p| p % 24).collect())),
        Just(Op::AdvanceEpoch),
        any::<u8>().prop_map(|max_age| Op::ExpireStale {
            max_age: max_age % 6
        }),
        any::<u8>().prop_map(|max_age| Op::ExpireStaleBatch {
            max_age: max_age % 6
        }),
        (any::<u8>(), 1u8..8).prop_map(|(peer, k)| Op::Query { peer: peer % 24, k }),
    ]
}

fn same_error(a: &CoreError, b: &CoreError) -> bool {
    matches!(
        (a, b),
        (CoreError::DuplicatePeer(x), CoreError::DuplicatePeer(y)) if x == y
    ) || matches!(
        (a, b),
        (CoreError::UnknownPeer(x), CoreError::UnknownPeer(y)) if x == y
    ) || matches!(
        (a, b),
        (CoreError::UnknownLandmark(_), CoreError::UnknownLandmark(_))
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sharded_server_equals_single_shard_reference(
        ops in prop::collection::vec(arb_op(), 1..80)
    ) {
        let sp = SuperPeerConfig { region_depth: 2, promote_threshold: 3 };
        let mut server = ManagementServer::new(
            LM_ROUTERS.iter().map(|&r| RouterId(r)).collect(),
            LM_DIST.iter().map(|row| row.to_vec()).collect(),
            ServerConfig {
                neighbor_count: K,
                cross_landmark_fallback: true,
                super_peers: Some(sp),
                adaptive_leases: None,
            },
        );
        let mut reference = ReferenceServer::new(sp);

        for op in ops {
            match op {
                Op::Register(spec) => {
                    let peer = PeerId(spec.peer as u64);
                    let path = spec_path(spec);
                    let got = server.register(peer, path.clone());
                    let want = reference.register(peer, path);
                    match (&got, &want) {
                        (Ok(g), Ok(w)) => prop_assert_eq!(g, w),
                        (Err(g), Err(w)) => prop_assert!(same_error(g, w), "{} vs {}", g, w),
                        _ => prop_assert!(false, "diverged: {:?} vs {:?}", got, want),
                    }
                }
                Op::RegisterBatch(specs) => {
                    let batch: Vec<(PeerId, PeerPath)> = specs
                        .iter()
                        .map(|&s| (PeerId(s.peer as u64), spec_path(s)))
                        .collect();
                    let got = server.register_batch(batch.clone());
                    let want = reference.register_batch(batch);
                    prop_assert_eq!(got.len(), want.len());
                    for (g, w) in got.iter().zip(&want) {
                        match (g, w) {
                            (Ok(g), Ok(w)) => prop_assert_eq!(g, w),
                            (Err(g), Err(w)) => prop_assert!(same_error(g, w), "{} vs {}", g, w),
                            _ => prop_assert!(false, "diverged: {:?} vs {:?}", g, w),
                        }
                    }
                }
                Op::RegisterBatchRenewing(specs) => {
                    let batch: Vec<(PeerId, PeerPath)> = specs
                        .iter()
                        .map(|&s| (PeerId(s.peer as u64), spec_path(s)))
                        .collect();
                    prop_assert_eq!(
                        server.register_batch_renewing(batch.clone()),
                        reference.register_batch_renewing(batch)
                    );
                }
                Op::Deregister { peer } => {
                    let peer = PeerId(peer as u64);
                    let got = server.deregister(peer);
                    let want = reference.deregister(peer);
                    prop_assert_eq!(got.is_ok(), want.is_ok());
                }
                Op::LeaveBatch(peers) => {
                    let ids: Vec<PeerId> = peers.iter().map(|&p| PeerId(p as u64)).collect();
                    prop_assert_eq!(server.leave_batch(&ids), reference.leave_batch(&ids));
                }
                Op::Handover(spec) => {
                    let peer = PeerId(spec.peer as u64);
                    let path = spec_path(spec);
                    let got = server.handover(peer, path.clone());
                    let want = reference.handover(peer, path);
                    match (&got, &want) {
                        (Ok(g), Ok(w)) => prop_assert_eq!(g, w),
                        (Err(g), Err(w)) => prop_assert!(same_error(g, w), "{} vs {}", g, w),
                        _ => prop_assert!(false, "diverged: {:?} vs {:?}", got, want),
                    }
                }
                Op::Heartbeat { peer } => {
                    let peer = PeerId(peer as u64);
                    prop_assert_eq!(
                        server.heartbeat(peer).is_ok(),
                        reference.heartbeat(peer).is_ok()
                    );
                }
                Op::RenewBatch(peers) => {
                    let ids: Vec<PeerId> = peers.iter().map(|&p| PeerId(p as u64)).collect();
                    prop_assert_eq!(server.renew_batch(&ids), reference.renew_batch(&ids));
                }
                Op::AdvanceEpoch => {
                    server.advance_epoch();
                    reference.epoch += 1;
                }
                Op::ExpireStale { max_age } => {
                    prop_assert_eq!(
                        server.expire_stale(max_age as u64),
                        reference.expire_stale(max_age as u64)
                    );
                }
                Op::ExpireStaleBatch { max_age } => {
                    prop_assert_eq!(
                        server.expire_stale_batch(max_age as u64),
                        reference.expire_stale(max_age as u64)
                    );
                }
                Op::Query { peer, k } => {
                    let peer = PeerId(peer as u64);
                    let got = server.neighbors_of(peer, k as usize);
                    match (got, reference.index.path_of(peer).cloned()) {
                        (Ok(neigh), Some(path)) => {
                            prop_assert_eq!(
                                neigh,
                                reference.closest(&path, k as usize, Some(peer))
                            );
                        }
                        (Err(CoreError::UnknownPeer(_)), None) => {}
                        (got, path) => prop_assert!(
                            false,
                            "diverged: {:?} vs reference path {:?}",
                            got,
                            path
                        ),
                    }
                }
            }

            // Cross-cutting invariants after every operation.
            prop_assert_eq!(server.peer_count(), reference.index.len());
            prop_assert_eq!(server.index().n_routers(), reference.index.n_routers());
            for p in 0..24u64 {
                let peer = PeerId(p);
                prop_assert_eq!(
                    server.landmark_of(peer),
                    reference.peer_landmark.get(&peer).copied()
                );
                prop_assert_eq!(server.path_of(peer), reference.index.path_of(peer));
                // Lease parity: the slab arena's last-seen epoch matches
                // the reference's per-peer map.
                prop_assert_eq!(
                    server.shards().iter().find_map(|s| s.last_seen(peer)),
                    reference.last_seen.get(&peer).copied()
                );
            }
            for (li, tree) in reference.trees.iter().enumerate() {
                let shard_tree = server.tree(LandmarkId(li as u32)).expect("landmark exists");
                prop_assert_eq!(shard_tree.n_peers(), tree.n_peers());
                prop_assert_eq!(shard_tree.n_nodes(), tree.n_nodes());
                prop_assert_eq!(shard_tree.inconsistencies(), tree.inconsistencies());
            }
        }

        // Counter parity at the end of the run.
        let stats = server.stats();
        prop_assert_eq!(stats.joins, reference.joins);
        prop_assert_eq!(stats.leaves, reference.leaves);
        prop_assert_eq!(stats.handovers, reference.handovers);
        prop_assert_eq!(
            server.super_peer_directory().unwrap().n_super_peers(),
            reference.super_peers.n_super_peers()
        );
    }
}
