//! Property test: the slab-backed [`LeaseArena`] is observationally
//! identical to a naive `HashMap` reference model under arbitrary
//! interleavings of register/renew/leave/expire — and slot reuse never
//! resurrects a departed peer: every generational handle issued before a
//! removal must resolve to `None` forever after, even once the slot is
//! occupied by someone else.

use nearpeer_core::{LeaseArena, PeerId, PeerSlot};
use proptest::prelude::*;
use std::collections::HashMap;

/// The reference: one `HashMap` from peer to `(payload, last_seen)` plus
/// a monotone epoch — the pre-refactor layout, minus the path machinery.
#[derive(Default)]
struct ModelTable {
    leases: HashMap<u64, (u32, u64)>,
    epoch: u64,
}

impl ModelTable {
    fn insert(&mut self, peer: u64, value: u32) -> bool {
        if self.leases.contains_key(&peer) {
            return false;
        }
        self.leases.insert(peer, (value, self.epoch));
        true
    }

    fn renew(&mut self, peer: u64) -> bool {
        match self.leases.get_mut(&peer) {
            Some((_, seen)) => {
                *seen = self.epoch;
                true
            }
            None => false,
        }
    }

    fn remove(&mut self, peer: u64) -> Option<u32> {
        self.leases.remove(&peer).map(|(v, _)| v)
    }

    fn expire(&mut self, max_age: u64) -> Vec<(u64, u32)> {
        let cutoff = self.epoch.saturating_sub(max_age);
        let mut expired: Vec<(u64, u32)> = self
            .leases
            .iter()
            .filter(|&(_, &(_, seen))| seen < cutoff)
            .map(|(&p, &(v, _))| (p, v))
            .collect();
        expired.sort_unstable();
        for &(p, _) in &expired {
            self.leases.remove(&p);
        }
        expired
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert { peer: u8, value: u32 },
    Renew { peer: u8 },
    Remove { peer: u8 },
    AdvanceEpoch,
    Expire { max_age: u8 },
}

const PEERS: u64 = 20;

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u32>()).prop_map(|(peer, value)| Op::Insert {
            peer: peer % PEERS as u8,
            value
        }),
        any::<u8>().prop_map(|peer| Op::Renew {
            peer: peer % PEERS as u8
        }),
        any::<u8>().prop_map(|peer| Op::Remove {
            peer: peer % PEERS as u8
        }),
        Just(Op::AdvanceEpoch),
        any::<u8>().prop_map(|max_age| Op::Expire {
            max_age: max_age % 5
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn slab_arena_equals_hashmap_model(
        ops in prop::collection::vec(arb_op(), 1..120)
    ) {
        let mut arena: LeaseArena<u32> = LeaseArena::new();
        let mut model = ModelTable::default();
        // Handles whose lease has been closed (by remove or expiry): they
        // must stay dead for the rest of the run, whatever reuses the slot.
        let mut retired: Vec<(PeerSlot, u64)> = Vec::new();
        let mut current: HashMap<u64, PeerSlot> = HashMap::new();

        for op in ops {
            match op {
                Op::Insert { peer, value } => {
                    let peer = peer as u64;
                    let got = arena.insert(PeerId(peer), value, model.epoch);
                    let want = model.insert(peer, value);
                    prop_assert_eq!(got.is_some(), want, "insert {}", peer);
                    if let Some(handle) = got {
                        current.insert(peer, handle);
                    }
                }
                Op::Renew { peer } => {
                    let peer = peer as u64;
                    prop_assert_eq!(
                        arena.renew(PeerId(peer), model.epoch),
                        model.renew(peer),
                        "renew {}", peer
                    );
                }
                Op::Remove { peer } => {
                    let peer = peer as u64;
                    prop_assert_eq!(
                        arena.remove(PeerId(peer)),
                        model.remove(peer),
                        "remove {}", peer
                    );
                    if let Some(handle) = current.remove(&peer) {
                        retired.push((handle, peer));
                    }
                }
                Op::AdvanceEpoch => {
                    model.epoch += 1;
                }
                Op::Expire { max_age } => {
                    let want = model.expire(max_age as u64);
                    let cutoff = model.epoch.saturating_sub(max_age as u64);
                    let got: Vec<(u64, u32)> = arena
                        .take_expired(cutoff)
                        .into_iter()
                        .map(|(p, v)| (p.0, v))
                        .collect();
                    prop_assert_eq!(&got, &want, "expire at cutoff {}", cutoff);
                    for &(p, _) in &want {
                        let handle = current.remove(&p).expect("expired peers were current");
                        retired.push((handle, p));
                    }
                }
            }

            // The arena matches the model after every operation.
            prop_assert_eq!(arena.len(), model.leases.len());
            prop_assert_eq!(arena.is_empty(), model.leases.is_empty());
            for p in 0..PEERS {
                let peer = PeerId(p);
                let want = model.leases.get(&p);
                prop_assert_eq!(arena.contains(peer), want.is_some(), "contains {}", p);
                prop_assert_eq!(arena.get(peer), want.map(|(v, _)| v), "payload {}", p);
                prop_assert_eq!(
                    arena.last_seen(peer),
                    want.map(|&(_, seen)| seen),
                    "last_seen {}",
                    p
                );
                // The live handle round-trips to the same lease.
                if let Some(handle) = arena.slot_of(peer) {
                    prop_assert_eq!(
                        arena.get_slot(handle),
                        want.map(|(v, _)| (peer, v)),
                        "handle of {}",
                        p
                    );
                }
            }
            // The read-only stale scan agrees with the model at an
            // arbitrary horizon.
            let mut scan = arena.stale(model.epoch);
            scan.sort_unstable();
            let mut want_scan: Vec<PeerId> = model
                .leases
                .iter()
                .filter(|&(_, &(_, seen))| seen < model.epoch)
                .map(|(&p, _)| PeerId(p))
                .collect();
            want_scan.sort_unstable();
            prop_assert_eq!(scan, want_scan);

            // Resurrection check: every retired handle stays dead, no
            // matter who reuses the slot.
            for &(handle, peer) in &retired {
                prop_assert_eq!(
                    arena.get_slot(handle),
                    None,
                    "slot {} gen {} resurrected departed peer {}",
                    handle.index(),
                    handle.generation(),
                    peer
                );
            }
        }
    }
}
