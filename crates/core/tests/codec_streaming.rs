//! Stream-reassembly tests for the wire codec: a TCP-like byte stream
//! arrives in arbitrary segmentation, and the decoder must produce exactly
//! the encoded message sequence regardless of where the cuts fall.

use bytes::BytesMut;
use nearpeer_core::codec::{decode, encode, CodecError};
use nearpeer_core::protocol::{Message, WireNeighbor};
use nearpeer_core::{PeerId, PeerPath};
use nearpeer_topology::RouterId;
use proptest::prelude::*;

fn sample_messages() -> Vec<Message> {
    let path = |ids: &[u32]| PeerPath::new(ids.iter().map(|&i| RouterId(i)).collect()).unwrap();
    vec![
        Message::ProbePing { nonce: 1 },
        Message::JoinRequest {
            peer: PeerId(1),
            path: path(&[9, 4, 0]),
        },
        Message::JoinReply {
            peer: PeerId(1),
            neighbors: vec![WireNeighbor {
                peer: PeerId(2),
                dtree: 3,
            }],
            delegate: None,
        },
        Message::Heartbeat { peer: PeerId(1) },
        Message::HandoverRequest {
            peer: PeerId(1),
            path: path(&[7, 5, 0]),
        },
        Message::Leave { peer: PeerId(1) },
        Message::Subscribe {
            nonce: 7,
            peer: PeerId(1),
            k: 5,
            min_interval_ms: 250,
        },
        Message::SubAck {
            nonce: 7,
            peer: PeerId(1),
            neighbors: vec![WireNeighbor {
                peer: PeerId(2),
                dtree: 3,
            }],
        },
        Message::DeltaPush {
            peer: PeerId(1),
            epoch: 12,
            class: 2,
            added: vec![WireNeighbor {
                peer: PeerId(4),
                dtree: 2,
            }],
            removed: vec![PeerId(2)],
        },
        Message::Unsubscribe {
            nonce: 8,
            peer: PeerId(1),
        },
        Message::StatsRequest { nonce: 9 },
        Message::StatsReply {
            nonce: 9,
            text: "dir_queries_total 3\ndir_query_latency_us_count 3\n".into(),
        },
    ]
}

/// Feeds `wire` to the decoder in segments of the given sizes (cycled),
/// returning every decoded message.
fn feed_in_segments(wire: &[u8], segment_sizes: &[usize]) -> Vec<Message> {
    let mut buf = BytesMut::new();
    let mut out = Vec::new();
    let mut sizes = segment_sizes.iter().copied().cycle();
    let mut pos = 0;
    while pos < wire.len() {
        let take = sizes.next().unwrap_or(1).clamp(1, wire.len() - pos);
        buf.extend_from_slice(&wire[pos..pos + take]);
        pos += take;
        loop {
            match decode(&mut buf) {
                Ok(msg) => out.push(msg),
                Err(CodecError::Incomplete) => break,
                Err(e) => panic!("unexpected decode error: {e}"),
            }
        }
    }
    out
}

#[test]
fn byte_at_a_time_reassembly() {
    let msgs = sample_messages();
    let mut wire = BytesMut::new();
    for m in &msgs {
        encode(m, &mut wire);
    }
    let decoded = feed_in_segments(&wire, &[1]);
    assert_eq!(decoded, msgs);
}

#[test]
fn odd_segment_sizes_reassembly() {
    let msgs = sample_messages();
    let mut wire = BytesMut::new();
    for m in &msgs {
        encode(m, &mut wire);
    }
    for sizes in [&[3usize, 7, 1][..], &[13][..], &[2, 31][..], &[64][..]] {
        let decoded = feed_in_segments(&wire, sizes);
        assert_eq!(decoded, msgs, "segmentation {sizes:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_segmentation_yields_the_same_stream(
        repeats in 1usize..5,
        sizes in prop::collection::vec(1usize..40, 1..8),
    ) {
        let mut msgs = Vec::new();
        for _ in 0..repeats {
            msgs.extend(sample_messages());
        }
        let mut wire = BytesMut::new();
        for m in &msgs {
            encode(m, &mut wire);
        }
        let decoded = feed_in_segments(&wire, &sizes);
        prop_assert_eq!(decoded, msgs);
    }

    #[test]
    fn interleaved_garbage_frames_resync(
        junk_kind in 100u8..255,
        sizes in prop::collection::vec(1usize..24, 1..6),
    ) {
        use bytes::BufMut;
        // good, junk, good — the decoder must error once and resync.
        let good = Message::Heartbeat { peer: PeerId(42) };
        let mut wire = BytesMut::new();
        encode(&good, &mut wire);
        wire.put_u32(2);
        wire.put_u8(nearpeer_core::codec::WIRE_VERSION);
        wire.put_u8(junk_kind); // unknown kind
        encode(&good, &mut wire);

        let mut buf = BytesMut::new();
        let mut decoded = Vec::new();
        let mut errors = 0;
        let mut cursor = 0;
        let mut size_iter = sizes.iter().copied().cycle();
        while cursor < wire.len() {
            let take = size_iter.next().unwrap().min(wire.len() - cursor);
            buf.extend_from_slice(&wire[cursor..cursor + take]);
            cursor += take;
            loop {
                match decode(&mut buf) {
                    Ok(m) => decoded.push(m),
                    Err(CodecError::Incomplete) => break,
                    Err(_) => errors += 1,
                }
            }
        }
        prop_assert_eq!(decoded.len(), 2);
        prop_assert_eq!(errors, 1);
    }
}
