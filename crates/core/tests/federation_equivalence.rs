//! Property test: an N-region [`Federation`] with full fan-out is
//! observationally identical to **one big management server** holding all
//! landmarks — for random operation interleavings over `register`,
//! write-only batches, `handover` (intra- and cross-region, with
//! forwarding tombstones), departures, heartbeat renewal and lease
//! expiry: every answer, error, count and stored path must match.
//!
//! One documented precondition: peers' paths never traverse another
//! *region's* landmark router mid-path (real traced paths terminate at
//! their landmark; the generator's mid-router pool is disjoint from the
//! landmark id range). Shared mid routers between landmarks — the case
//! that makes *exact* answers cross regions — are generated aggressively.

use nearpeer_core::federation::{Federation, FederationConfig};
use nearpeer_core::{
    CoreError, LandmarkId, ManagementServer, PeerId, PeerPath, RegionId, ServerConfig,
};
use nearpeer_topology::RouterId;
use proptest::prelude::*;

const K: usize = 4;
const LM_ROUTERS: [u32; 4] = [0, 1_000, 2_000, 3_000];
const LM_DIST: [[u32; 4]; 4] = [[0, 3, 7, 5], [3, 0, 4, 9], [7, 4, 0, 6], [5, 9, 6, 0]];

fn server_config() -> ServerConfig {
    ServerConfig {
        neighbor_count: K,
        cross_landmark_fallback: true,
        super_peers: None,
        adaptive_leases: None,
    }
}

fn reference() -> ManagementServer {
    ManagementServer::new(
        LM_ROUTERS.iter().map(|&r| RouterId(r)).collect(),
        LM_DIST.iter().map(|row| row.to_vec()).collect(),
        server_config(),
    )
}

fn federation(n_regions: usize) -> Federation {
    Federation::new(
        LM_ROUTERS.iter().map(|&r| RouterId(r)).collect(),
        LM_DIST.iter().map(|row| row.to_vec()).collect(),
        n_regions,
        FederationConfig {
            fanout: None,
            server: server_config(),
        },
    )
    .expect("valid federation")
}

/// The federation's view of a peer's **global** landmark.
fn fed_landmark_of(fed: &Federation, peer: PeerId) -> Option<LandmarkId> {
    let (region, _) = fed.locate(peer)?;
    let local = fed.region(region).server().landmark_of(peer)?;
    Some(fed.region(region).to_global(local))
}

/// A join payload drawn by the fuzzer. Mid routers come from a shared
/// pool disjoint from every landmark router, so paths from different
/// landmarks (and regions) cross at common routers — exercising
/// cross-region exact answers — without ever traversing a foreign
/// landmark router (the documented precondition).
#[derive(Debug, Clone, Copy)]
struct JoinSpec {
    peer: u8,
    landmark: u8,
    access: u16,
    mids: u64,
    depth: u8,
}

fn spec_path(s: JoinSpec) -> PeerPath {
    // landmark % 5 == 4 → unknown landmark router (error-path parity).
    let lm_router = match s.landmark % 5 {
        i @ 0..=3 => LM_ROUTERS[i as usize],
        _ => 9_999,
    };
    let mut routers = vec![RouterId(50_000 + (s.access % 64) as u32)];
    let depth = (s.depth % 5) as usize;
    let mut pool: Vec<u32> = (100..140).collect();
    let mut state = s.mids | 1;
    for _ in 0..depth {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let pick = (state >> 33) as usize % pool.len();
        routers.push(RouterId(pool.swap_remove(pick)));
    }
    routers.push(RouterId(lm_router));
    PeerPath::new(routers).expect("disjoint id ranges are loop-free")
}

#[derive(Debug, Clone)]
enum Op {
    Register(JoinSpec),
    RegisterBatch(Vec<JoinSpec>),
    Handover(JoinSpec),
    LeaveBatch(Vec<u8>),
    RenewBatch(Vec<u8>),
    AdvanceEpoch,
    Expire { max_age: u8 },
    Query { peer: u8, k: u8 },
}

fn arb_spec() -> impl Strategy<Value = JoinSpec> {
    (
        any::<u8>(),
        any::<u8>(),
        any::<u16>(),
        any::<u64>(),
        any::<u8>(),
    )
        .prop_map(|(peer, landmark, access, mids, depth)| JoinSpec {
            peer: peer % 16,
            landmark,
            access,
            mids,
            depth,
        })
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_spec().prop_map(Op::Register),
        prop::collection::vec(arb_spec(), 1..6).prop_map(Op::RegisterBatch),
        arb_spec().prop_map(Op::Handover),
        prop::collection::vec(any::<u8>(), 1..6)
            .prop_map(|ps| Op::LeaveBatch(ps.into_iter().map(|p| p % 16).collect())),
        prop::collection::vec(any::<u8>(), 1..6)
            .prop_map(|ps| Op::RenewBatch(ps.into_iter().map(|p| p % 16).collect())),
        Just(Op::AdvanceEpoch),
        any::<u8>().prop_map(|max_age| Op::Expire {
            max_age: max_age % 6
        }),
        (any::<u8>(), 1u8..8).prop_map(|(peer, k)| Op::Query { peer: peer % 16, k }),
    ]
}

fn same_error(a: &CoreError, b: &CoreError) -> bool {
    matches!(
        (a, b),
        (CoreError::DuplicatePeer(x), CoreError::DuplicatePeer(y)) if x == y
    ) || matches!(
        (a, b),
        (CoreError::UnknownPeer(x), CoreError::UnknownPeer(y)) if x == y
    ) || matches!(
        (a, b),
        (CoreError::UnknownLandmark(_), CoreError::UnknownLandmark(_))
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn federation_equals_single_server_reference(
        regions in (0usize..3).prop_map(|i| [1usize, 2, 4][i]),
        ops in prop::collection::vec(arb_op(), 1..60)
    ) {
        let mut fed = federation(regions);
        let mut single = reference();

        for op in ops {
            match op {
                Op::Register(spec) => {
                    let peer = PeerId(spec.peer as u64);
                    let path = spec_path(spec);
                    let got = fed.register(peer, path.clone());
                    let want = single.register(peer, path);
                    match (&got, &want) {
                        (Ok(g), Ok(w)) => {
                            prop_assert_eq!(g.landmark, w.landmark, "global landmark");
                            prop_assert_eq!(
                                fed.region_of_landmark(g.landmark),
                                g.region,
                                "home region owns the landmark"
                            );
                            prop_assert_eq!(&g.neighbors, &w.neighbors);
                        }
                        (Err(g), Err(w)) => prop_assert!(same_error(g, w), "{} vs {}", g, w),
                        _ => prop_assert!(false, "diverged: {:?} vs {:?}", got, want),
                    }
                }
                Op::RegisterBatch(specs) => {
                    let batch: Vec<(PeerId, PeerPath)> = specs
                        .iter()
                        .map(|&s| (PeerId(s.peer as u64), spec_path(s)))
                        .collect();
                    let got = fed.register_batch(batch.clone());
                    let want = single.register_batch_renewing(batch);
                    prop_assert_eq!(
                        (got.joined, got.renewed, got.rejected),
                        (want.joined, want.renewed, want.rejected)
                    );
                }
                Op::Handover(spec) => {
                    let peer = PeerId(spec.peer as u64);
                    let path = spec_path(spec);
                    let got = fed.handover(peer, path.clone());
                    let want = single.handover(peer, path);
                    match (&got, &want) {
                        (Ok(g), Ok(w)) => {
                            prop_assert_eq!(g.landmark, w.landmark);
                            prop_assert_eq!(&g.neighbors, &w.neighbors);
                        }
                        (Err(g), Err(w)) => prop_assert!(same_error(g, w), "{} vs {}", g, w),
                        _ => prop_assert!(false, "diverged: {:?} vs {:?}", got, want),
                    }
                }
                Op::LeaveBatch(peers) => {
                    let ids: Vec<PeerId> = peers.iter().map(|&p| PeerId(p as u64)).collect();
                    prop_assert_eq!(fed.leave_batch(&ids), single.leave_batch(&ids));
                }
                Op::RenewBatch(peers) => {
                    let ids: Vec<PeerId> = peers.iter().map(|&p| PeerId(p as u64)).collect();
                    prop_assert_eq!(fed.renew_batch(&ids), single.renew_batch(&ids));
                }
                Op::AdvanceEpoch => {
                    fed.advance_epoch();
                    single.advance_epoch();
                    prop_assert_eq!(fed.epoch(), single.epoch());
                }
                Op::Expire { max_age } => {
                    let sweep = fed.expire_stale(max_age as u64);
                    let want = single.expire_stale_batch(max_age as u64);
                    prop_assert_eq!(sweep.expired_ids(), want, "silent expiries");
                    // A swept tombstone and a silent expiry for the same
                    // peer may coexist (move, then fail later in the new
                    // region) — but never in the same region.
                    for &(r, p) in &sweep.moved_swept {
                        prop_assert!(!sweep.expired.contains(&(r, p)));
                    }
                }
                Op::Query { peer, k } => {
                    let peer = PeerId(peer as u64);
                    let got = fed.neighbors_of(peer, k as usize);
                    let want = single.neighbors_of(peer, k as usize);
                    match (&got, &want) {
                        (Ok(g), Ok(w)) => prop_assert_eq!(g, w),
                        (Err(g), Err(w)) => prop_assert!(same_error(g, w), "{} vs {}", g, w),
                        _ => prop_assert!(false, "diverged: {:?} vs {:?}", got, want),
                    }
                }
            }

            // Cross-cutting invariants after every operation.
            prop_assert_eq!(fed.peer_count(), single.peer_count());
            for p in 0..16u64 {
                let peer = PeerId(p);
                prop_assert_eq!(
                    fed_landmark_of(&fed, peer),
                    single.landmark_of(peer),
                    "landmark of peer {}", p
                );
                prop_assert_eq!(
                    fed.locate(peer).map(|(_, path)| path),
                    single.path_of(peer),
                    "path of peer {}", p
                );
                // A peer is never live in two regions at once.
                let live_in = fed
                    .regions()
                    .iter()
                    .filter(|r| r.server().landmark_of(peer).is_some())
                    .count();
                prop_assert!(live_in <= 1, "peer {} live in {} regions", p, live_in);
            }
        }

        // Regions partition the landmarks exactly once.
        let mut owned: Vec<u32> = fed
            .regions()
            .iter()
            .flat_map(|r| r.landmark_globals().iter().copied())
            .collect();
        owned.sort_unstable();
        prop_assert_eq!(owned, (0..LM_ROUTERS.len() as u32).collect::<Vec<_>>());
        let _ = RegionId(0); // silence unused-import lint paths on 1-region draws
    }
}
