//! # nearpeer
//!
//! A full reproduction of *"A Quicker Way to Discover Nearby Peers"*
//! (Simon, Chen, Boudani, Straub — ACM CoNEXT 2007) as a production-style
//! Rust workspace: landmark path trees and a management server that lets a
//! P2P newcomer discover its closest peers from **one traceroute and one
//! server round trip**, plus every substrate the paper's evaluation needs
//! (router-level Internet topologies, deterministic routing and traceroute,
//! a discrete-event simulator, coordinate-system baselines and a
//! live-streaming mesh).
//!
//! This crate is the facade: it re-exports the workspace crates under one
//! namespace for applications that want a single dependency.
//!
//! ## Quick start
//!
//! ```
//! use nearpeer::core::{ManagementServer, PeerId, PeerPath, ServerConfig};
//! use nearpeer::probe::{TraceConfig, Tracer};
//! use nearpeer::routing::RouteOracle;
//! use nearpeer::topology::generators::{mapper, MapperConfig};
//! use nearpeer::topology::RouterId;
//!
//! // A synthetic router-level Internet with degree-1 access routers.
//! let topo = mapper(&MapperConfig::tiny(), 42).unwrap();
//! let oracle = RouteOracle::new(&topo);
//!
//! // A landmark on some medium-degree router, a server bootstrapped with it.
//! let landmark = nearpeer::core::landmarks::place_landmarks(
//!     &topo, 1, nearpeer::core::landmarks::PlacementPolicy::DegreeMedium, 42,
//! )[0];
//! let mut server =
//!     ManagementServer::bootstrap(&topo, vec![landmark], ServerConfig::default());
//!
//! // Round 1: a newcomer traceroutes towards the landmark…
//! let tracer = Tracer::new(&oracle, TraceConfig::default());
//! let me: RouterId = topo.access_routers()[0];
//! let trace = tracer.trace(me, landmark, 1).unwrap();
//! let path = PeerPath::new(trace.router_path()).unwrap();
//!
//! // …round 2: the server stores the path and answers the closest peers.
//! let outcome = server.register(PeerId(0), path).unwrap();
//! assert!(outcome.neighbors.is_empty()); // first peer has no neighbors yet
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record; the `nearpeer-bench` crate regenerates
//! every figure.

#![forbid(unsafe_code)]

pub use nearpeer_coord as coord;
pub use nearpeer_core as core;
pub use nearpeer_metrics as metrics;
pub use nearpeer_overlay as overlay;
pub use nearpeer_probe as probe;
pub use nearpeer_routing as routing;
pub use nearpeer_sim as sim;
pub use nearpeer_topology as topology;
pub use nearpeer_workloads as workloads;
