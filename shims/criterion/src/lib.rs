//! Offline stand-in for `criterion` (0.5 API subset).
//!
//! Real criterion does warmup, outlier rejection and statistics; this shim
//! just times a few batches with `std::time::Instant` and prints a
//! `name/param  time: [median]` line per benchmark. It exists so the
//! `[[bench]]` targets compile and produce *indicative* numbers offline;
//! do not read its output as rigorous measurement.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value wrapper.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortises setup cost; the shim only uses it to pick
/// the batch size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs: larger batches.
    SmallInput,
    /// Large per-iteration inputs (e.g. a cloned trie): batch of one.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark's display identity.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter (the group provides the function name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Measured samples, one per timed batch.
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count,
        }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: aim for ~1ms per sample, capped for slow routines.
        let probe = Instant::now();
        std_black_box(routine());
        let once = probe.elapsed().max(Duration::from_nanos(1));
        self.iters_per_sample =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std_black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        self.iters_per_sample = 1;
        for _ in 0..self.sample_count {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn median_ns(&self) -> u128 {
        let mut ns: Vec<u128> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() / self.iters_per_sample as u128)
            .collect();
        ns.sort_unstable();
        if ns.is_empty() {
            0
        } else {
            ns[ns.len() / 2]
        }
    }
}

fn human_ns(ns: u128) -> String {
    match ns {
        0..=999 => format!("{ns} ns"),
        1_000..=999_999 => format!("{:.2} µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.2} ms", ns as f64 / 1e6),
        _ => format!("{:.2} s", ns as f64 / 1e9),
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `routine` under `id` with a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut routine: F)
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.effective_samples());
        routine(&mut bencher, input);
        self.report(&id.to_string(), &bencher);
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.effective_samples());
        routine(&mut bencher);
        self.report(&id.to_string(), &bencher);
    }

    fn effective_samples(&self) -> usize {
        if self.criterion.quick {
            2
        } else {
            self.sample_size
        }
    }

    fn report(&self, id: &str, bencher: &Bencher) {
        println!(
            "{:<50} time: [{}]",
            format!("{}/{}", self.name, id),
            human_ns(bencher.median_ns())
        );
    }

    /// Ends the group (upstream parity; nothing to flush here).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- --quick` (or --test) keeps CI runs cheap.
        let quick = std::env::args().any(|a| a == "--quick" || a == "--test");
        Criterion { quick }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = if self.quick { 2 } else { 10 };
        let mut bencher = Bencher::new(samples);
        routine(&mut bencher);
        println!("{:<50} time: [{}]", name, human_ns(bencher.median_ns()));
        self
    }
}

/// Declares the benchmark functions a target runs.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench target's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib(n: u64) -> u64 {
        (1..=n).product()
    }

    #[test]
    fn group_api_runs() {
        let mut c = Criterion { quick: true };
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        for &n in &[5u64, 10] {
            g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| fib(black_box(n)));
            });
        }
        g.bench_with_input(BenchmarkId::new("named", 1), &1u64, |b, &n| {
            b.iter_batched(|| n, fib, BatchSize::SmallInput);
        });
        g.finish();
        c.bench_function("solo", |b| b.iter(|| fib(3)));
    }

    #[test]
    fn human_units() {
        assert_eq!(human_ns(12), "12 ns");
        assert_eq!(human_ns(1_500), "1.50 µs");
        assert_eq!(human_ns(2_000_000), "2.00 ms");
        assert_eq!(human_ns(3_000_000_000), "3.00 s");
    }
}
