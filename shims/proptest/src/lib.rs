//! Offline stand-in for `proptest`.
//!
//! Same surface, simpler engine: strategies are direct random generators
//! (no shrinking, no persisted failure seeds). Each `proptest!` test runs
//! `ProptestConfig::cases` iterations with an RNG seeded from the test's
//! name, so failures are reproducible run-to-run. `prop_assert*` failures
//! report the case number and message; `prop_assume!` rejects the case.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;
use std::ops::Range;

/// The RNG driving test-case generation.
pub type TestRng = StdRng;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases per test.
    pub cases: u32,
    /// Base seed, mixed with the test name.
    pub seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            seed: 0,
        }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: skip the case, try another.
    Reject(String),
    /// `prop_assert*` failed: the property is violated.
    Fail(String),
}

/// Builds the deterministic RNG for one test (used by the macro).
pub fn rng_for_test(test_name: &str, config_seed: u64) -> TestRng {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    test_name.hash(&mut hasher);
    StdRng::seed_from_u64(hasher.finish() ^ config_seed)
}

/// A generator of test-case values.
pub trait Strategy {
    /// The values produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe strategy used behind [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;

    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (behind `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uniform {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_uniform!(u8, u16, u32, u64, usize, bool);

/// Strategy for any value of `T`; see [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_strategy_for_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// `&str` as a regex strategy. The shim supports the single pattern shape
/// the workspace uses — `.{lo,hi}` — generating printable ASCII of a
/// length in `[lo, hi]`. Anything else panics loudly.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_dot_repeat(self).unwrap_or_else(|| {
            panic!(
                "proptest shim: unsupported regex strategy {self:?} \
                 (only `.{{lo,hi}}` is implemented)"
            )
        });
        let len = rng.gen_range(lo..=hi);
        (0..len)
            .map(|_| rng.gen_range(0x20u8..0x7F) as char)
            .collect()
    }
}

fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Strategy namespace mirror of proptest's `prop` module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::collections::HashSet;
        use std::hash::Hash;
        use std::ops::Range;

        /// `Vec<T>` with a length drawn from `size` and elements from
        /// `element`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.clone());
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `HashSet<T>` with a target size drawn from `size`; keeps
        /// drawing to reach the target (bounded retries).
        pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Hash + Eq,
        {
            HashSetStrategy { element, size }
        }

        /// See [`hash_set`].
        pub struct HashSetStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S> Strategy for HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Hash + Eq,
        {
            type Value = HashSet<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
                let target = rng.gen_range(self.size.clone());
                let mut out = HashSet::new();
                let mut attempts = 0usize;
                while out.len() < target && attempts < 100 + target * 10 {
                    out.insert(self.element.generate(rng));
                    attempts += 1;
                }
                out
            }
        }
    }

    /// `Option<T>` strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// `None` 25% of the time (like upstream's default), `Some`
        /// otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// See [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.gen_bool(0.25) {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }

    /// `bool` strategies.
    pub mod bool {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Either boolean, uniformly.
        #[derive(Debug, Clone, Copy)]
        pub struct BoolAny;

        /// The uniform boolean strategy.
        pub const ANY: BoolAny = BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.gen()
            }
        }
    }

    /// Sampling helpers.
    pub mod sample {
        use super::super::{Arbitrary, TestRng};
        use rand::Rng;

        /// A collection index independent of the collection's length:
        /// resolve it against a concrete length with [`Index::index`].
        #[derive(Debug, Clone, Copy)]
        pub struct Index(usize);

        impl Index {
            /// The index as a position in a collection of `len` items.
            ///
            /// # Panics
            /// On `len == 0`.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                self.0 % len
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Self {
                Index(rng.gen())
            }
        }
    }
}

/// Everything a property test needs; `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Runs one test's cases; `body` returns `Err(Reject)` to skip a case.
/// Used by the `proptest!` macro, public for that reason only.
pub fn run_cases(
    test_name: &str,
    config: &ProptestConfig,
    mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng = rng_for_test(test_name, config.seed);
    let mut rejected = 0u32;
    for case in 0..config.cases {
        match body(&mut rng) {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest case {case}/{} failed: {msg}", config.cases)
            }
        }
    }
    if rejected == config.cases {
        panic!("proptest: every case of {test_name} was rejected by prop_assume!");
    }
}

/// Defines property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal muncher behind [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), &__config, |__rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __rng);)*
                $body
                Ok(())
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Asserts inside a property; failure fails the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = $a;
        let __b = $b;
        $crate::prop_assert!(
            __a == __b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __a = $a;
        let __b = $b;
        $crate::prop_assert!(
            __a == __b,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            __a,
            __b
        );
    }};
}

/// Asserts two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = $a;
        let __b = $b;
        $crate::prop_assert!(
            __a != __b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            __a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __a = $a;
        let __b = $b;
        $crate::prop_assert!(
            __a != __b,
            "{}\n  both: {:?}",
            format!($($fmt)+),
            __a
        );
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($option)),+])
    };
}

// The shim's own behaviour, tested through its public macro surface.
#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, f in -2.0f64..2.0, b in prop::bool::ANY) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!(matches!(b, true | false));
        }

        #[test]
        fn vec_and_set_respect_sizes(
            v in prop::collection::vec(0u8..100, 2..7),
            s in prop::collection::hash_set(0u32..100_000, 1..10),
        ) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(!s.is_empty() && s.len() < 10);
        }

        #[test]
        fn oneof_map_just_and_regex(
            choice in prop_oneof![Just(0u32), (5u32..9).prop_map(|v| v * 10)],
            text in ".{0,16}",
            opt in prop::option::of(0u32..5),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(choice == 0 || (50..90).contains(&choice));
            prop_assert!(text.len() <= 16);
            if let Some(v) = opt {
                prop_assert!(v < 5);
            }
            prop_assert!(idx.index(7) < 7);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn same_name_same_stream() {
        use crate::Strategy;
        let strat = crate::prop::collection::vec(0u64..1_000, 3..9);
        let mut a = crate::rng_for_test("x", 0);
        let mut b = crate::rng_for_test("x", 0);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_number() {
        crate::run_cases(
            "always_fails",
            &crate::ProptestConfig::with_cases(3),
            |_| Err(crate::TestCaseError::Fail("boom".into())),
        );
    }
}
