//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of `rand` it actually uses: [`rngs::StdRng`] (xoshiro256++
//! seeded through SplitMix64), the [`Rng`]/[`SeedableRng`] traits with
//! `gen`, `gen_range`, `gen_bool`, and [`seq::SliceRandom`] with `shuffle`
//! and `choose`. Streams are fully deterministic for a given seed, which
//! the seed-determinism integration tests rely on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values that `Rng::gen` can produce (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl Standard for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Primitive types `gen_range` knows how to sample uniformly in a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw in `[lo, hi)` (`hi` exclusive).
    fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw in `[lo, hi]` (`hi` inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = mul_shift(rng.next_u64(), span);
                (lo as i128 + draw as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = mul_shift(rng.next_u64(), span);
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Maps a uniform 64-bit word onto `[0, span)` by widening multiply
/// (Lemire's method without the rejection step; bias is < 2^-64 * span).
fn mul_shift(word: u64, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= (1u128 << 64));
    (u128::from(word) * span) >> 64
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u = <$t as Standard>::draw(rng);
                let v = lo + u * (hi - lo);
                // Rounding can land exactly on `hi`; fall back to `lo`.
                if v < hi { v } else { lo }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::draw(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value in the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 key expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator (xoshiro256++). Not cryptographically secure —
    /// like upstream `StdRng`, only stream quality and reproducibility are
    /// promised, and this workspace needs exactly those two.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn f64_unit_interval_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u32> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
    }
}
