//! Offline stand-in for `serde` (+ derive).
//!
//! Instead of serde's visitor architecture this shim uses a concrete
//! JSON-shaped [`Value`] tree: `Serialize` renders into it, `Deserialize`
//! reads back out of it, and the `serde_json` shim is just a text
//! encoder/decoder for [`Value`]. The derive macros (re-exported from
//! `serde_derive`) generate impls following serde_json's conventions:
//! named structs → objects, newtype structs → the inner value, tuple
//! structs → arrays, unit enum variants → strings, data-carrying variants
//! → externally tagged single-key objects.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON number: distinct integer and float storage so `u64::MAX`
/// round-trips exactly.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Finite float.
    F(f64),
}

impl Number {
    /// The number as an `f64` (lossy for huge integers, like serde_json).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F(v) => v,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (*self, *other) {
            (Number::U(a), Number::U(b)) => a == b,
            (Number::I(a), Number::I(b)) => a == b,
            (Number::F(a), Number::F(b)) => a == b,
            (Number::U(a), Number::I(b)) | (Number::I(b), Number::U(a)) => {
                i64::try_from(a) == Ok(b)
            }
            (Number::U(a), Number::F(b)) | (Number::F(b), Number::U(a)) => a as f64 == b,
            (Number::I(a), Number::F(b)) | (Number::F(b), Number::I(a)) => a as f64 == b,
        }
    }
}

/// Object representation: insertion-ordered key/value pairs.
pub type Object = Vec<(String, Value)>;

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is preserved.
    Object(Object),
}

impl Value {
    /// The object pairs, if this is an object.
    pub fn as_object(&self) -> Option<&Object> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Member lookup on objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

const NULL: Value = Value::Null;

/// Looks up `key` in an object, yielding `Null` when absent (a missing
/// field then fails with the target type's own error — or becomes `None`
/// for `Option` fields).
pub fn obj_get<'a>(obj: &'a Object, key: &str) -> &'a Value {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

/// (De)serialisation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Builds an error from a message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn serialize_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

/// Renders any serialisable value into a tree (used by `serde_json`).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize_value()
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Number(Number::U(n)) => i128::from(*n),
                    Value::Number(Number::I(n)) => i128::from(*n),
                    Value::Number(Number::F(f)) if f.fract() == 0.0 => *f as i128,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 {
                    Value::Number(Number::I(v))
                } else {
                    Value::Number(Number::U(v as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Number(Number::U(n)) => i128::from(*n),
                    Value::Number(Number::I(n)) => i128::from(*n),
                    Value::Number(Number::F(f)) if f.fract() == 0.0 => *f as i128,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = *self as f64;
                if v.is_finite() {
                    Value::Number(Number::F(v))
                } else {
                    Value::Null // serde_json also emits null for NaN/inf
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    other => Err(Error::custom(format!(
                        "expected number, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(inner) => inner.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(T::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| {
                    Error::custom(format!("expected array for tuple, got {v:?}"))
                })?;
                let want = [$($idx),+].len();
                if items.len() != want {
                    return Err(Error::custom(format!(
                        "expected {want}-tuple, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($name::deserialize_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Map keys encodable as JSON object keys.
pub trait MapKey: Sized {
    /// The key as a string.
    fn to_key(&self) -> String;
    /// Parses the key back.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|_| {
                    Error::custom(format!("bad {} map key {key:?}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {v:?}")))?;
        obj.iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize_value(v)?)))
            .collect()
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.serialize_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0)); // stable output
        Value::Object(pairs)
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {v:?}")))?;
        obj.iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(
            u64::deserialize_value(&u64::MAX.serialize_value()),
            Ok(u64::MAX)
        );
        assert_eq!(i32::deserialize_value(&(-5i32).serialize_value()), Ok(-5));
        assert_eq!(f64::deserialize_value(&1.5f64.serialize_value()), Ok(1.5));
        assert_eq!(bool::deserialize_value(&true.serialize_value()), Ok(true));
        assert_eq!(
            String::deserialize_value(&"hi".serialize_value()),
            Ok("hi".to_string())
        );
        assert_eq!(Option::<u32>::deserialize_value(&Value::Null), Ok(None));
        assert_eq!(
            Vec::<u8>::deserialize_value(&vec![1u8, 2, 3].serialize_value()),
            Ok(vec![1, 2, 3])
        );
    }

    #[test]
    fn out_of_range_integers_fail() {
        assert!(u8::deserialize_value(&300u32.serialize_value()).is_err());
        assert!(u32::deserialize_value(&(-1i32).serialize_value()).is_err());
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.serialize_value(), Value::Null);
        assert_eq!(f64::INFINITY.serialize_value(), Value::Null);
    }
}
