//! Offline stand-in for `crossbeam` (0.8 API subset).
//!
//! Provides [`channel::unbounded`] and [`channel::bounded`]:
//! multi-producer multi-consumer FIFOs built on `Mutex<VecDeque>` +
//! `Condvar`. Slower than crossbeam's lock-free queue but semantically
//! identical for the sweep runner's work-distribution pattern (clonable
//! receivers, disconnect on last sender drop, blocking `recv`, iteration
//! until disconnect). The bounded variant blocks `send` while the queue
//! is full (backpressure) and offers a non-blocking [`Sender::try_send`].
//!
//! Also provides [`thread::scope`] (re-exported as [`scope`]): crossbeam's
//! scoped-thread API implemented on `std::thread::scope`. The closure
//! passed to `Scope::spawn` receives `&Scope` exactly like upstream, so
//! nested spawns work; the outer call returns `thread::Result` (always
//! `Ok` here — std scoped threads propagate panics directly instead of
//! collecting them).

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
        /// Signals blocked bounded senders that a slot opened (a message
        /// was popped, or every receiver went away).
        space: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
        /// `None` = unbounded; `Some(cap)` = at most `cap` queued items.
        capacity: Option<usize>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like upstream: Debug without a `T: Debug` bound.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty (senders may still exist).
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error returned by [`Sender::try_send`].
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is bounded and currently full; the value is returned.
        Full(T),
        /// Every receiver is gone; the value is returned.
        Disconnected(T),
    }

    // Like upstream: Debug without a `T: Debug` bound.
    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => {
                    write!(f, "sending on a disconnected channel")
                }
            }
        }
    }

    /// Sending half; clonable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; clonable (any one receiver gets each message).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
                capacity,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Creates an unbounded mpmc channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded mpmc channel holding at most `cap` queued
    /// messages; `send` blocks while the queue is full. Upstream crossbeam
    /// supports `cap == 0` as a rendezvous channel — this shim approximates
    /// it with capacity 1 (the batch-writer usage never passes 0).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only if every receiver is dropped. On a
        /// bounded channel this blocks while the queue is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match state.capacity {
                    Some(cap) if state.items.len() >= cap => {
                        state = self.shared.space.wait(state).unwrap();
                    }
                    _ => break,
                }
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }

        /// Non-blocking send: enqueues `value`, or reports the channel full
        /// (bounded only) or disconnected without waiting.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = state.capacity {
                if state.items.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    drop(state);
                    self.shared.space.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Non-blocking receive: a queued message, or the channel's
        /// emptiness/disconnect state right now (mailbox workers use this
        /// to drain a batch after the blocking `recv` woke them).
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.shared.space.notify_one();
                return Ok(item);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued (upstream crossbeam API;
        /// the mailbox workers export this as a queue-depth gauge).
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap().items.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator over incoming messages until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                // Wake senders blocked on a full bounded queue so they can
                // observe the disconnect.
                self.shared.space.notify_all();
            }
        }
    }

    /// Borrowing message iterator; see [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// Owning message iterator.
    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;

        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

/// Scoped threads (crossbeam 0.8 `thread` module subset).
pub mod thread {
    use std::thread as sthread;

    /// A join handle for a scoped thread (std's, re-exported under the
    /// crossbeam name).
    pub type ScopedJoinHandle<'scope, T> = sthread::ScopedJoinHandle<'scope, T>;

    /// The scope handle passed to [`scope`]'s closure; threads spawned
    /// through it may borrow from the enclosing environment and are joined
    /// before [`scope`] returns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope sthread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. Like upstream crossbeam, the closure
        /// receives the scope again so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Creates a scope for spawning borrowing threads; every spawned thread
    /// is joined before this returns. Always `Ok` in this shim (a panicking
    /// scoped thread propagates its panic at join, std semantics).
    pub fn scope<'env, F, R>(f: F) -> sthread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(sthread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fifo_single_thread() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn iteration_ends_on_disconnect() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.into_iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn mpmc_across_threads_delivers_everything() {
        let (tx, rx) = channel::unbounded::<usize>();
        let (tx_out, rx_out) = channel::unbounded::<usize>();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rx = rx.clone();
                let tx_out = tx_out.clone();
                scope.spawn(move || {
                    while let Ok(v) = rx.recv() {
                        tx_out.send(v * 2).unwrap();
                    }
                });
            }
            drop(rx);
            drop(tx_out);
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut got: Vec<usize> = rx_out.into_iter().collect();
            got.sort_unstable();
            assert_eq!(got, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        });
    }

    #[test]
    fn try_recv_reports_empty_then_disconnected() {
        let (tx, rx) = channel::unbounded();
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert_eq!(tx.send(5), Err(channel::SendError(5)));
    }

    #[test]
    fn bounded_try_send_reports_full_then_accepts_after_recv() {
        let (tx, rx) = channel::bounded(2);
        assert!(tx.try_send(1).is_ok());
        assert!(tx.try_send(2).is_ok());
        assert_eq!(tx.try_send(3), Err(channel::TrySendError::Full(3)));
        assert_eq!(rx.recv(), Ok(1));
        assert!(tx.try_send(3).is_ok());
        drop(rx);
        assert_eq!(tx.try_send(4), Err(channel::TrySendError::Disconnected(4)));
    }

    #[test]
    fn bounded_zero_capacity_holds_at_least_one() {
        let (tx, rx) = channel::bounded(0);
        assert!(tx.try_send(9).is_ok());
        assert_eq!(tx.try_send(10), Err(channel::TrySendError::Full(10)));
        assert_eq!(rx.recv(), Ok(9));
    }

    #[test]
    fn bounded_send_blocks_until_space_and_delivers_in_order() {
        let (tx, rx) = channel::bounded::<usize>(1);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<usize> = (0..100).map(|_| rx.recv().unwrap()).collect();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn bounded_blocked_sender_errors_when_receiver_drops() {
        let (tx, rx) = channel::bounded::<u32>(1);
        tx.send(1).unwrap();
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| tx.send(2));
            std::thread::sleep(std::time::Duration::from_millis(50));
            drop(rx);
            assert_eq!(handle.join().unwrap(), Err(channel::SendError(2)));
        });
    }

    #[test]
    fn scope_joins_and_borrows() {
        let data = [1u64, 2, 3, 4];
        let mut partial = vec![0u64; 2];
        super::scope(|s| {
            let (lo, hi) = partial.split_at_mut(1);
            let handle = s.spawn(|_| data[..2].iter().sum::<u64>());
            // Nested spawn through the scope handle, like upstream.
            s.spawn(|s2| {
                let inner = s2.spawn(|_| data[2..].iter().sum::<u64>());
                hi[0] = inner.join().unwrap();
            });
            lo[0] = handle.join().unwrap();
        })
        .unwrap();
        assert_eq!(partial, vec![3, 7]);
    }
}
