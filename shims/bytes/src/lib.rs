//! Offline stand-in for the `bytes` crate (1.x API subset).
//!
//! Backed by a plain `Vec<u8>` plus a read cursor instead of refcounted
//! shared buffers — the codec only needs correctness and a compatible API,
//! not zero-copy splitting. `split_to` and `freeze` therefore copy; every
//! observable behaviour (big-endian put/get, `advance`, deref to the
//! unread bytes) matches upstream.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// Immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// Growable byte buffer with a read cursor at the front.
///
/// Writes append at the back; reads (`get_*`, `advance`, `split_to`)
/// consume from the front. Deref exposes only the unread tail, matching
/// upstream `BytesMut`.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
    head: usize,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            head: 0,
        }
    }

    fn unread(&self) -> &[u8] {
        &self.data[self.head..]
    }

    /// Drops the consumed front once it dominates the buffer, so a
    /// long-lived streaming buffer stays proportional to its *unread*
    /// bytes (upstream BytesMut reclaims the same way).
    fn reclaim(&mut self) {
        if self.head > 32 && self.head >= self.data.len() / 2 {
            self.data.drain(..self.head);
            self.head = 0;
        }
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Splits off and returns the first `n` unread bytes.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.len(), "split_to out of bounds");
        let front = self.unread()[..n].to_vec();
        self.head += n;
        BytesMut {
            data: front,
            head: 0,
        }
    }

    /// Converts the unread bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.unread().to_vec(),
        }
    }
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        self.unread() == other.unread()
    }
}

impl Eq for BytesMut {}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.unread()
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let head = self.head;
        &mut self.data[head..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.unread()
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut {
            data: src.to_vec(),
            head: 0,
        }
    }
}

/// Read-side cursor operations.
pub trait Buf {
    /// Number of unread bytes.
    fn remaining(&self) -> usize;
    /// Skips `n` unread bytes.
    fn advance(&mut self, n: usize);
    /// Copies out the next `n` unread bytes.
    fn take_front(&mut self, n: usize) -> Vec<u8>;

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_front(1)[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take_front(2).try_into().unwrap())
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_front(4).try_into().unwrap())
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_front(8).try_into().unwrap())
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.head += n;
        self.reclaim();
    }

    fn take_front(&mut self, n: usize) -> Vec<u8> {
        assert!(n <= self.len(), "buffer underflow");
        let out = self.unread()[..n].to_vec();
        self.head += n;
        self.reclaim();
        out
    }
}

/// Write-side append operations.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_then_get_round_trips() {
        let mut b = BytesMut::new();
        b.put_u32(0xDEAD_BEEF);
        b.put_u8(7);
        b.put_u16(300);
        b.put_u64(u64::MAX - 1);
        b.put_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 4 + 1 + 2 + 8 + 3);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16(), 300);
        assert_eq!(b.get_u64(), u64::MAX - 1);
        assert_eq!(&b[..], &[1, 2, 3]);
    }

    #[test]
    fn advance_and_split_expose_the_tail() {
        let mut b = BytesMut::from(&[0, 1, 2, 3, 4, 5][..]);
        b.advance(2);
        assert_eq!(&b[..], &[2, 3, 4, 5]);
        let front = b.split_to(3);
        assert_eq!(&front[..], &[2, 3, 4]);
        assert_eq!(&b[..], &[5]);
        assert_eq!(front.to_vec(), vec![2, 3, 4]);
    }

    #[test]
    fn freeze_keeps_only_unread() {
        let mut b = BytesMut::new();
        b.put_u16(0x0102);
        b.advance(1);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[2]);
    }

    #[test]
    fn consumed_front_is_reclaimed() {
        let mut b = BytesMut::new();
        for frame in 0..1_000u32 {
            b.put_u32(frame);
            assert_eq!(b.get_u32(), frame);
        }
        // One frame in flight at a time: capacity must not grow with the
        // total bytes ever streamed through.
        assert!(
            b.data.len() < 128,
            "backing store kept {} bytes",
            b.data.len()
        );
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = BytesMut::new();
        b.put_u8(1);
        let _ = b.get_u32();
    }
}
