//! Offline stand-in for `serde_json`: renders the serde shim's [`Value`]
//! tree to JSON text and parses it back. Output conventions match
//! upstream where observable: compact form has no whitespace, pretty form
//! indents two spaces with `"key": value`, floats render via Rust's
//! shortest-roundtrip `{:?}` and integers exactly.

#![forbid(unsafe_code)]

pub use serde::{Error, Number, Value};

use serde::{Deserialize, Serialize};

/// Serialises to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &serde::to_value(value), None, 0);
    Ok(out)
}

/// Serialises to pretty JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &serde::to_value(value), Some(2), 0);
    Ok(out)
}

/// Converts any serialisable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(serde::to_value(value))
}

/// Parses a value of `T` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::deserialize_value(&value)
}

/// Rebuilds a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::deserialize_value(&value)
}

/// Builds a [`Value`] with JSON-like syntax. Object values may be nested
/// `{...}` / `[...]` literals or single-token expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::json!($val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other).expect("json! value serialises") };
}

// ---------------------------------------------------------------- writing

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::U(v) => out.push_str(&v.to_string()),
        Number::I(v) => out.push_str(&v.to_string()),
        // {:?} is Rust's shortest representation that round-trips, and it
        // is always a valid JSON number for finite floats.
        Number::F(v) => out.push_str(&format!("{v:?}")),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected {:?} at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected ',' or ']' in array, got {other:?}"
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected ',' or '}}' in object, got {other:?}"
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::custom(format!("bad utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::custom("bad low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(char::from_u32(code).ok_or_else(|| {
                                Error::custom(format!("bad codepoint {code:#x}"))
                            })?);
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape \\{}", other as char)))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::custom("bad \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::custom("bad \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits are utf-8");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(v)));
            }
        }
        match text.parse::<f64>() {
            // Overflowing literals parse to infinity in Rust; real JSON has
            // no such value, so reject them like upstream serde_json does.
            Ok(v) if v.is_finite() => Ok(Value::Number(Number::F(v))),
            _ => Err(Error::custom(format!("bad number {text:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_shapes() {
        let v = json!({"k": 1, "list": [1, 2.5, null, true], "s": "a\"b"});
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"k":1,"list":[1,2.5,null,true],"s":"a\"b"}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\"k\": 1"), "{pretty}");
        assert!(pretty.starts_with("{\n  \"k\": 1,"), "{pretty}");
    }

    #[test]
    fn parse_round_trips() {
        let v = json!({"a": [1, 2, 3.75], "b": {"c": "x"}, "d": null});
        let neg: Value = from_str("[-2, -3.5]").unwrap();
        assert_eq!(
            neg,
            Value::Array(vec![
                Value::Number(Number::I(-2)),
                Value::Number(Number::F(-3.5)),
            ])
        );
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn huge_integers_round_trip_exactly() {
        let text = to_string(&u64::MAX).unwrap();
        assert_eq!(text, u64::MAX.to_string());
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, u64::MAX);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nquote\"back\\slash\ttab\u{1F600}\u{8}\u{c}";
        let text = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn surrogate_pair_parsing() {
        let back: String = from_str(r#""😀""#).unwrap();
        assert_eq!(back, "\u{1F600}");
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("01x").is_err());
        assert!(from_str::<Value>("\"abc").is_err());
        assert!(from_str::<Value>("{\"a\":1} extra").is_err());
        assert!(from_str::<Value>("1e999").is_err());
    }
}
