//! Offline stand-in for `serde_derive`.
//!
//! The registry (and therefore `syn`/`quote`) is unavailable, so this
//! crate parses the derive input token stream by hand and emits impls as
//! parsed source strings. It supports exactly the shapes this workspace
//! derives on: non-generic structs (named, tuple, unit) and non-generic
//! enums whose variants are unit, named or tuple. Serde attributes are
//! not supported and fields must not rely on them (none in-tree do).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What one struct or enum looks like after parsing.
enum Shape {
    /// `struct S { a: A, b: B }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct S(A, B);` — a single field is serde's "newtype" form.
    TupleStruct { name: String, arity: usize },
    /// `struct S;`
    UnitStruct { name: String },
    /// `enum E { ... }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// Derives the shim's `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    gen_serialize(&shape)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the shim's `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    gen_deserialize(&shape)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_shape(input: TokenStream) -> Shape {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);

    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    if matches!(&tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }

    match (kind.as_str(), tokens.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::TupleStruct {
                name,
                arity: count_tuple_fields(g.stream()),
            }
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Shape::UnitStruct { name },
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => Shape::Enum {
            name,
            variants: parse_variants(g.stream()),
        },
        (k, other) => panic!("serde shim derive: unsupported {k} body {other:?}"),
    }
}

fn skip_attrs_and_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group (or ! then group for inner attrs)
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if matches!(
                    tokens.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    tokens.next(); // (crate) / (super) / (in ...)
                }
            }
            _ => return,
        }
    }
}

/// Parses `a: A, b: B, ...`, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut tokens);
        match tokens.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => panic!("serde shim derive: expected field name, got {other:?}"),
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:`, got {other:?}"),
        }
        skip_type_until_comma(&mut tokens);
    }
    fields
}

/// Consumes type tokens up to (and including) the next top-level comma,
/// tracking `<...>` nesting so `HashMap<K, V>` stays one type.
fn skip_type_until_comma(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle_depth = 0i32;
    for tok in tokens.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Counts the types in `A, B, ...` (a tuple struct / variant body).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut tokens = stream.into_iter().peekable();
    let mut count = 0;
    loop {
        skip_attrs_and_vis(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        count += 1;
        skip_type_until_comma(&mut tokens);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected variant name, got {other:?}"),
        };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => break,
            other => panic!("serde shim derive: expected `,` after variant, got {other:?}"),
        }
    }
    variants
}

// ------------------------------------------------------------- generation

fn gen_serialize(shape: &Shape) -> String {
    let (name, body) = match shape {
        Shape::NamedStruct { name, fields } => {
            let mut b =
                String::from("let mut __fields: ::serde::Object = ::std::vec::Vec::new();\n");
            for f in fields {
                b.push_str(&format!(
                    "__fields.push((\"{f}\".to_string(), \
                     ::serde::Serialize::serialize_value(&self.{f})));\n"
                ));
            }
            b.push_str("::serde::Value::Object(__fields)");
            (name, b)
        }
        Shape::TupleStruct { name, arity: 1 } => (
            name,
            "::serde::Serialize::serialize_value(&self.0)".to_string(),
        ),
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            (
                name,
                format!("::serde::Value::Array(vec![{}])", items.join(", ")),
            )
        }
        Shape::UnitStruct { name } => (name, "::serde::Value::Null".to_string()),
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Named(fields) => {
                        let pats = fields.join(", ");
                        let mut inner = String::from(
                            "let mut __fields: ::serde::Object = ::std::vec::Vec::new();\n",
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "__fields.push((\"{f}\".to_string(), \
                                 ::serde::Serialize::serialize_value({f})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {pats} }} => ::serde::Value::Object(vec![(\
                             \"{vn}\".to_string(), {{ {inner} ::serde::Value::Object(__fields) }}\
                             )]),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__x0) => ::serde::Value::Object(vec![(\
                         \"{vn}\".to_string(), ::serde::Serialize::serialize_value(__x0))]),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__x{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![(\
                             \"{vn}\".to_string(), ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            (name, format!("match self {{\n{arms}}}"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(shape: &Shape) -> String {
    let (name, body) = match shape {
        Shape::NamedStruct { name, fields } => {
            let mut b = format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::Error::custom(\
                 format!(\"expected object for {name}, got {{__v:?}}\")))?;\n\
                 ::std::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                b.push_str(&format!(
                    "{f}: ::serde::Deserialize::deserialize_value(\
                     ::serde::obj_get(__obj, \"{f}\")).map_err(|e| \
                     ::serde::Error::custom(format!(\"{name}.{f}: {{e}}\")))?,\n"
                ));
            }
            b.push_str("})");
            (name, b)
        }
        Shape::TupleStruct { name, arity: 1 } => (
            name,
            format!(
                "::std::result::Result::Ok({name}(\
                 ::serde::Deserialize::deserialize_value(__v)?))"
            ),
        ),
        Shape::TupleStruct { name, arity } => {
            let mut b = format!(
                "let __items = __v.as_array().ok_or_else(|| ::serde::Error::custom(\
                 format!(\"expected array for {name}, got {{__v:?}}\")))?;\n\
                 if __items.len() != {arity} {{ return ::std::result::Result::Err(\
                 ::serde::Error::custom(format!(\"expected {arity} elements for {name}, \
                 got {{}}\", __items.len()))); }}\n\
                 ::std::result::Result::Ok({name}(\n"
            );
            for i in 0..*arity {
                b.push_str(&format!(
                    "::serde::Deserialize::deserialize_value(&__items[{i}])?,\n"
                ));
            }
            b.push_str("))");
            (name, b)
        }
        Shape::UnitStruct { name } => (
            name,
            format!("let _ = __v;\n::std::result::Result::Ok({name})"),
        ),
        Shape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Named(fields) => {
                        let mut inner = format!(
                            "let __obj = _inner.as_object().ok_or_else(|| \
                             ::serde::Error::custom(format!(\"expected object for \
                             {name}::{vn}, got {{_inner:?}}\")))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n"
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "{f}: ::serde::Deserialize::deserialize_value(\
                                 ::serde::obj_get(__obj, \"{f}\")).map_err(|e| \
                                 ::serde::Error::custom(format!(\
                                 \"{name}::{vn}.{f}: {{e}}\")))?,\n"
                            ));
                        }
                        inner.push_str("})");
                        data_arms.push_str(&format!("\"{vn}\" => {{ {inner} }}\n"));
                    }
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::deserialize_value(_inner)?)),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let mut inner = format!(
                            "let __items = _inner.as_array().ok_or_else(|| \
                             ::serde::Error::custom(format!(\"expected array for \
                             {name}::{vn}, got {{_inner:?}}\")))?;\n\
                             if __items.len() != {arity} {{ return \
                             ::std::result::Result::Err(::serde::Error::custom(\
                             format!(\"expected {arity} elements for {name}::{vn}, \
                             got {{}}\", __items.len()))); }}\n\
                             ::std::result::Result::Ok({name}::{vn}(\n"
                        );
                        for i in 0..*arity {
                            inner.push_str(&format!(
                                "::serde::Deserialize::deserialize_value(&__items[{i}])?,\n"
                            ));
                        }
                        inner.push_str("))");
                        data_arms.push_str(&format!("\"{vn}\" => {{ {inner} }}\n"));
                    }
                }
            }
            let b = format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown {name} variant {{__other:?}}\"))),\n}},\n\
                 ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                 let (__tag, _inner) = &__pairs[0];\n\
                 match __tag.as_str() {{\n{data_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown {name} variant {{__other:?}}\"))),\n}}\n}},\n\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"expected {name}, got {{__other:?}}\"))),\n}}"
            );
            (name, b)
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
